//! Parallel-runtime determinism: every execution strategy of the batch
//! path — serial, multi-threaded shard executor, cooperative `SharedSpot`,
//! and (with the `parallel` feature) the manager's persistent worker pool
//! at any worker count — must yield verdicts and synopsis state
//! bit-identical to one-by-one sequential processing, including streams
//! that cross periodic evolution and pruning maintenance ticks.

use proptest::prelude::*;
use spot::synopsis::{SerialExecutor, StoreExecutor};
use spot::types::{DataPoint, DomainBounds};
use spot::{DriftConfig, EvolutionConfig, SharedSpot, Spot, SpotBuilder, TuningConfig, Verdict};

/// Shard executor fanning `work` across N scoped threads plus the caller —
/// the worst-case interleaving for the claim protocol.
struct FanOut(usize);

impl StoreExecutor for FanOut {
    fn execute(&self, work: &(dyn Fn() + Sync)) {
        std::thread::scope(|scope| {
            for _ in 0..self.0 {
                scope.spawn(work);
            }
            work();
        });
    }
}

fn build_spot(seed: u64, dims: usize, evo_period: u64, prune_every: u64) -> Spot {
    SpotBuilder::new(DomainBounds::unit(dims))
        .seed(seed)
        .fs_max_dimension(2)
        .evolution(EvolutionConfig {
            period: evo_period,
            ..Default::default()
        })
        .pruning(prune_every, 1e-4)
        .build()
        .unwrap()
}

/// Deterministic pseudo-stream with occasional spikes so outliers (and
/// with them OS growth and drift signals) actually occur.
fn stream(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..dims)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 13 == 5 {
                v[i % dims] = if (i / 13) % 2 == 0 { 0.98 } else { 0.01 };
            }
            DataPoint::new(v)
        })
        .collect()
}

fn assert_same_verdicts(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: length");
    for (a, b) in want.iter().zip(got) {
        // Field-level asserts for diagnostics; bitwise_eq is the
        // authoritative (field-complete) predicate.
        assert_eq!(a.outlier, b.outlier, "{label}: tick {}", a.tick);
        assert_eq!(
            a.findings, b.findings,
            "{label}: findings at tick {}",
            a.tick
        );
        assert!(a.bitwise_eq(b), "{label}: tick {}: {a:?} vs {b:?}", a.tick);
    }
}

/// Reference run plus a probe point whose verdict exposes the final PCS of
/// every monitored subspace.
fn sequential_reference(
    mut spot: Spot,
    pts: &[DataPoint],
    probe: &DataPoint,
) -> (Vec<Verdict>, Verdict, Spot) {
    let verdicts: Vec<Verdict> = pts.iter().map(|p| spot.process(p).unwrap()).collect();
    let probe_verdict = spot.process(probe).unwrap();
    (verdicts, probe_verdict, spot)
}

fn check_all_strategies(make: impl Fn() -> Spot, pts: &[DataPoint], chunk: usize, helpers: usize) {
    let probe = pts[pts.len() / 2].clone();
    let (want, want_probe, reference) = sequential_reference(make(), pts, &probe);

    // Strategy: whole-batch and chunked through the default executor.
    for (label, chunk_size) in [("whole batch", pts.len()), ("chunked batch", chunk)] {
        let mut spot = make();
        let mut got = Vec::new();
        for c in pts.chunks(chunk_size) {
            got.extend(spot.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, label);
        let got_probe = spot.process(&probe).unwrap();
        assert_same_verdicts(
            std::slice::from_ref(&want_probe),
            std::slice::from_ref(&got_probe),
            label,
        );
        assert_eq!(spot.stats(), reference.stats(), "{label}: stats");
        assert_eq!(
            spot.footprint(),
            reference.footprint(),
            "{label}: footprint"
        );
    }

    // Strategy: explicit multi-thread shard executor.
    {
        let exec = FanOut(helpers);
        let mut spot = make();
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(spot.process_batch_with(c, &exec).unwrap());
        }
        assert_same_verdicts(&want, &got, "fan-out executor");
        let got_probe = spot.process(&probe).unwrap();
        assert_same_verdicts(
            std::slice::from_ref(&want_probe),
            std::slice::from_ref(&got_probe),
            "fan-out executor",
        );
        assert_eq!(spot.stats(), reference.stats());
        assert_eq!(spot.footprint(), reference.footprint());
    }

    // Strategy: cooperative SharedSpot (sharded) and single-mutex control.
    for (label, shared) in [
        ("cooperative SharedSpot", SharedSpot::new(make())),
        ("single-mutex SharedSpot", SharedSpot::single_mutex(make())),
    ] {
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(shared.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, label);
        let got_probe = shared.process(&probe).unwrap();
        assert_same_verdicts(
            std::slice::from_ref(&want_probe),
            std::slice::from_ref(&got_probe),
            label,
        );
        assert_eq!(shared.stats(), *reference.stats(), "{label}: stats");
        assert_eq!(
            shared.with(|s| s.footprint()),
            reference.footprint(),
            "{label}: footprint"
        );
    }

    // Strategy: the executor service's persistent pool at several sizes
    // (available in every build; the `parallel` feature only changes the
    // default engagement policy).
    for workers in [1usize, 2, 4] {
        let mut spot = make();
        spot.set_parallel_workers(Some(workers));
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(spot.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, &format!("pool workers={workers}"));
        let got_probe = spot.process(&probe).unwrap();
        assert_same_verdicts(
            std::slice::from_ref(&want_probe),
            std::slice::from_ref(&got_probe),
            &format!("pool workers={workers}"),
        );
        assert_eq!(spot.stats(), reference.stats());
        assert_eq!(spot.footprint(), reference.footprint());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_strategy_is_bit_identical_across_maintenance_ticks(
        seed in 0u64..1000,
        dims in 3usize..6,
        evo_period in 20u64..90,
        prune_every in 15u64..70,
        n in 80usize..200,
        chunk in 11usize..97,
        helpers in 1usize..4,
        salt in 0u64..100,
    ) {
        // Streams are long enough to cross both maintenance periods.
        let n = n.max(evo_period as usize + 10).max(prune_every as usize + 10);
        let pts = stream(n, dims, salt);
        check_all_strategies(
            || build_spot(seed, dims, evo_period, prune_every),
            &pts,
            chunk,
            helpers,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tuned_chunking_and_sharded_commits_stay_bit_identical(
        seed in 0u64..500,
        sweep_chunk in 1usize..80,
        commit_chunk in 1usize..80,
        pool_min in 1usize..20,
        evo_period in 25u64..80,
        prune_every in 20u64..60,
        chunk in 16usize..120,
        helpers in 0usize..4,
        salt in 0u64..50,
        drift_on in proptest::bool::ANY,
    ) {
        // Tuning is pure scheduling: arbitrary sweep/commit granularities
        // and pool-engagement floors, pushed through shard executors of
        // 0-4 helpers (0 degrades to the caller alone), must reproduce
        // the default-tuning sequential reference bit-for-bit — with and
        // without the drift detector folding Page-Hinkley observations
        // into the sharded commit.
        let dims = 4;
        let n = 160usize
            .max(evo_period as usize + 10)
            .max(prune_every as usize + 10);
        let pts = stream(n, dims, salt);
        let probe = pts[pts.len() / 2].clone();
        let tuned = TuningConfig {
            pool_min_stores: pool_min,
            pool_min_points: pool_min,
            sweep_chunk,
            commit_chunk,
        };
        let make = |tuning: TuningConfig| {
            let mut b = SpotBuilder::new(DomainBounds::unit(dims))
                .seed(seed)
                .fs_max_dimension(2)
                .evolution(EvolutionConfig {
                    period: evo_period,
                    ..Default::default()
                })
                .pruning(prune_every, 1e-4)
                .tuning(tuning);
            if drift_on {
                b = b.drift(DriftConfig {
                    enabled: true,
                    delta: 0.01,
                    lambda: 0.4,
                    min_points: 40,
                    novelty_floor: 5.0,
                });
            }
            b.build().unwrap()
        };
        let (want, want_probe, reference) =
            sequential_reference(make(TuningConfig::default()), &pts, &probe);

        // Tuned granularities through an explicit fan-out shard executor.
        let exec = FanOut(helpers);
        let mut spot = make(tuned);
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(spot.process_batch_with(c, &exec).unwrap());
        }
        assert_same_verdicts(&want, &got, "tuned fan-out");
        let got_probe = spot.process(&probe).unwrap();
        assert_same_verdicts(
            std::slice::from_ref(&want_probe),
            std::slice::from_ref(&got_probe),
            "tuned fan-out",
        );
        prop_assert_eq!(spot.stats(), reference.stats());
        prop_assert_eq!(spot.footprint(), reference.footprint());

        // And through the persistent pool with the tuned engagement
        // floors actually deciding when the pool engages.
        for workers in [1usize, 3] {
            let mut spot = make(tuned);
            spot.set_parallel_workers(Some(workers));
            let mut got = Vec::new();
            for c in pts.chunks(chunk) {
                got.extend(spot.process_batch(c).unwrap());
            }
            assert_same_verdicts(&want, &got, &format!("tuned pool workers={workers}"));
            let got_probe = spot.process(&probe).unwrap();
            assert_same_verdicts(
                std::slice::from_ref(&want_probe),
                std::slice::from_ref(&got_probe),
                &format!("tuned pool workers={workers}"),
            );
            prop_assert_eq!(spot.stats(), reference.stats());
            prop_assert_eq!(spot.footprint(), reference.footprint());
        }
    }
}

/// Dense 6-dim training batch (three tight clusters in dims {0,1}).
fn clustered_train(dims: usize, n: usize) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let centers = [[0.2, 0.2], [0.5, 0.7], [0.8, 0.3]];
            let c = centers[i % 3];
            let mut v = vec![0.0; dims];
            v[0] = c[0] + ((i * 7) % 13) as f64 / 13.0 * 0.04;
            v[1] = c[1] + ((i * 11) % 13) as f64 / 13.0 * 0.04;
            for (d, item) in v.iter_mut().enumerate().skip(2) {
                *item = 0.3 + ((i * (d + 3)) % 17) as f64 / 17.0 * 0.4;
            }
            DataPoint::new(v)
        })
        .collect()
}

#[test]
fn drift_triggered_mid_run_evolution_is_bit_identical_across_executors() {
    // A learned detector (CS populated) under an aggressive Page–Hinkley
    // configuration, fed a stream that shifts into fresh territory: drift
    // alarms fire *inside* batch runs and trigger immediate CS
    // self-evolution — a full SST rewrite (store add/remove + reservoir
    // replay) mid-commit, the heaviest state mutation the two-phase split
    // has to sequence correctly. Every executor must match the
    // serial-executor batch reference bit-for-bit at identical chunking.
    // (One-by-one processing is deliberately *not* the reference here:
    // drift-triggered evolution timing is the batch path's one documented
    // divergence.)
    let dims = 5;
    let train = clustered_train(dims, 260);
    let make = || {
        let mut s = SpotBuilder::new(DomainBounds::unit(dims))
            .seed(17)
            .fs_max_dimension(2)
            .evolution(EvolutionConfig {
                period: 5000, // periodic maintenance out of the way
                ..Default::default()
            })
            .drift(DriftConfig {
                enabled: true,
                delta: 0.01,
                lambda: 0.4,
                min_points: 40,
                novelty_floor: 5.0,
            })
            .pruning(0, 1e-4)
            .build()
            .unwrap();
        s.learn(&train).unwrap();
        s
    };
    // Familiar territory first (alarm-free runs → the PH-simulation gate
    // lets their commits overlap), then a shifting tail that keeps opening
    // fresh projected cells (high novelty fraction → PH alarms → those
    // runs refuse overlap and commit sequentially).
    let mut pts = stream(300, dims, 9);
    for i in 0..300usize {
        let v: Vec<f64> = (0..dims)
            .map(|d| 0.76 + ((i * (d + 3) + 5 * d) % 23) as f64 / 23.0 * 0.23)
            .collect();
        pts.push(DataPoint::new(v));
    }
    // Wider than `Spot::BATCH_RUN` so each call splits into several runs:
    // alarm-free runs overlap (the gate simulates the PH updates from the
    // sweep plans), alarm-carrying runs fall back to sequential commits.
    let chunk = 300;

    let mut reference = make();
    let mut want = Vec::new();
    for c in pts.chunks(chunk) {
        want.extend(reference.process_batch_with(c, &SerialExecutor).unwrap());
    }
    assert!(
        reference.stats().drift_events > 0,
        "scenario must raise drift alarms: {:?}",
        reference.stats()
    );
    assert!(
        reference.stats().evolutions > 0,
        "drift alarms must trigger CS self-evolution mid-run: {:?}",
        reference.stats()
    );
    assert!(
        reference.stats().overlapped_runs > 0,
        "the PH-simulation gate must still overlap alarm-free runs: {:?}",
        reference.stats()
    );
    assert!(
        reference.stats().overlapped_runs < reference.stats().batch_runs,
        "alarm-carrying runs must refuse overlap: {:?}",
        reference.stats()
    );

    // Multi-threaded fan-out executor.
    {
        let exec = FanOut(3);
        let mut spot = make();
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(spot.process_batch_with(c, &exec).unwrap());
        }
        assert_same_verdicts(&want, &got, "fan-out under drift evolution");
        assert_eq!(spot.stats(), reference.stats());
        assert_eq!(spot.footprint(), reference.footprint());
    }

    // Cooperative and single-mutex SharedSpot.
    for (label, shared) in [
        ("cooperative under drift evolution", SharedSpot::new(make())),
        (
            "single-mutex under drift evolution",
            SharedSpot::single_mutex(make()),
        ),
    ] {
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(shared.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, label);
        assert_eq!(shared.stats(), *reference.stats(), "{label}: stats");
        assert_eq!(
            shared.with(|s| s.footprint()),
            reference.footprint(),
            "{label}: footprint"
        );
    }

    // The persistent pool at several sizes.
    for workers in [1usize, 3] {
        let mut spot = make();
        spot.set_parallel_workers(Some(workers));
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            got.extend(spot.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, &format!("pool workers={workers} under drift"));
        assert_eq!(spot.stats(), reference.stats());
        assert_eq!(spot.footprint(), reference.footprint());
    }
}

#[test]
fn run_overlap_engages_and_matches_one_by_one() {
    // With CS empty and maintenance periods far apart, the batch path may
    // overlap every run's commit with the next run's shard ingestion. The
    // overlap must actually engage (the pipeline counter advances) and
    // stay bit-identical to one-by-one sequential processing.
    let dims = 4;
    let make = || {
        SpotBuilder::new(DomainBounds::unit(dims))
            .seed(29)
            .fs_max_dimension(2)
            .evolution(EvolutionConfig {
                period: 100_000,
                ..Default::default()
            })
            .pruning(100_000, 1e-4)
            .build()
            .unwrap()
    };
    // Chunks wider than `Spot::BATCH_RUN` (256), so every batch call
    // splits into several runs — the only place run overlap can engage.
    let pts = stream(900, dims, 13);
    let chunk = 450;
    let mut reference = make();
    let want: Vec<Verdict> = pts.iter().map(|p| reference.process(p).unwrap()).collect();

    for (label, exec_helpers) in [("overlap serial", 0usize), ("overlap fan-out", 3)] {
        let mut spot = make();
        let mut got = Vec::new();
        for c in pts.chunks(chunk) {
            if exec_helpers == 0 {
                got.extend(spot.process_batch(c).unwrap());
            } else {
                got.extend(spot.process_batch_with(c, &FanOut(exec_helpers)).unwrap());
            }
        }
        assert_same_verdicts(&want, &got, label);
        assert_eq!(spot.stats(), reference.stats(), "{label}: stats");
        assert_eq!(
            spot.footprint(),
            reference.footprint(),
            "{label}: footprint"
        );
        assert!(
            spot.stats().overlapped_runs > 0,
            "{label}: run overlap never engaged ({:?})",
            spot.stats()
        );
        assert_eq!(
            spot.stats().batch_runs,
            spot.stats().overlapped_runs + pts.chunks(chunk).len() as u64,
            "{label}: every non-final run of each batch call must overlap"
        );
    }
}

#[test]
fn learned_detector_with_cs_evolution_is_bit_identical() {
    // A learned detector has a populated CS, so periodic self-evolution
    // actually rewrites the SST (add/remove/replay of projected stores)
    // mid-stream — the heaviest maintenance the batch runs must split
    // around.
    let dims = 6;
    let train: Vec<DataPoint> = (0..300)
        .map(|i| {
            let centers = [[0.2, 0.2], [0.5, 0.7], [0.8, 0.3]];
            let c = centers[i % 3];
            let mut v = vec![0.0; dims];
            v[0] = c[0] + ((i * 7) % 13) as f64 / 13.0 * 0.04;
            v[1] = c[1] + ((i * 11) % 13) as f64 / 13.0 * 0.04;
            for (d, item) in v.iter_mut().enumerate().skip(2) {
                *item = 0.3 + ((i * (d + 3)) % 17) as f64 / 17.0 * 0.4;
            }
            DataPoint::new(v)
        })
        .collect();
    let make = || {
        let mut s = SpotBuilder::new(DomainBounds::unit(dims))
            .seed(23)
            .evolution(EvolutionConfig {
                period: 110,
                ..Default::default()
            })
            .pruning(85, 1e-4)
            .build()
            .unwrap();
        s.learn(&train).unwrap();
        s
    };
    let pts = stream(320, dims, 41);
    check_all_strategies(make, &pts, 73, 3);
}

#[test]
fn checkpoint_capture_is_executor_invariant_and_resume_is_bit_identical() {
    // Capturing a checkpoint through any executor (serial, fan-out
    // threads, pool workers) must produce byte-identical JSON — each
    // store's column encoding is one claim unit, and capture is read-only
    // per store. Resuming from it must then continue bit-identically to
    // the uninterrupted detector on every execution strategy.
    let make = || {
        let mut s = build_spot(31, 5, 90, 70);
        s.learn(&stream(250, 5, 9)).unwrap();
        s
    };
    let pts = stream(400, 5, 17);

    let mut uninterrupted = make();
    let want: Vec<Verdict> = pts
        .iter()
        .map(|p| uninterrupted.process(p).unwrap())
        .collect();

    let mut first_half = make();
    let prefix: Vec<Verdict> = pts[..210]
        .iter()
        .map(|p| first_half.process(p).unwrap())
        .collect();
    let serial_json = serde_json::to_string(&first_half.checkpoint()).unwrap();
    let fanout_json = serde_json::to_string(&first_half.checkpoint_with(&FanOut(3))).unwrap();
    assert_eq!(serial_json, fanout_json, "capture is executor-invariant");
    {
        let mut pooled = first_half;
        pooled.set_parallel_workers(Some(2));
        let pool_json = serde_json::to_string(&pooled.checkpoint()).unwrap();
        assert_eq!(serial_json, pool_json, "pool capture matches serial");
        first_half = pooled;
    }

    // Resume and continue: one-by-one, chunked batches, and pooled
    // batches all match the uninterrupted run.
    drop(first_half); // the "crash"
    let resume = || spot::restore_from_json(&serial_json).unwrap();
    {
        let mut r = resume();
        let mut got = prefix.clone();
        got.extend(pts[210..].iter().map(|p| r.process(p).unwrap()));
        assert_same_verdicts(&want, &got, "resumed one-by-one");
        assert_eq!(r.stats(), uninterrupted.stats());
        assert_eq!(r.footprint(), uninterrupted.footprint());
    }
    {
        let mut r = resume();
        let mut got = prefix.clone();
        for c in pts[210..].chunks(47) {
            got.extend(r.process_batch_with(c, &FanOut(3)).unwrap());
        }
        assert_same_verdicts(&want, &got, "resumed fan-out batches");
        assert_eq!(r.stats(), uninterrupted.stats());
        assert_eq!(r.footprint(), uninterrupted.footprint());
    }
    {
        let mut r = resume();
        r.set_parallel_workers(Some(2));
        let mut got = prefix.clone();
        for c in pts[210..].chunks(47) {
            got.extend(r.process_batch(c).unwrap());
        }
        assert_same_verdicts(&want, &got, "resumed pooled batches");
        assert_eq!(r.stats(), uninterrupted.stats());
        assert_eq!(r.footprint(), uninterrupted.footprint());
    }
}

#[test]
fn shared_checkpoint_never_stalls_concurrent_producers() {
    // SharedSpot::checkpoint must complete while producers keep the
    // detector busy — blocked producers claim capture units (the job-board
    // protocol) instead of convoying — and every checkpoint taken
    // mid-traffic must be a valid, restorable prefix state.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut spot = build_spot(37, 4, 95, 75);
    spot.learn(&stream(250, 4, 5)).unwrap();
    let shared = SharedSpot::new(spot);
    let base_processed = shared.stats().processed;

    let pts = Arc::new(stream(1800, 4, 21));
    let stop = Arc::new(AtomicBool::new(false));
    let checkpoints = std::thread::scope(|scope| {
        let mut producers = Vec::new();
        for t in 0..3usize {
            let shared = shared.clone();
            let pts = Arc::clone(&pts);
            producers.push(scope.spawn(move || {
                for chunk in pts[t * 600..(t + 1) * 600].chunks(60) {
                    shared.process_batch(chunk).unwrap();
                }
            }));
        }
        let checkpointer = {
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut taken = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Render outside the lock, as a real persister would.
                    taken.push(serde_json::to_string(&shared.checkpoint()).unwrap());
                }
                taken
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        checkpointer.join().unwrap()
    });

    assert_eq!(shared.stats().processed, base_processed + 1800);
    assert!(
        !checkpoints.is_empty(),
        "checkpointer made progress under load"
    );
    // Every mid-traffic checkpoint restores to a consistent prefix state,
    // and a restored detector accepts further traffic.
    for json in [checkpoints.first().unwrap(), checkpoints.last().unwrap()] {
        let mut restored = spot::restore_from_json(json).unwrap();
        let processed = restored.stats().processed;
        assert!(processed >= base_processed && processed <= base_processed + 1800);
        restored.process(&pts[0]).unwrap();
    }
    // A quiescent checkpoint equals the detector's own serial capture.
    let quiescent = serde_json::to_string(&shared.checkpoint()).unwrap();
    let direct = shared.with(|s| serde_json::to_string(&s.checkpoint()).unwrap());
    assert_eq!(quiescent, direct);
}
