//! Detection-stage outputs.

use spot_subspace::Subspace;
use spot_types::{DurableState, PersistError, StateReader, StateWriter};

/// One subspace in which a point was found outlying, with the PCS values
/// that triggered the call — the "associated outlying subspace(s)" the
/// problem statement requires SPOT to return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubspaceFinding {
    /// The outlying subspace.
    pub subspace: Subspace,
    /// Relative density of the point's cell there.
    pub rd: f64,
    /// Inverse relative standard deviation of the point's cell there.
    pub irsd: f64,
}

/// Verdict for one stream point.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Logical tick at which the point was processed (1-based).
    pub tick: u64,
    /// `true` when at least one SST subspace flagged the point.
    pub outlier: bool,
    /// Anomaly score in `(0, 1]`: `1/(1+min_rd)` over all SST subspaces —
    /// higher means the point sits in sparser territory somewhere.
    pub score: f64,
    /// The flagged subspaces, sparsest (lowest RD) first.
    pub findings: Vec<SubspaceFinding>,
    /// `true` when the concept-drift detector fired on this point.
    pub drift: bool,
}

impl Verdict {
    /// Bit-exact equality: every field compared, float scores by their
    /// IEEE-754 bit patterns. This is the equivalence predicate the
    /// executor-determinism and warm-restart suites pin — one definition,
    /// so growing [`Verdict`] can never silently weaken those checks.
    pub fn bitwise_eq(&self, other: &Verdict) -> bool {
        let Verdict {
            tick,
            outlier,
            score,
            findings,
            drift,
        } = self;
        *tick == other.tick
            && *outlier == other.outlier
            && score.to_bits() == other.score.to_bits()
            && *findings == other.findings
            && *drift == other.drift
    }

    /// The single sparsest finding, if any.
    pub fn top_finding(&self) -> Option<&SubspaceFinding> {
        self.findings.first()
    }

    /// Outlying subspaces only.
    pub fn subspaces(&self) -> Vec<Subspace> {
        self.findings.iter().map(|f| f.subspace).collect()
    }
}

/// The immutable product of the **sweep** phase of two-phase verdict
/// evaluation: everything derivable from a point's per-subspace PCS list
/// and the configuration alone — no detector state read or written.
/// Sweeps are pure per point, so the batch path computes plans for a whole
/// run in parallel (shardable jobs over the run's points) and then applies
/// the small sequential **commit** phase (RNG, drift, maintenance) in
/// point order from the plans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalPlan {
    /// Flagged subspaces, sparsest (lowest RD) first — moved into the
    /// point's [`Verdict`] at commit.
    pub findings: Vec<SubspaceFinding>,
    /// Anomaly score `1/(1+min_rd)` (0.0 when no subspace is monitored).
    pub score: f64,
    /// `true` when at least one subspace flagged the point.
    pub outlier: bool,
    /// FS projected cells inspected for the drift signal.
    pub monitored: u32,
    /// Of those, cells whose decayed occupancy was below the novelty floor.
    pub monitored_fresh: u32,
}

impl EvalPlan {
    /// Resets the plan for reuse (keeps the findings capacity).
    pub fn clear(&mut self) {
        self.findings.clear();
        self.score = 0.0;
        self.outlier = false;
        self.monitored = 0;
        self.monitored_fresh = 0;
    }
}

/// Summary of a learning-stage run.
#[derive(Debug, Clone)]
pub struct LearningReport {
    /// Number of training points consumed.
    pub training_points: usize,
    /// Outlier candidates selected by outlying degree.
    pub od_candidates: usize,
    /// Subspaces placed in CS (with their scores, best first).
    pub cs: Vec<(Subspace, f64)>,
    /// Subspaces placed in OS (supervised exemplars), best first.
    pub os: Vec<(Subspace, f64)>,
    /// Distinct MOGA objective evaluations across all searches.
    pub moga_evaluations: usize,
}

/// Running counters of a SPOT instance.
///
/// The first six fields are *logical* counters: for a fixed seed and
/// stream they are identical on every execution strategy (one-by-one,
/// batched, pooled, cooperative), and equality compares **only them**.
/// The remaining fields are eval-phase observability metrics — wall-clock
/// timings and pipeline counters that legitimately differ between
/// strategies and machines — excluded from `==` so equivalence tests can
/// keep pinning the logical state bit-exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpotStats {
    /// Stream points processed by the detection stage.
    pub processed: u64,
    /// Points flagged as projected outliers.
    pub outliers: u64,
    /// CS self-evolution rounds executed.
    pub evolutions: u64,
    /// Subspaces added to OS online.
    pub os_added: u64,
    /// Concept-drift alarms raised.
    pub drift_events: u64,
    /// Cells evicted by pruning.
    pub cells_pruned: u64,
    /// Points that went through the batch path (the denominator for the
    /// eval-phase throughput; the timers below cover only batch runs).
    pub batch_points: u64,
    /// Internal maintenance-bounded batch runs executed.
    pub batch_runs: u64,
    /// Batch runs whose shard ingestion overlapped the previous run's
    /// commit phase (run pipelining).
    pub overlapped_runs: u64,
    /// Wall-clock nanoseconds spent in the (parallelizable) verdict sweep
    /// phase of batch runs.
    pub sweep_nanos: u64,
    /// Wall-clock nanoseconds spent in the sequential commit phase of
    /// batch runs (overlapped commits still accrue here).
    pub commit_nanos: u64,
}

impl PartialEq for SpotStats {
    fn eq(&self, other: &Self) -> bool {
        // Logical counters only — see the type docs.
        (
            self.processed,
            self.outliers,
            self.evolutions,
            self.os_added,
            self.drift_events,
            self.cells_pruned,
        ) == (
            other.processed,
            other.outliers,
            other.evolutions,
            other.os_added,
            other.drift_events,
            other.cells_pruned,
        )
    }
}

impl Eq for SpotStats {}

impl SpotStats {
    /// Batch eval-phase throughput in points/sec (sweep + commit), or
    /// `None` before any batch run completed.
    pub fn eval_points_per_sec(&self) -> Option<f64> {
        let nanos = self.sweep_nanos + self.commit_nanos;
        if nanos == 0 || self.batch_points == 0 {
            return None;
        }
        Some(self.batch_points as f64 * 1e9 / nanos as f64)
    }
}

impl DurableState for SpotStats {
    fn capture(&self, w: &mut StateWriter) {
        w.u64("processed", self.processed);
        w.u64("outliers", self.outliers);
        w.u64("evolutions", self.evolutions);
        w.u64("os_added", self.os_added);
        w.u64("drift_events", self.drift_events);
        w.u64("cells_pruned", self.cells_pruned);
        w.u64("batch_points", self.batch_points);
        w.u64("batch_runs", self.batch_runs);
        w.u64("overlapped_runs", self.overlapped_runs);
        w.u64("sweep_nanos", self.sweep_nanos);
        w.u64("commit_nanos", self.commit_nanos);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
        self.processed = r.u64("processed")?;
        self.outliers = r.u64("outliers")?;
        self.evolutions = r.u64("evolutions")?;
        self.os_added = r.u64("os_added")?;
        self.drift_events = r.u64("drift_events")?;
        self.cells_pruned = r.u64("cells_pruned")?;
        self.batch_points = r.u64("batch_points")?;
        self.batch_runs = r.u64("batch_runs")?;
        self.overlapped_runs = r.u64("overlapped_runs")?;
        self.sweep_nanos = r.u64("sweep_nanos")?;
        self.commit_nanos = r.u64("commit_nanos")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let s0 = Subspace::from_dims([0]).unwrap();
        let s1 = Subspace::from_dims([1, 2]).unwrap();
        let v = Verdict {
            tick: 5,
            outlier: true,
            score: 0.9,
            findings: vec![
                SubspaceFinding {
                    subspace: s0,
                    rd: 0.01,
                    irsd: 0.0,
                },
                SubspaceFinding {
                    subspace: s1,
                    rd: 0.05,
                    irsd: 1.0,
                },
            ],
            drift: false,
        };
        assert_eq!(v.top_finding().unwrap().subspace, s0);
        assert_eq!(v.subspaces(), vec![s0, s1]);
    }

    #[test]
    fn stats_equality_ignores_eval_metrics() {
        let mut a = SpotStats {
            processed: 10,
            outliers: 2,
            ..Default::default()
        };
        let mut b = a;
        b.sweep_nanos = 12345;
        b.commit_nanos = 999;
        b.batch_points = 10;
        b.batch_runs = 1;
        b.overlapped_runs = 1;
        assert_eq!(a, b, "timings and pipeline counters are observability only");
        a.outliers = 3;
        assert_ne!(a, b, "logical counters still compare");
        assert_eq!(a.eval_points_per_sec(), None);
        assert!(b.eval_points_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn eval_plan_clear_keeps_capacity() {
        let mut plan = EvalPlan {
            findings: Vec::with_capacity(8),
            score: 0.5,
            outlier: true,
            monitored: 3,
            monitored_fresh: 1,
        };
        plan.findings.push(SubspaceFinding {
            subspace: Subspace::from_dims([0]).unwrap(),
            rd: 0.01,
            irsd: 0.0,
        });
        plan.clear();
        assert_eq!(plan, EvalPlan::default());
        assert!(plan.findings.capacity() >= 8);
    }

    #[test]
    fn empty_verdict() {
        let v = Verdict {
            tick: 1,
            outlier: false,
            score: 0.1,
            findings: vec![],
            drift: false,
        };
        assert!(v.top_finding().is_none());
        assert!(v.subspaces().is_empty());
    }
}
