//! Detection-stage outputs.

use spot_subspace::Subspace;

/// One subspace in which a point was found outlying, with the PCS values
/// that triggered the call — the "associated outlying subspace(s)" the
/// problem statement requires SPOT to return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubspaceFinding {
    /// The outlying subspace.
    pub subspace: Subspace,
    /// Relative density of the point's cell there.
    pub rd: f64,
    /// Inverse relative standard deviation of the point's cell there.
    pub irsd: f64,
}

/// Verdict for one stream point.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Logical tick at which the point was processed (1-based).
    pub tick: u64,
    /// `true` when at least one SST subspace flagged the point.
    pub outlier: bool,
    /// Anomaly score in `(0, 1]`: `1/(1+min_rd)` over all SST subspaces —
    /// higher means the point sits in sparser territory somewhere.
    pub score: f64,
    /// The flagged subspaces, sparsest (lowest RD) first.
    pub findings: Vec<SubspaceFinding>,
    /// `true` when the concept-drift detector fired on this point.
    pub drift: bool,
}

impl Verdict {
    /// The single sparsest finding, if any.
    pub fn top_finding(&self) -> Option<&SubspaceFinding> {
        self.findings.first()
    }

    /// Outlying subspaces only.
    pub fn subspaces(&self) -> Vec<Subspace> {
        self.findings.iter().map(|f| f.subspace).collect()
    }
}

/// Summary of a learning-stage run.
#[derive(Debug, Clone)]
pub struct LearningReport {
    /// Number of training points consumed.
    pub training_points: usize,
    /// Outlier candidates selected by outlying degree.
    pub od_candidates: usize,
    /// Subspaces placed in CS (with their scores, best first).
    pub cs: Vec<(Subspace, f64)>,
    /// Subspaces placed in OS (supervised exemplars), best first.
    pub os: Vec<(Subspace, f64)>,
    /// Distinct MOGA objective evaluations across all searches.
    pub moga_evaluations: usize,
}

/// Running counters of a SPOT instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpotStats {
    /// Stream points processed by the detection stage.
    pub processed: u64,
    /// Points flagged as projected outliers.
    pub outliers: u64,
    /// CS self-evolution rounds executed.
    pub evolutions: u64,
    /// Subspaces added to OS online.
    pub os_added: u64,
    /// Concept-drift alarms raised.
    pub drift_events: u64,
    /// Cells evicted by pruning.
    pub cells_pruned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let s0 = Subspace::from_dims([0]).unwrap();
        let s1 = Subspace::from_dims([1, 2]).unwrap();
        let v = Verdict {
            tick: 5,
            outlier: true,
            score: 0.9,
            findings: vec![
                SubspaceFinding {
                    subspace: s0,
                    rd: 0.01,
                    irsd: 0.0,
                },
                SubspaceFinding {
                    subspace: s1,
                    rd: 0.05,
                    irsd: 1.0,
                },
            ],
            drift: false,
        };
        assert_eq!(v.top_finding().unwrap().subspace, s0);
        assert_eq!(v.subspaces(), vec![s0, s1]);
    }

    #[test]
    fn empty_verdict() {
        let v = Verdict {
            tick: 1,
            outlier: false,
            score: 0.1,
            findings: vec![],
            drift: false,
        };
        assert!(v.top_finding().is_none());
        assert!(v.subspaces().is_empty());
    }
}
