//! Thread-safe detector handle for producer/consumer deployments.
//!
//! A live deployment has one or more producer threads pulling from network
//! feeds (see `spot_stream::ChannelSource`) while monitoring threads read
//! verdict statistics or run `explain` on demand. [`SharedSpot`] wraps the
//! detector for all of them, with three properties the old
//! one-`Mutex`-around-everything wrapper lacked:
//!
//! * **Cooperative ingestion.** The detector's synopsis batch phase
//!   partitions the SST into subspace-disjoint shards (one per projected
//!   store) claimed from an atomic cursor. When a producer submits a batch
//!   it publishes that shard work on a job board; other producers that
//!   arrive while the detector lock is held *claim shards of the running
//!   batch* instead of convoying on the mutex. Each shard has exactly one
//!   writer at a time and every store sees points in arrival order, so
//!   verdicts are bit-identical to the sequential path (pinned by tests).
//! * **Lock-free monitoring.** [`SharedSpot::stats`] reads a seqlock of
//!   atomics published after every operation — the logical counters plus
//!   the eval-phase metrics (sweep/commit timings, pipeline counters) —
//!   and [`SharedSpot::footprint`] reads the synopsis manager's
//!   [`LiveCounters`] mirror — neither touches the detector lock, so
//!   dashboards never stall ingestion.
//! * **Two-phase batch pipelining.** A batch run now dispatches *three*
//!   kinds of helpable work through the job board: the shard ingestion,
//!   the pure verdict **sweep** over the run's points, and — when a run's
//!   commit cannot mutate the synopses — the previous run's sequential
//!   **commit**, riding the next run's shard dispatch as a claim-once
//!   unit. Producers blocked on the detector lock therefore spend far
//!   less time in the idle spin/park fallback: the board has work during
//!   evaluation too, not just during ingestion. Maintenance
//!   (self-evolution, OS growth, pruning) still runs under the lock
//!   exactly as in the sequential detector, which is what keeps the
//!   single-writer guarantees trivial to uphold.

use crate::detector::{Spot, SynopsisFootprint};
use crate::snapshot::SpotCheckpoint;
use crate::verdict::{LearningReport, SpotStats, Verdict};
use parking_lot::Mutex;
use spot_synopsis::pool::ErasedJob;
use spot_synopsis::{LiveCounters, StoreExecutor};
use spot_types::{DataPoint, Result};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// One published shard job: the lifetime-erased claim closure (see
/// [`ErasedJob`] for the erasure contract) plus helper accounting. Only
/// helpers registered before the job closes run it, and the owner blocks
/// until the helper count returns to zero — which upholds the contract.
struct JobInner {
    /// Monotonic id, so a helper that already drained this job's shards
    /// can tell it apart from the next batch's job and idle instead of
    /// re-entering a claim loop with nothing left to claim.
    id: u64,
    job: ErasedJob,
    /// Helpers currently inside the job.
    helpers: StdMutex<usize>,
    drained: Condvar,
}

/// Publication point for the active batch's shard work.
#[derive(Default)]
struct JobBoard {
    slot: StdMutex<Option<Arc<JobInner>>>,
    next_id: AtomicU64,
}

impl JobBoard {
    /// Publishes `work` as the active job. Caller must be the (unique)
    /// batch owner — i.e. hold the detector lock — and must `retire` the
    /// job before its frame returns (the erasure contract).
    fn publish(&self, work: &(dyn Fn() + Sync)) -> Arc<JobInner> {
        // SAFETY: `retire` blocks until every registered helper has left
        // the job, and no helper can register after `retire` removes it
        // from the slot.
        let job = Arc::new(JobInner {
            id: self.next_id.fetch_add(1, Ordering::Relaxed) + 1,
            job: unsafe { ErasedJob::erase(work) },
            helpers: StdMutex::new(0),
            drained: Condvar::new(),
        });
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&job));
        job
    }

    /// Joins the active job, if any, and runs its claim loop to
    /// exhaustion. `last_helped` carries the id of the job this caller
    /// already drained, so a finished job is not re-entered in a hot loop
    /// while its owner merges results. Returns `false` when there was
    /// nothing (new) to help with.
    fn help_once(&self, last_helped: &mut u64) -> bool {
        let job = {
            let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            let Some(job) = slot.as_ref() else {
                return false;
            };
            if job.id == *last_helped {
                return false;
            }
            // Register under the slot lock: after `retire` takes the job
            // off the board, no new helper can appear.
            *job.helpers.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            Arc::clone(job)
        };
        *last_helped = job.id;
        // Registered above: the owner keeps the closure alive until our
        // decrement below.
        job.job.run();
        let mut helpers = job.helpers.lock().unwrap_or_else(|e| e.into_inner());
        *helpers -= 1;
        if *helpers == 0 {
            job.drained.notify_all();
        }
        drop(helpers);
        true
    }

    /// Takes the job off the board and blocks until every registered
    /// helper has left `work`.
    fn retire(&self, job: &Arc<JobInner>) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let mut helpers = job.helpers.lock().unwrap_or_else(|e| e.into_inner());
        while *helpers > 0 {
            helpers = job.drained.wait(helpers).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The executor a batch owner hands to the detector: runs the shard-claim
/// closure itself *and* exposes it to producer threads spinning on the
/// detector lock.
struct CooperativeExecutor<'a> {
    board: &'a JobBoard,
}

impl StoreExecutor for CooperativeExecutor<'_> {
    fn execute(&self, work: &(dyn Fn() + Sync)) {
        let job = self.board.publish(work);
        job.job.run();
        self.board.retire(&job);
        // Re-raise with the original payload (helpers included) so the
        // batch owner — and any supervision layer above it — sees the
        // claim unit's actual panic, not a generic marker.
        job.job.resume_if_panicked();
    }
}

/// Seqlock over the running counters: single writer (whoever holds the
/// detector lock), wait-free readers. An odd sequence number marks a write
/// in progress; readers retry until they straddle a stable even value.
/// Carries the logical counters *and* the eval-phase metrics
/// (sweep/commit timings, pipeline counters), so monitoring threads read
/// batch-eval throughput without ever touching the detector lock.
struct StatsCell {
    seq: AtomicU64,
    fields: [AtomicU64; 11],
}

impl StatsCell {
    fn new() -> Self {
        StatsCell {
            seq: AtomicU64::new(0),
            fields: Default::default(),
        }
    }

    fn publish(&self, stats: &SpotStats) {
        let values = [
            stats.processed,
            stats.outliers,
            stats.evolutions,
            stats.os_added,
            stats.drift_events,
            stats.cells_pruned,
            stats.batch_points,
            stats.batch_runs,
            stats.overlapped_runs,
            stats.sweep_nanos,
            stats.commit_nanos,
        ];
        // Odd: write in progress. The fence orders the field stores after
        // the odd sequence number becomes visible — a Release on the
        // increment alone would only order *prior* accesses and lets
        // weakly-ordered CPUs publish fields under an even sequence,
        // tearing reads.
        self.seq.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (cell, v) in self.fields.iter().zip(values) {
            cell.store(v, Ordering::Relaxed);
        }
        self.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    fn read(&self) -> SpotStats {
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut values = [0u64; 11];
            for (v, cell) in values.iter_mut().zip(&self.fields) {
                *v = cell.load(Ordering::Relaxed);
            }
            // Order the field loads before the validating re-read; the
            // mirror image of the writer's Release fence.
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                return SpotStats {
                    processed: values[0],
                    outliers: values[1],
                    evolutions: values[2],
                    os_added: values[3],
                    drift_events: values[4],
                    cells_pruned: values[5],
                    batch_points: values[6],
                    batch_runs: values[7],
                    overlapped_runs: values[8],
                    sweep_nanos: values[9],
                    commit_nanos: values[10],
                };
            }
        }
    }
}

struct Shared {
    core: Mutex<Spot>,
    board: JobBoard,
    stats: StatsCell,
    live: Arc<LiveCounters>,
    cooperative: bool,
}

/// Cloneable, thread-safe handle to a SPOT detector.
#[derive(Clone)]
pub struct SharedSpot {
    inner: Arc<Shared>,
}

impl SharedSpot {
    /// Wraps a detector with cooperative ingestion enabled (the default):
    /// producer threads blocked behind a running batch claim its synopsis
    /// shards instead of idling.
    pub fn new(spot: Spot) -> Self {
        Self::build(spot, true)
    }

    /// Wraps a detector behind a plain single mutex — every operation
    /// serializes, producers convoy. This is the pre-sharding behavior,
    /// kept as the control arm for benchmarks and equivalence tests.
    pub fn single_mutex(spot: Spot) -> Self {
        Self::build(spot, false)
    }

    /// Wraps a detector whose batch work should dispatch through its own
    /// executor service (`Spot::executor`) instead of the cooperative job
    /// board — the fleet runtime's mode: every tenant's shards and sweeps
    /// fan out over the one pool the shared [`spot_synopsis::ExecutorHandle`]
    /// owns, while `stats()`/`footprint()` stay lock-free as in every
    /// other mode. Verdicts are bit-identical to both other modes.
    pub fn with_service_executor(spot: Spot) -> Self {
        // Non-cooperative: process_batch falls through to
        // `Spot::process_batch`, which asks the executor service.
        Self::build(spot, false)
    }

    fn build(spot: Spot, cooperative: bool) -> Self {
        let live = spot.live_counters();
        let shared = SharedSpot {
            inner: Arc::new(Shared {
                stats: StatsCell::new(),
                board: JobBoard::default(),
                live,
                core: Mutex::new(spot),
                cooperative,
            }),
        };
        let guard = shared.inner.core.lock();
        shared.inner.stats.publish(guard.stats());
        drop(guard);
        shared
    }

    /// Acquires the detector lock; while waiting, claims shards of
    /// whatever batch currently holds it (cooperative mode). Falls back to
    /// a blocking wait once there is nothing to help with.
    fn lock_core(&self) -> parking_lot::MutexGuard<'_, Spot> {
        if !self.inner.cooperative {
            return self.inner.core.lock();
        }
        let mut idle_spins = 0u32;
        let mut last_helped = 0u64;
        loop {
            if let Some(guard) = self.inner.core.try_lock() {
                return guard;
            }
            if self.inner.board.help_once(&mut last_helped) {
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins > 64 {
                // Owner is in a non-helpable phase. With two-phase
                // evaluation these are rare — sweeps, shard ingestion and
                // overlapped commits all publish board work — leaving only
                // maintenance (self-evolution, OS growth, pruning) and the
                // gaps between dispatches; park on the mutex.
                return self.inner.core.lock();
            }
            std::thread::yield_now();
        }
    }

    fn publish_stats(&self, spot: &Spot) {
        self.inner.stats.publish(spot.stats());
    }

    /// Runs the learning stage, returning the same [`LearningReport`] the
    /// unwrapped [`Spot::learn`] produces (CS/OS contents, MOGA effort) —
    /// the lock adds no information loss.
    pub fn learn(&self, training: &[DataPoint]) -> Result<LearningReport> {
        let mut guard = self.lock_core();
        let r = guard.learn(training);
        self.publish_stats(&guard);
        r
    }

    /// Processes one point.
    pub fn process(&self, point: &DataPoint) -> Result<Verdict> {
        let mut guard = self.lock_core();
        let r = guard.process(point);
        self.publish_stats(&guard);
        r
    }

    /// Processes a batch under a single lock acquisition — the preferred
    /// entry for producer threads that drain their channel in chunks. In
    /// cooperative mode the batch's shard work is published on the job
    /// board, so concurrent producers accelerate it instead of convoying;
    /// verdicts are bit-identical either way.
    pub fn process_batch(&self, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        let mut guard = self.lock_core();
        let r = if self.inner.cooperative {
            let exec = CooperativeExecutor {
                board: &self.inner.board,
            };
            guard.process_batch_with(points, &exec)
        } else {
            guard.process_batch(points)
        };
        self.publish_stats(&guard);
        r
    }

    /// Captures a complete v2 checkpoint of the detector (see
    /// [`Spot::checkpoint`]) without stalling concurrent producers: while
    /// the capture holds the detector lock, every projected store's column
    /// encoding is published on the job board as a claim unit — the same
    /// claim-once protocol batch ingestion rides — so producers blocked on
    /// the lock *help finish the capture* instead of convoying behind it.
    /// The expensive part of persistence (rendering the checkpoint to
    /// JSON, writing it out) happens on the returned value, entirely
    /// outside the lock.
    pub fn checkpoint(&self) -> SpotCheckpoint {
        let guard = self.lock_core();
        if self.inner.cooperative {
            let exec = CooperativeExecutor {
                board: &self.inner.board,
            };
            guard.checkpoint_with(&exec)
        } else {
            guard.checkpoint()
        }
    }

    /// Snapshot of the running counters — served wait-free from a seqlock
    /// published after every operation; never touches the detector lock.
    pub fn stats(&self) -> SpotStats {
        self.inner.stats.read()
    }

    /// Snapshot of the synopsis memory footprint — served from the
    /// manager's lock-free [`LiveCounters`] mirror; never touches the
    /// detector lock. Values lag ingestion by at most the shard currently
    /// being written.
    pub fn footprint(&self) -> SynopsisFootprint {
        let (base_cells, projected_cells) = self.inner.live.live_cells();
        SynopsisFootprint {
            base_cells,
            projected_cells,
            approx_bytes: self.inner.live.approx_bytes(),
        }
    }

    /// Runs a closure with exclusive access to the detector (for anything
    /// not covered by the convenience methods).
    pub fn with<R>(&self, f: impl FnOnce(&mut Spot) -> R) -> R {
        let mut guard = self.lock_core();
        let r = f(&mut guard);
        self.publish_stats(&guard);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvolutionConfig, SpotBuilder};
    use spot_types::DomainBounds;
    use std::sync::atomic::AtomicBool;

    fn train() -> Vec<DataPoint> {
        (0..200)
            .map(|i| DataPoint::new(vec![0.4 + (i % 10) as f64 * 0.01; 4]))
            .collect()
    }

    fn stream(n: usize, dims: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                DataPoint::new(
                    (0..dims)
                        .map(|d| ((i * (d + 3) + 7 * d) % 23) as f64 / 23.0)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn shared_processing_across_threads() {
        let spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        let shared = SharedSpot::new(spot);
        shared.learn(&train()).unwrap();

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut outliers = 0;
                for i in 0..100 {
                    let v = 0.4 + ((i + t) % 10) as f64 * 0.01;
                    if h.process(&DataPoint::new(vec![v; 4])).unwrap().outlier {
                        outliers += 1;
                    }
                }
                outliers
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().processed, 400);
        assert!(shared.footprint().base_cells > 0);
    }

    #[test]
    fn with_gives_full_access() {
        let spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        let shared = SharedSpot::new(spot);
        let phi = shared.with(|s| s.config().phi());
        assert_eq!(phi, 4);
    }

    fn maintenance_heavy_spot(seed: u64) -> Spot {
        // Periodic evolution and pruning both land inside the test
        // streams, so the cooperative batch path has to split runs at
        // maintenance boundaries exactly like the sequential detector.
        let mut s = SpotBuilder::new(DomainBounds::unit(4))
            .seed(seed)
            .evolution(EvolutionConfig {
                period: 90,
                ..Default::default()
            })
            .pruning(70, 1e-4)
            .build()
            .unwrap();
        s.learn(&train()).unwrap();
        s
    }

    #[test]
    fn cooperative_batches_match_sequential_processing_bitwise() {
        let pts = stream(400, 4);
        let mut reference = maintenance_heavy_spot(11);
        let want: Vec<Verdict> = pts.iter().map(|p| reference.process(p).unwrap()).collect();

        let shared = SharedSpot::new(maintenance_heavy_spot(11));
        let mut got = Vec::new();
        for chunk in pts.chunks(57) {
            got.extend(shared.process_batch(chunk).unwrap());
        }
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
        }
        assert_eq!(shared.stats(), *reference.stats());
        assert_eq!(shared.with(|s| s.footprint()), reference.footprint());
    }

    #[test]
    fn helped_batches_are_bit_identical_to_unhelped() {
        // Drive the same batches through the cooperative path while
        // helper threads hammer the job board, and through the
        // single-mutex path; every verdict must match bit-for-bit no
        // matter how many helpers claimed shards.
        let pts = stream(300, 4);
        let baseline = SharedSpot::single_mutex(maintenance_heavy_spot(5));
        let mut want = Vec::new();
        for chunk in pts.chunks(75) {
            want.extend(baseline.process_batch(chunk).unwrap());
        }

        let shared = SharedSpot::new(maintenance_heavy_spot(5));
        let stop = Arc::new(AtomicBool::new(false));
        let helpers: Vec<_> = (0..3)
            .map(|_| {
                let shared = shared.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut helped = 0u64;
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if shared.inner.board.help_once(&mut last) {
                            helped += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    helped
                })
            })
            .collect();
        let mut got = Vec::new();
        for chunk in pts.chunks(75) {
            got.extend(shared.process_batch(chunk).unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        for h in helpers {
            h.join().unwrap();
        }
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
        }
        assert_eq!(shared.stats(), baseline.stats());
    }

    #[test]
    fn concurrent_producers_ingest_every_point_once() {
        let shared = SharedSpot::new(maintenance_heavy_spot(7));
        let pts = Arc::new(stream(600, 4));
        let mut handles = Vec::new();
        for t in 0..3usize {
            let shared = shared.clone();
            let pts = Arc::clone(&pts);
            handles.push(std::thread::spawn(move || {
                let mut ticks = Vec::new();
                for chunk in pts[t * 200..(t + 1) * 200].chunks(40) {
                    for v in shared.process_batch(chunk).unwrap() {
                        ticks.push(v.tick);
                    }
                }
                ticks
            }));
        }
        let mut all_ticks: Vec<u64> = Vec::new();
        for h in handles {
            all_ticks.extend(h.join().unwrap());
        }
        all_ticks.sort_unstable();
        // Every point got a unique consecutive tick (after the 200
        // training ticks), regardless of producer interleaving.
        let first = *all_ticks.first().unwrap();
        assert_eq!(first, 201);
        for (i, &t) in all_ticks.iter().enumerate() {
            assert_eq!(t, first + i as u64);
        }
        assert_eq!(shared.stats().processed, 600);
        assert_eq!(shared.footprint(), shared.with(|s| s.footprint()));
    }

    #[test]
    fn monitoring_reads_never_block_on_ingestion() {
        let shared = SharedSpot::new(maintenance_heavy_spot(9));
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut max_processed = 0;
                while !stop.load(Ordering::Relaxed) {
                    let stats = shared.stats();
                    let fp = shared.footprint();
                    assert!(stats.processed >= max_processed, "counters went backwards");
                    max_processed = stats.processed;
                    let _ = fp.approx_bytes;
                    reads += 1;
                }
                reads
            })
        };
        for chunk in stream(400, 4).chunks(50) {
            shared.process_batch(chunk).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let reads = monitor.join().unwrap();
        assert!(reads > 0);
        // At quiescence the lock-free views agree with the exact sweeps.
        assert_eq!(shared.stats().processed, 400);
        assert_eq!(shared.footprint(), shared.with(|s| s.footprint()));
        assert_eq!(shared.stats(), shared.with(|s| *s.stats()));
    }
}
