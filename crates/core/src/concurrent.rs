//! Thread-safe wrapper for producer/consumer deployments.
//!
//! A live deployment typically has one thread pulling from the network feed
//! (see `spot_stream::ChannelSource`) while another queries verdict
//! statistics or runs `explain` on demand. [`SharedSpot`] wraps the detector
//! in an `Arc<parking_lot::Mutex>` so both sides share it safely; the
//! per-point critical section is exactly one `process` call.

use crate::detector::{Spot, SynopsisFootprint};
use crate::verdict::{SpotStats, Verdict};
use parking_lot::Mutex;
use spot_types::{DataPoint, Result};
use std::sync::Arc;

/// Cloneable, thread-safe handle to a SPOT detector.
#[derive(Clone)]
pub struct SharedSpot {
    inner: Arc<Mutex<Spot>>,
}

impl SharedSpot {
    /// Wraps a detector.
    pub fn new(spot: Spot) -> Self {
        SharedSpot {
            inner: Arc::new(Mutex::new(spot)),
        }
    }

    /// Runs the learning stage.
    pub fn learn(&self, training: &[DataPoint]) -> Result<()> {
        self.inner.lock().learn(training).map(|_| ())
    }

    /// Processes one point.
    pub fn process(&self, point: &DataPoint) -> Result<Verdict> {
        self.inner.lock().process(point)
    }

    /// Processes a batch under a single lock acquisition — the preferred
    /// entry for producer threads that drain their channel in chunks, since
    /// per-point locking dominates once the synopsis path itself is cheap.
    pub fn process_batch(&self, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        self.inner.lock().process_batch(points)
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> SpotStats {
        *self.inner.lock().stats()
    }

    /// Snapshot of the synopsis memory footprint.
    pub fn footprint(&self) -> SynopsisFootprint {
        self.inner.lock().footprint()
    }

    /// Runs a closure with exclusive access to the detector (for anything
    /// not covered by the convenience methods).
    pub fn with<R>(&self, f: impl FnOnce(&mut Spot) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotBuilder;
    use spot_types::DomainBounds;

    fn train() -> Vec<DataPoint> {
        (0..200)
            .map(|i| DataPoint::new(vec![0.4 + (i % 10) as f64 * 0.01; 4]))
            .collect()
    }

    #[test]
    fn shared_processing_across_threads() {
        let spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        let shared = SharedSpot::new(spot);
        shared.learn(&train()).unwrap();

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut outliers = 0;
                for i in 0..100 {
                    let v = 0.4 + ((i + t) % 10) as f64 * 0.01;
                    if h.process(&DataPoint::new(vec![v; 4])).unwrap().outlier {
                        outliers += 1;
                    }
                }
                outliers
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().processed, 400);
        assert!(shared.footprint().base_cells > 0);
    }

    #[test]
    fn with_gives_full_access() {
        let spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        let shared = SharedSpot::new(spot);
        let phi = shared.with(|s| s.config().phi());
        assert_eq!(phi, 4);
    }
}
