//! SPOT configuration and builder.

use spot_moga::MogaConfig;
use spot_stream::TimeModel;
use spot_synopsis::ExecutorHandle;
use spot_types::{DomainBounds, Result, SpotError};

/// Outlier-ness thresholds applied to the PCS of a point's projected cell.
///
/// A point is a projected outlier in subspace `s` when `rd < rd` and — if
/// `irsd` is set — `irsd < irsd` for the cell it falls into (the paper's
/// "PCS of the cell it belongs to in one or more subspaces fall[s] under
/// certain pre-specified thresholds").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Thresholds {
    /// Relative-density threshold (e.g. 0.1 = ten times sparser than the
    /// uniform expectation).
    pub rd: f64,
    /// Optional IRSD threshold; `None` tests RD alone.
    pub irsd: Option<f64>,
}

impl Default for Thresholds {
    fn default() -> Self {
        // rd = 0.06: with the default time model (effective weight ≈ 2000,
        // in practice slightly less before saturation) and granularity 10,
        // a lone point in a 2-dim cell sits at RD = 100/N ≈ 0.05–0.055 —
        // the threshold must clear that singleton level with margin while
        // rejecting cells that already hold a second point (RD ≈ 0.11).
        Thresholds {
            rd: 0.06,
            irsd: Some(5.0),
        }
    }
}

/// Knobs of the offline learning stage.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LearningConfig {
    /// MOGA parameters shared by all learning-stage searches.
    pub moga: MogaConfig,
    /// Leader-clustering threshold τ; `None` estimates it from the data
    /// (half the mean pairwise distance of a sample).
    pub leader_tau: Option<f64>,
    /// Shuffled clustering runs for the outlying degree.
    pub od_runs: usize,
    /// Membership-vs-eccentricity mix of the outlying degree.
    pub od_alpha: f64,
    /// Fraction of training points (by outlying degree) treated as outlier
    /// candidates for CS construction (at least 3 points).
    pub top_fraction: f64,
    /// Subspaces taken from each MOGA run into CS/OS.
    pub moga_top_k: usize,
    /// Cardinality cap for MOGA chromosomes (`None` = up to ϕ).
    pub max_cardinality: Option<usize>,
    /// Replay the training batch into the streaming synopses after
    /// learning, so detection starts against a warmed model.
    pub replay_training: bool,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            moga: MogaConfig::default(),
            leader_tau: None,
            od_runs: 5,
            od_alpha: 0.7,
            top_fraction: 0.05,
            moga_top_k: 10,
            max_cardinality: Some(4),
            replay_training: true,
        }
    }
}

/// Online adaptation: CS self-evolution and OS growth.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EvolutionConfig {
    /// Master switch.
    pub enabled: bool,
    /// Period in points between evolution rounds.
    pub period: u64,
    /// Capacity of the detected-outlier buffer feeding OS growth.
    pub outlier_buffer: usize,
    /// Size of the reservoir sample of recent points used to score
    /// candidate subspaces online.
    pub reservoir: usize,
    /// Minimum buffered outliers before an OS-growth MOGA run.
    pub min_outliers_for_os: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            enabled: true,
            period: 1000,
            outlier_buffer: 64,
            reservoir: 256,
            min_outliers_for_os: 5,
        }
    }
}

/// Concept-drift detection: a Page–Hinkley test over the *projected
/// freshness* of arriving points — the fraction of a point's monitored
/// projected cells (across all SST subspaces) whose decayed occupancy,
/// point included, is below `novelty_floor`. A stationary stream keeps
/// revisiting its populated cells, so the signal hovers near zero; when the
/// distribution moves, arriving points keep opening never-seen cells and
/// the signal jumps.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// Master switch.
    pub enabled: bool,
    /// Page–Hinkley tolerance δ (expected drift-free fluctuation).
    pub delta: f64,
    /// Page–Hinkley alarm threshold λ.
    pub lambda: f64,
    /// Minimum observations before alarms may fire.
    pub min_points: u64,
    /// Decayed-occupancy floor below which a projected cell counts as
    /// fresh. The occupancy includes the arriving point (weight 1), so the
    /// default 5.0 means "the cell held less than ~4 points of decayed
    /// weight before" — loose enough that a distribution moving into
    /// thinly-covered territory registers, tight enough that revisited
    /// dense cells never do.
    pub novelty_floor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            enabled: true,
            delta: 0.02,
            lambda: 5.0,
            min_points: 1000,
            novelty_floor: 5.0,
        }
    }
}

/// Dispatch-granularity tuning for the batch hot path. Every knob is a
/// pure scheduling decision: results are bit-identical for every valid
/// setting (the claim protocol guarantees one writer per unit regardless
/// of who claims it), so these trade dispatch overhead against
/// parallelism without affecting verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct TuningConfig {
    /// Minimum monitored stores before a batch dispatch engages the
    /// executor service's worker pool under machine-sized defaults (a
    /// forced worker budget overrides this).
    pub pool_min_stores: usize,
    /// Minimum run points before a batch dispatch engages the pool.
    pub pool_min_points: usize,
    /// Points claimed per cursor hit in the parallel verdict sweep.
    pub sweep_chunk: usize,
    /// Points claimed per cursor hit in the sharded commit assembly.
    pub commit_chunk: usize,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            pool_min_stores: 8,
            pool_min_points: 8,
            sweep_chunk: 32,
            commit_chunk: 32,
        }
    }
}

// Hand-written so configurations captured before the tuning block existed
// (and payloads that simply omit it) restore to the defaults instead of
// failing — the in-tree serde derive has no missing-field fallback.
impl serde::Deserialize for TuningConfig {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(TuningConfig::default());
        }
        let d = TuningConfig::default();
        let field = |name: &str, fallback: usize| match v.get_field(name) {
            Some(fv) => {
                serde::Deserialize::from_value(fv).map_err(|e: serde::DeError| e.in_field(name))
            }
            None => Ok(fallback),
        };
        Ok(TuningConfig {
            pool_min_stores: field("pool_min_stores", d.pool_min_stores)?,
            pool_min_points: field("pool_min_points", d.pool_min_points)?,
            sweep_chunk: field("sweep_chunk", d.sweep_chunk)?,
            commit_chunk: field("commit_chunk", d.commit_chunk)?,
        })
    }
}

/// Full SPOT configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SpotConfig {
    /// Attribute domain bounds (defines the grid box and ϕ).
    pub bounds: DomainBounds,
    /// Equi-width grid granularity per dimension.
    pub granularity: u16,
    /// The (ω, ε) time model.
    pub time_model: TimeModel,
    /// Outlier-ness thresholds.
    pub thresholds: Thresholds,
    /// MaxDimension of the Fixed SST Subspaces (FS holds every subspace
    /// with dimensionality ≤ this).
    pub fs_max_dimension: usize,
    /// Capacity of the Clustering-based SST Subspaces (CS).
    pub cs_capacity: usize,
    /// Capacity of the Outlier-driven SST Subspaces (OS).
    pub os_capacity: usize,
    /// Learning-stage knobs.
    pub learning: LearningConfig,
    /// Online-adaptation knobs.
    pub evolution: EvolutionConfig,
    /// Concept-drift knobs.
    pub drift: DriftConfig,
    /// Period in points between synopsis prunes (0 disables).
    pub prune_every: u64,
    /// Decayed-count floor below which cells are evicted.
    pub prune_floor: f64,
    /// Seed for every stochastic component (detection is deterministic for
    /// a fixed seed and stream).
    pub seed: u64,
    /// Batch-dispatch tuning (granularities and pool-engagement floors).
    pub tuning: TuningConfig,
}

impl SpotConfig {
    /// Default configuration over the given bounds.
    pub fn new(bounds: DomainBounds) -> Self {
        SpotConfig {
            bounds,
            granularity: 10,
            // omega=6000, epsilon=0.05 gives an effective decayed weight of
            // ~2000 points: enough resolution for a singleton 2-dim cell
            // (RD = m^2/N ≈ 0.05) to clear the default RD threshold.
            time_model: TimeModel::new(6000, 0.05).expect("static parameters are valid"),
            thresholds: Thresholds::default(),
            fs_max_dimension: 2,
            cs_capacity: 20,
            os_capacity: 20,
            learning: LearningConfig::default(),
            evolution: EvolutionConfig::default(),
            drift: DriftConfig::default(),
            prune_every: 2000,
            prune_floor: 1e-4,
            seed: 42,
            tuning: TuningConfig::default(),
        }
    }

    /// Dimensionality ϕ.
    pub fn phi(&self) -> usize {
        self.bounds.dims()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        let phi = self.phi();
        if phi == 0 || phi > spot_subspace::subspace::MAX_DIMS {
            return Err(SpotError::TooManyDimensions(phi));
        }
        if self.thresholds.rd <= 0.0 {
            return Err(SpotError::InvalidConfig(
                "rd threshold must be positive".into(),
            ));
        }
        if let Some(irsd) = self.thresholds.irsd {
            if irsd <= 0.0 {
                return Err(SpotError::InvalidConfig(
                    "irsd threshold must be positive".into(),
                ));
            }
        }
        if self.fs_max_dimension == 0 {
            return Err(SpotError::InvalidConfig(
                "FS MaxDimension must be at least 1".into(),
            ));
        }
        // Refuse configurations whose FS alone would explode.
        let fs_size = spot_subspace::count_up_to_dim(phi, self.fs_max_dimension);
        if fs_size > 100_000 {
            return Err(SpotError::InvalidConfig(format!(
                "FS would hold {fs_size} subspaces; lower fs_max_dimension"
            )));
        }
        if !(0.0..=1.0).contains(&self.learning.top_fraction) {
            return Err(SpotError::InvalidConfig(
                "top_fraction must lie in [0,1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.learning.od_alpha) {
            return Err(SpotError::InvalidConfig(
                "od_alpha must lie in [0,1]".into(),
            ));
        }
        if self.learning.od_runs == 0 {
            return Err(SpotError::InvalidConfig("od_runs must be positive".into()));
        }
        if self.evolution.enabled && self.evolution.period == 0 {
            return Err(SpotError::InvalidConfig(
                "evolution period must be positive".into(),
            ));
        }
        if self.evolution.reservoir == 0 {
            return Err(SpotError::InvalidConfig(
                "reservoir must be positive".into(),
            ));
        }
        if self.tuning.sweep_chunk == 0 || self.tuning.commit_chunk == 0 {
            return Err(SpotError::InvalidConfig(
                "sweep/commit chunk granularity must be positive".into(),
            ));
        }
        if self.tuning.pool_min_stores == 0 || self.tuning.pool_min_points == 0 {
            return Err(SpotError::InvalidConfig(
                "pool-engagement floors must be positive (1 engages always)".into(),
            ));
        }
        Ok(())
    }
}

/// Fluent builder over [`SpotConfig`].
#[derive(Debug, Clone)]
pub struct SpotBuilder {
    config: SpotConfig,
    /// Executor service the built detector dispatches through (None = its
    /// own, per the build's default). Runtime-only wiring: deliberately
    /// not part of [`SpotConfig`], which stays serializable.
    executor: Option<ExecutorHandle>,
}

impl SpotBuilder {
    /// Starts from the defaults for the given bounds.
    pub fn new(bounds: DomainBounds) -> Self {
        SpotBuilder {
            config: SpotConfig::new(bounds),
            executor: None,
        }
    }

    /// Dispatches the built detector's batch work through `exec` — many
    /// detectors sharing one handle share its single worker pool (the
    /// fleet runtime's wiring). Results are bit-identical regardless.
    pub fn executor(mut self, exec: ExecutorHandle) -> Self {
        self.executor = Some(exec);
        self
    }

    /// Grid granularity per dimension.
    pub fn granularity(mut self, m: u16) -> Self {
        self.config.granularity = m;
        self
    }

    /// The (ω, ε) time model.
    pub fn time_model(mut self, model: TimeModel) -> Self {
        self.config.time_model = model;
        self
    }

    /// RD threshold (and clears any IRSD threshold).
    pub fn rd_threshold(mut self, rd: f64) -> Self {
        self.config.thresholds.rd = rd;
        self
    }

    /// IRSD threshold.
    pub fn irsd_threshold(mut self, irsd: Option<f64>) -> Self {
        self.config.thresholds.irsd = irsd;
        self
    }

    /// FS MaxDimension.
    pub fn fs_max_dimension(mut self, d: usize) -> Self {
        self.config.fs_max_dimension = d;
        self
    }

    /// CS capacity.
    pub fn cs_capacity(mut self, n: usize) -> Self {
        self.config.cs_capacity = n;
        self
    }

    /// OS capacity.
    pub fn os_capacity(mut self, n: usize) -> Self {
        self.config.os_capacity = n;
        self
    }

    /// Learning-stage knobs.
    pub fn learning(mut self, learning: LearningConfig) -> Self {
        self.config.learning = learning;
        self
    }

    /// Online-adaptation knobs.
    pub fn evolution(mut self, evolution: EvolutionConfig) -> Self {
        self.config.evolution = evolution;
        self
    }

    /// Concept-drift knobs.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = drift;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Pruning policy.
    pub fn pruning(mut self, every: u64, floor: f64) -> Self {
        self.config.prune_every = every;
        self.config.prune_floor = floor;
        self
    }

    /// Batch-dispatch tuning (validated; zero granularities or
    /// pool-engagement floors are rejected at build).
    pub fn tuning(mut self, tuning: TuningConfig) -> Self {
        self.config.tuning = tuning;
        self
    }

    /// Finishes the configuration (validated).
    pub fn build_config(self) -> Result<SpotConfig> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Builds the detector directly.
    pub fn build(self) -> Result<crate::Spot> {
        let executor = self.executor.clone();
        let config = self.build_config()?;
        match executor {
            Some(exec) => crate::Spot::with_executor(config, exec),
            None => crate::Spot::new(config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SpotConfig::new(DomainBounds::unit(8)).validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = || SpotConfig::new(DomainBounds::unit(8));
        let mut c = base();
        c.thresholds.rd = 0.0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.thresholds.irsd = Some(-1.0);
        assert!(c.validate().is_err());
        let mut c = base();
        c.fs_max_dimension = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.learning.top_fraction = 2.0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.evolution.period = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.evolution.reservoir = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fs_explosion_rejected() {
        let mut c = SpotConfig::new(DomainBounds::unit(48));
        c.fs_max_dimension = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tuning_misuse_guards_reject_zero_knobs() {
        // Zero chunk granularities or pool-engagement floors would stall
        // the sweep loop / make the engagement test vacuous; each knob is
        // guarded independently.
        let base = || SpotConfig::new(DomainBounds::unit(8));
        for bad in [
            TuningConfig {
                sweep_chunk: 0,
                ..TuningConfig::default()
            },
            TuningConfig {
                commit_chunk: 0,
                ..TuningConfig::default()
            },
            TuningConfig {
                pool_min_stores: 0,
                ..TuningConfig::default()
            },
            TuningConfig {
                pool_min_points: 0,
                ..TuningConfig::default()
            },
        ] {
            let mut c = base();
            c.tuning = bad;
            assert!(c.validate().is_err(), "{bad:?} must be rejected");
        }
        // Floor of 1 is the documented "always engage" setting, not misuse.
        let mut c = base();
        c.tuning = TuningConfig {
            pool_min_stores: 1,
            pool_min_points: 1,
            sweep_chunk: 1,
            commit_chunk: 1,
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn tuning_restores_to_defaults_from_pre_tuning_checkpoints() {
        // A checkpoint written before the tuning block existed has no
        // "tuning" field: deserialization must fall back to defaults, and
        // partial objects fill in the missing knobs.
        let d: TuningConfig = serde::Deserialize::from_value(&serde::Value::Null).unwrap();
        assert_eq!(d, TuningConfig::default());
        let partial =
            serde::Value::Object(vec![("sweep_chunk".to_string(), serde::Value::U64(64))]);
        let d: TuningConfig = serde::Deserialize::from_value(&partial).unwrap();
        assert_eq!(d.sweep_chunk, 64);
        assert_eq!(d.commit_chunk, TuningConfig::default().commit_chunk);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SpotBuilder::new(DomainBounds::unit(6))
            .granularity(8)
            .rd_threshold(0.2)
            .irsd_threshold(None)
            .fs_max_dimension(1)
            .cs_capacity(5)
            .os_capacity(7)
            .seed(9)
            .pruning(500, 1e-3)
            .tuning(TuningConfig {
                pool_min_stores: 4,
                pool_min_points: 16,
                sweep_chunk: 48,
                commit_chunk: 24,
            })
            .build_config()
            .unwrap();
        assert_eq!(cfg.granularity, 8);
        assert_eq!(cfg.thresholds.rd, 0.2);
        assert_eq!(cfg.thresholds.irsd, None);
        assert_eq!(cfg.fs_max_dimension, 1);
        assert_eq!(cfg.cs_capacity, 5);
        assert_eq!(cfg.os_capacity, 7);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.prune_every, 500);
        assert_eq!(cfg.tuning.pool_min_stores, 4);
        assert_eq!(cfg.tuning.pool_min_points, 16);
        assert_eq!(cfg.tuning.sweep_chunk, 48);
        assert_eq!(cfg.tuning.commit_chunk, 24);
    }
}
