//! Concept-drift detection.
//!
//! SPOT watches the *base-cell novelty rate*: the fraction of arriving
//! points that land in (decayed-)empty base cells. Under a stable
//! distribution this rate settles to a baseline; when the generating
//! distribution moves, new regions of the space light up and the rate
//! jumps. A Page–Hinkley test on that signal raises the drift alarm, which
//! the detector answers with an immediate SST re-evolution.

use spot_types::{DurableState, PersistError, StateReader, StateWriter};

/// One-sided (increase) Page–Hinkley change detector.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    min_n: u64,
    n: u64,
    mean: f64,
    cum: f64,
    min_cum: f64,
}

impl PageHinkley {
    /// Creates the detector: `delta` is the tolerated drift-free
    /// fluctuation, `lambda` the alarm threshold, `min_n` the warm-up
    /// sample count before alarms may fire.
    pub fn new(delta: f64, lambda: f64, min_n: u64) -> Self {
        PageHinkley {
            delta,
            lambda,
            min_n,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
        }
    }

    /// Observes one value; returns `true` when drift is signalled. The
    /// detector resets itself after an alarm.
    ///
    /// The first `min_n` observations are pure warm-up: they feed the mean
    /// estimate but do not accumulate deviation. Without this, the early
    /// gap between the unsettled mean and the true baseline masquerades as
    /// drift (cold-start false alarms).
    pub fn observe(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        if self.n <= self.min_n {
            return false;
        }
        self.cum += x - self.mean - self.delta;
        self.min_cum = self.min_cum.min(self.cum);
        if self.cum - self.min_cum > self.lambda {
            self.reset();
            return true;
        }
        false
    }

    /// Observations since the last reset.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Running mean of the monitored signal.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Clears all state (called automatically after an alarm).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.min_cum = 0.0;
    }
}

impl DurableState for PageHinkley {
    fn capture(&self, w: &mut StateWriter) {
        w.f64_bits("delta", self.delta);
        w.f64_bits("lambda", self.lambda);
        w.u64("min_n", self.min_n);
        w.u64("n", self.n);
        w.f64_bits("mean", self.mean);
        w.f64_bits("cum", self.cum);
        w.f64_bits("min_cum", self.min_cum);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
        self.delta = r.f64_bits("delta")?;
        self.lambda = r.f64_bits("lambda")?;
        self.min_n = r.u64("min_n")?;
        self.n = r.u64("n")?;
        self.mean = r.f64_bits("mean")?;
        self.cum = r.f64_bits("cum")?;
        self.min_cum = r.f64_bits("min_cum")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_signal_never_alarms() {
        let mut ph = PageHinkley::new(0.005, 10.0, 30);
        for i in 0..5000 {
            // Stationary ~20% novelty with deterministic dither.
            let x = if i % 5 == 0 { 1.0 } else { 0.0 };
            assert!(!ph.observe(x), "false alarm at {i}");
        }
        assert!((ph.mean() - 0.2).abs() < 0.05);
    }

    #[test]
    fn level_shift_alarms() {
        let mut ph = PageHinkley::new(0.005, 10.0, 30);
        for i in 0..1000 {
            assert!(!ph.observe(if i % 10 == 0 { 1.0 } else { 0.0 }));
        }
        // Novelty jumps to 90%.
        let mut fired_at = None;
        for i in 0..1000 {
            if ph.observe(if i % 10 == 0 { 0.0 } else { 1.0 }) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("drift must be detected");
        assert!(at < 500, "took too long: {at}");
    }

    #[test]
    fn warmup_suppresses_alarms() {
        let mut ph = PageHinkley::new(0.0, 0.1, 100);
        // Wild signal, but within warm-up.
        for i in 0..99 {
            assert!(!ph.observe(if i % 2 == 0 { 1.0 } else { 0.0 }));
        }
    }

    #[test]
    fn resets_after_alarm() {
        let mut ph = PageHinkley::new(0.005, 5.0, 10);
        for _ in 0..50 {
            ph.observe(0.0);
        }
        let mut fired = false;
        for _ in 0..200 {
            if ph.observe(1.0) {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert_eq!(ph.observations(), 0);
    }
}
