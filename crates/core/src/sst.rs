//! The Sparse Subspace Template.
//!
//! SST is the set of subspaces SPOT actually monitors — a tractable slice
//! of the exponential lattice assembled from three mutually supplementing
//! subsets (paper, Section II-C):
//!
//! * **FS** — every subspace with dimensionality ≤ MaxDimension (exact
//!   enumeration; immutable).
//! * **CS** — subspaces learned from the clustering-driven outlier
//!   candidates of the training data; evolves online.
//! * **OS** — subspaces of expert-provided outlier exemplars and of
//!   outliers detected during streaming; grows online.

use spot_subspace::{enumerate_up_to_dim, RankedSubspaces, ScoredSubspace, Subspace, SubspaceSet};
use spot_types::{FxHashSet, Result};

/// Which SST component a subspace belongs to (FS wins ties, then CS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SstComponent {
    /// Fixed SST Subspaces.
    Fixed,
    /// Clustering-based SST Subspaces.
    Clustering,
    /// Outlier-driven SST Subspaces.
    OutlierDriven,
}

/// The Sparse Subspace Template.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sst {
    fs: SubspaceSet,
    cs: RankedSubspaces,
    os: RankedSubspaces,
}

impl Sst {
    /// Builds the template: FS is enumerated immediately, CS/OS start empty
    /// with the given capacities.
    pub fn new(
        phi: usize,
        fs_max_dimension: usize,
        cs_capacity: usize,
        os_capacity: usize,
    ) -> Result<Self> {
        let fs = SubspaceSet::from_iter(enumerate_up_to_dim(phi, fs_max_dimension)?);
        Ok(Sst {
            fs,
            cs: RankedSubspaces::new(cs_capacity),
            os: RankedSubspaces::new(os_capacity),
        })
    }

    /// Fixed subspaces.
    pub fn fs(&self) -> &[Subspace] {
        self.fs.as_slice()
    }

    /// Clustering-based subspaces (best score first).
    pub fn cs(&self) -> impl Iterator<Item = &ScoredSubspace> {
        self.cs.iter()
    }

    /// Outlier-driven subspaces (best score first).
    pub fn os(&self) -> impl Iterator<Item = &ScoredSubspace> {
        self.os.iter()
    }

    /// Component sizes `(|FS|, |CS|, |OS|)`.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.fs.len(), self.cs.len(), self.os.len())
    }

    /// Total *distinct* subspaces across the three components.
    pub fn len(&self) -> usize {
        self.iter_all().count()
    }

    /// `true` when even FS is empty (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.fs.is_empty() && self.cs.is_empty() && self.os.is_empty()
    }

    /// Iterates every distinct subspace: FS order first, then CS, then OS,
    /// skipping duplicates.
    pub fn iter_all(&self) -> impl Iterator<Item = Subspace> + '_ {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        self.fs
            .iter()
            .copied()
            .chain(self.cs.subspaces())
            .chain(self.os.subspaces())
            .filter(move |s| seen.insert(s.mask()))
    }

    /// Which component claims `s`, if any.
    pub fn component_of(&self, s: &Subspace) -> Option<SstComponent> {
        if self.fs.contains(s) {
            Some(SstComponent::Fixed)
        } else if self.cs.contains(s) {
            Some(SstComponent::Clustering)
        } else if self.os.contains(s) {
            Some(SstComponent::OutlierDriven)
        } else {
            None
        }
    }

    /// Inserts a learned subspace into CS (smaller score = sparser =
    /// better). Returns `true` when CS changed.
    pub fn add_cs(&mut self, s: Subspace, score: f64) -> bool {
        self.cs.insert(s, score)
    }

    /// Inserts an outlier-driven subspace into OS. Returns `true` when OS
    /// changed.
    pub fn add_os(&mut self, s: Subspace, score: f64) -> bool {
        self.os.insert(s, score)
    }

    /// Replaces CS with the top of `candidates` (self-evolution's re-rank:
    /// old members and newly generated subspaces compete on equal footing).
    pub fn evolve_cs(&mut self, candidates: Vec<ScoredSubspace>) {
        self.cs.rerank(candidates);
    }

    /// Current CS members with scores (for generating evolution candidates).
    pub fn cs_entries(&self) -> Vec<ScoredSubspace> {
        self.cs.iter().copied().collect()
    }

    /// Empties CS (ablation studies).
    pub fn clear_cs(&mut self) {
        self.cs.rerank(Vec::new());
    }

    /// Empties OS (ablation studies).
    pub fn clear_os(&mut self) {
        let capacity = self.os.capacity();
        self.os = RankedSubspaces::new(capacity);
    }

    /// Rebuilds internal lookup indices after deserialization (the FS dedup
    /// index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.fs.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims.iter().copied()).unwrap()
    }

    #[test]
    fn fs_enumerated_on_construction() {
        let sst = Sst::new(5, 2, 4, 4).unwrap();
        let (fs, cs, os) = sst.sizes();
        assert_eq!(fs, 5 + 10);
        assert_eq!(cs, 0);
        assert_eq!(os, 0);
        assert_eq!(sst.len(), 15);
        assert!(!sst.is_empty());
    }

    #[test]
    fn iter_all_deduplicates_across_components() {
        let mut sst = Sst::new(4, 1, 4, 4).unwrap();
        // [0] is already in FS; [0,1] is new.
        sst.add_cs(s(&[0]), 0.5);
        sst.add_cs(s(&[0, 1]), 0.3);
        sst.add_os(s(&[0, 1]), 0.2); // duplicate of CS entry
        sst.add_os(s(&[2, 3]), 0.1);
        let all: Vec<Subspace> = sst.iter_all().collect();
        assert_eq!(all.len(), 4 + 2); // 4 FS singletons + [0,1] + [2,3]
        let distinct: FxHashSet<u64> = all.iter().map(|x| x.mask()).collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn component_attribution_priority() {
        let mut sst = Sst::new(4, 1, 4, 4).unwrap();
        sst.add_cs(s(&[0]), 0.5); // also in FS → FS wins
        sst.add_cs(s(&[1, 2]), 0.4);
        sst.add_os(s(&[1, 3]), 0.4);
        assert_eq!(sst.component_of(&s(&[0])), Some(SstComponent::Fixed));
        assert_eq!(
            sst.component_of(&s(&[1, 2])),
            Some(SstComponent::Clustering)
        );
        assert_eq!(
            sst.component_of(&s(&[1, 3])),
            Some(SstComponent::OutlierDriven)
        );
        assert_eq!(sst.component_of(&s(&[0, 1, 2, 3])), None);
    }

    #[test]
    fn evolve_cs_reranks() {
        let mut sst = Sst::new(4, 1, 2, 2).unwrap();
        sst.add_cs(s(&[0, 1]), 0.9);
        sst.evolve_cs(vec![
            ScoredSubspace {
                subspace: s(&[0, 1]),
                score: 0.9,
            },
            ScoredSubspace {
                subspace: s(&[2, 3]),
                score: 0.1,
            },
            ScoredSubspace {
                subspace: s(&[1, 2]),
                score: 0.5,
            },
        ]);
        let cs: Vec<Subspace> = sst.cs().map(|e| e.subspace).collect();
        assert_eq!(cs, vec![s(&[2, 3]), s(&[1, 2])]); // capacity 2, best two
    }

    #[test]
    fn capacity_pressure_on_os() {
        let mut sst = Sst::new(4, 1, 2, 2).unwrap();
        assert!(sst.add_os(s(&[0, 1]), 0.5));
        assert!(sst.add_os(s(&[1, 2]), 0.4));
        assert!(sst.add_os(s(&[2, 3]), 0.1)); // evicts 0.5
        assert!(!sst.add_os(s(&[0, 3]), 0.9)); // too weak
        assert_eq!(sst.sizes().2, 2);
    }
}
