//! The SPOT detector: learning stage + online detection stage.

use crate::config::SpotConfig;
use crate::drift::PageHinkley;
use crate::evaluator::{SparsityProblem, TrainingEvaluator};
use crate::sst::Sst;
use crate::verdict::{EvalPlan, LearningReport, SpotStats, SubspaceFinding, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use spot_clustering::{outlying_degrees, top_outlying_indices, OdConfig};
use spot_moga::MogaConfig;
use spot_stream::{LogicalClock, Reservoir};
use spot_subspace::{genetic, ScoredSubspace, Subspace};
use spot_synopsis::{
    ExecutorHandle, Grid, LiveCounters, OnceTask, SerialExecutor, SharedSlice, StoreExecutor,
    SubspacePcs, SynopsisManager, SynopsisMark, UpdateOutcome,
};
use spot_types::{
    DataPoint, Detection, FxHashSet, PersistError, Result, SpotError, StateReader, StateWriter,
    StreamDetector, StreamRecord,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Salt separating the reservoir's counter-based draw stream from the
/// other seeded components.
const RESERVOIR_SEED_SALT: u64 = 0x5EED_CAFE_D00D_F00D;

/// Point-in-time snapshot of a detector's dirty-tracking counters, taken
/// by [`Spot::capture_mark`] alongside a checkpoint. Opaque; its only use
/// is as the baseline of a later [`Spot::delta_capture_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureMark {
    mutations: u64,
    structure: u64,
    synopsis: SynopsisMark,
}

/// Outcome of [`Spot::delta_capture_with`].
#[derive(Debug, Clone)]
pub enum DeltaCapture {
    /// Nothing mutated since the mark — the previous checkpoint still
    /// describes this detector exactly; record nothing.
    Unchanged,
    /// A state-delta tree: apply it to the previous checkpoint with
    /// `SpotCheckpoint::apply_state_delta` to materialize the new state.
    Delta(Value),
    /// The structure changed since the mark; take a full checkpoint.
    Full,
}

/// Memory snapshot of the synopses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynopsisFootprint {
    /// Populated base cells.
    pub base_cells: usize,
    /// Populated projected cells summed over SST subspaces.
    pub projected_cells: usize,
    /// Approximate bytes held by all synopsis stores.
    pub approx_bytes: usize,
}

/// Stream Projected Outlier deTector.
///
/// ```
/// use spot::{SpotBuilder, Verdict};
/// use spot_types::{DataPoint, DomainBounds};
///
/// // 4-dimensional stream over the unit box.
/// let mut spot = SpotBuilder::new(DomainBounds::unit(4)).seed(7).build().unwrap();
///
/// // Learning stage: an unlabeled batch of historical data.
/// let train: Vec<DataPoint> = (0..300)
///     .map(|i| DataPoint::new(vec![0.5 + (i % 7) as f64 * 0.01; 4]))
///     .collect();
/// spot.learn(&train).unwrap();
///
/// // Detection stage: one pass over arriving points.
/// let v: Verdict = spot.process(&DataPoint::new(vec![0.51; 4])).unwrap();
/// assert!(!v.outlier);
/// let v = spot.process(&DataPoint::new(vec![0.95, 0.02, 0.93, 0.04])).unwrap();
/// assert!(v.outlier);
/// assert!(!v.findings.is_empty()); // the outlying subspaces
/// ```
#[derive(Debug)]
pub struct Spot {
    config: SpotConfig,
    phi: usize,
    manager: SynopsisManager,
    sst: Sst,
    /// Flattened, deduplicated SST — the hot path iterates this.
    active: Vec<Subspace>,
    clock: LogicalClock,
    rng: StdRng,
    /// Recently detected outliers (tick, point), bounded ring.
    outlier_buffer: Vec<(u64, DataPoint)>,
    /// Reservoir sample of recent stream points; draws are counter-based
    /// (keyed on the offer ordinal), so sampling neither consumes the
    /// sequential RNG nor depends on acceptance history.
    reservoir: Reservoir,
    drift: PageHinkley,
    stats: SpotStats,
    learned: bool,
    /// Monotone mutation counter: every state-mutating entry point bumps
    /// it. A [`CaptureMark`] whose counter still matches proves the
    /// detector is identical to its capture-time state — the fleet's
    /// "skip this tenant entirely" delta-checkpoint signal.
    mutations: u64,
    /// Bumped whenever the SST or the monitored-store layout may have
    /// changed (learning, self-evolution, ablation, restore). A delta
    /// capture never spans a structure change — it falls back to full.
    structure_revision: u64,
    /// Reused per-point PCS sink (keeps the hot path allocation-free).
    pcs_sink: Vec<SubspacePcs>,
    /// Reused sweep plan for the single-point path.
    point_plan: EvalPlan,
    /// Reused batch sinks/outcomes for [`Spot::process_batch`].
    batch_sinks: Vec<Vec<SubspacePcs>>,
    batch_outcomes: Vec<UpdateOutcome>,
    /// Second sink/outcome buffers: the batch path double-buffers runs so
    /// the next run's shard ingestion can overlap the previous commit.
    batch_sinks_alt: Vec<Vec<SubspacePcs>>,
    batch_outcomes_alt: Vec<UpdateOutcome>,
    /// Reused per-run sweep plans for the batch path.
    batch_plans: Vec<EvalPlan>,
}

impl Spot {
    /// Creates a detector from a validated configuration. FS is enumerated
    /// immediately; CS/OS await the learning stage. The detector gets its
    /// own executor service; use [`Spot::with_executor`] (or
    /// `SpotBuilder::executor`) to share one service — and with it one
    /// worker pool — across many detectors.
    pub fn new(config: SpotConfig) -> Result<Self> {
        Self::with_executor(config, ExecutorHandle::default_for_build())
    }

    /// [`Spot::new`] with an explicit executor service for the synopsis
    /// shard phase and verdict sweep. Detectors sharing a handle share its
    /// single worker pool (the fleet runtime's wiring); verdicts are
    /// bit-identical for every service configuration.
    pub fn with_executor(config: SpotConfig, exec: ExecutorHandle) -> Result<Self> {
        config.validate()?;
        let phi = config.phi();
        let grid = Grid::new(config.bounds.clone(), config.granularity)?;
        let mut manager = SynopsisManager::with_executor(grid, config.time_model, exec);
        manager.set_pool_engagement(config.tuning.pool_min_stores, config.tuning.pool_min_points);
        let sst = Sst::new(
            phi,
            config.fs_max_dimension,
            config.cs_capacity,
            config.os_capacity,
        )?;
        let drift = PageHinkley::new(
            config.drift.delta,
            config.drift.lambda,
            config.drift.min_points,
        );
        let rng = StdRng::seed_from_u64(config.seed);
        let reservoir = Reservoir::new(config.seed ^ RESERVOIR_SEED_SALT);
        let mut spot = Spot {
            config,
            phi,
            manager,
            sst,
            active: Vec::new(),
            clock: LogicalClock::new(),
            rng,
            outlier_buffer: Vec::new(),
            reservoir,
            drift,
            stats: SpotStats::default(),
            learned: false,
            mutations: 0,
            structure_revision: 0,
            pcs_sink: Vec::new(),
            point_plan: EvalPlan::default(),
            batch_sinks: Vec::new(),
            batch_outcomes: Vec::new(),
            batch_sinks_alt: Vec::new(),
            batch_outcomes_alt: Vec::new(),
            batch_plans: Vec::new(),
        };
        spot.sync_manager_subspaces(false);
        Ok(spot)
    }

    /// The configuration in force.
    pub fn config(&self) -> &SpotConfig {
        &self.config
    }

    /// The current SST.
    pub fn sst(&self) -> &Sst {
        &self.sst
    }

    /// Running counters.
    pub fn stats(&self) -> &SpotStats {
        &self.stats
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// `true` once a learning stage has run.
    pub fn is_learned(&self) -> bool {
        self.learned
    }

    /// Running mean of the concept-drift novelty signal (the fraction of a
    /// point's 1-dim projected cells that are sparse) — an observability
    /// hook for dashboards and the drift experiments.
    pub fn drift_signal_mean(&self) -> f64 {
        self.drift.mean()
    }

    /// Memory held by the synopses.
    pub fn footprint(&self) -> SynopsisFootprint {
        let (base_cells, projected_cells) = self.manager.live_cells();
        SynopsisFootprint {
            base_cells,
            projected_cells,
            approx_bytes: self.manager.approx_bytes(),
        }
    }

    /// The synopses' lock-free footprint mirror (see [`LiveCounters`]):
    /// monitoring threads read live cell/byte counts from it without
    /// synchronizing with — or stalling — ingestion. `SharedSpot` serves
    /// its `footprint()` from this.
    pub fn live_counters(&self) -> Arc<LiveCounters> {
        self.manager.live_counters()
    }

    /// Overrides the worker count of the executor service (`Some(0)`
    /// forces serial, `None` restores machine-sized defaults).
    /// Equivalence tests and deployments pinning thread budgets use this;
    /// results are bit-identical for every setting. Affects every
    /// detector sharing the service.
    pub fn set_parallel_workers(&mut self, workers: Option<usize>) {
        self.manager.set_parallel_workers(workers);
    }

    /// The executor service this detector's batch path dispatches through.
    pub fn executor(&self) -> &ExecutorHandle {
        self.manager.executor()
    }

    /// Replaces the executor service (the fleet runtime rewires restored
    /// detectors onto its shared service with this). Safe at any quiescent
    /// point: results are bit-identical for every executor.
    pub fn set_executor(&mut self, exec: ExecutorHandle) {
        self.manager.set_executor(exec);
    }

    /// Unsupervised learning stage (paper, Section II-C1): MOGA over the
    /// whole batch, lead clustering under shuffled orders for outlying
    /// degrees, MOGA over the top candidates — the results become CS.
    pub fn learn(&mut self, training: &[DataPoint]) -> Result<LearningReport> {
        self.learn_with_examples(training, &[])
    }

    /// Learning stage with optional supervised outlier exemplars: the
    /// exemplars' top sparse subspaces become OS (example-based detection).
    pub fn learn_with_examples(
        &mut self,
        training: &[DataPoint],
        outlier_examples: &[DataPoint],
    ) -> Result<LearningReport> {
        if training.is_empty() {
            return Err(SpotError::EmptyTrainingSet);
        }
        for p in training.iter().chain(outlier_examples) {
            if p.dims() != self.phi {
                return Err(SpotError::DimensionMismatch {
                    expected: self.phi,
                    got: p.dims(),
                });
            }
        }
        self.mutations += 1;
        self.structure_revision += 1;
        let learning = self.config.learning.clone();
        // The evaluator borrows the training batch — no clone of it is made.
        let evaluator = TrainingEvaluator::new(self.manager.grid().clone(), training)?;
        let mut evaluations = 0usize;

        // (1) MOGA over the whole batch: globally sparse subspaces.
        let whole = {
            let mut problem = SparsityProblem::whole_batch(&evaluator, learning.max_cardinality);
            let out = spot_moga::run(&mut problem, &learning.moga)?;
            evaluations += out.evaluations;
            out.top_k(learning.moga_top_k)
        };

        // (2) Lead clustering under different data orders → outlying degree.
        let tau = match learning.leader_tau {
            Some(t) => t,
            None => estimate_tau(training, &mut self.rng),
        };
        let od = outlying_degrees(
            training,
            &OdConfig {
                tau,
                runs: learning.od_runs,
                alpha: learning.od_alpha,
                seed: self.config.seed ^ 0x0D15_EA5E,
            },
        )?;
        let k = ((training.len() as f64 * learning.top_fraction).ceil() as usize)
            .clamp(3.min(training.len()), training.len());
        let candidates = top_outlying_indices(&od, k);

        // (3) MOGA over the top outlying candidates → CS.
        let targeted = {
            let mut problem = SparsityProblem::for_targets(
                &evaluator,
                candidates.clone(),
                learning.max_cardinality,
            );
            let out = spot_moga::run(&mut problem, &learning.moga)?;
            evaluations += out.evaluations;
            out.top_k(learning.moga_top_k)
        };
        let cs_entries: Vec<ScoredSubspace> = whole
            .iter()
            .chain(targeted.iter())
            .map(|&(subspace, score)| ScoredSubspace { subspace, score })
            .collect();
        self.sst.evolve_cs(cs_entries);

        // (4) Supervised: "MOGA is applied on each of these outliers to
        // find their top sparse subspaces" (paper, II-C1) — one search per
        // exemplar, so every exemplar contributes its own outlying
        // subspaces to OS regardless of how the others score.
        let mut os_report = Vec::new();
        if !outlier_examples.is_empty() {
            let mut combined = training.to_vec();
            let first_exemplar = combined.len();
            combined.extend_from_slice(outlier_examples);
            let ex_evaluator = TrainingEvaluator::new(self.manager.grid().clone(), combined)?;
            let per_exemplar_k = learning.moga_top_k.div_ceil(2).clamp(1, 5);
            for (i, _) in outlier_examples.iter().enumerate() {
                let mut problem = SparsityProblem::for_targets(
                    &ex_evaluator,
                    vec![first_exemplar + i],
                    learning.max_cardinality,
                );
                let mut moga = learning.moga.clone();
                moga.seed = moga.seed.wrapping_add(i as u64);
                let out = spot_moga::run(&mut problem, &moga)?;
                evaluations += out.evaluations;
                for (s, score) in out.top_k(per_exemplar_k) {
                    if self.sst.add_os(s, score) {
                        os_report.push((s, score));
                    }
                }
            }
        }

        self.sync_manager_subspaces(false);

        // (5) Warm the streaming synopses with the training batch so
        // detection starts against a populated model.
        if learning.replay_training {
            for p in training {
                let now = self.clock.tick();
                self.manager.update(now, p)?;
                self.reservoir
                    .offer(self.config.evolution.reservoir, now, p);
            }
        }
        self.learned = true;
        Ok(LearningReport {
            training_points: training.len(),
            od_candidates: candidates.len(),
            cs: self.sst.cs().map(|e| (e.subspace, e.score)).collect(),
            os: os_report,
            moga_evaluations: evaluations,
        })
    }

    /// Detection stage for one arriving point: update the synapses and read
    /// back the PCS of the point's cell in every SST subspace *in the same
    /// pass* (no second projection or hash lookup), check the thresholds,
    /// run periodic maintenance (self-evolution, OS growth, drift response,
    /// pruning). On the steady state the synopsis work allocates nothing;
    /// see `spot_synopsis`'s crate docs for the key layout.
    pub fn process(&mut self, point: &DataPoint) -> Result<Verdict> {
        if point.dims() != self.phi {
            return Err(SpotError::DimensionMismatch {
                expected: self.phi,
                got: point.dims(),
            });
        }
        self.mutations += 1;
        let now = self.clock.tick();
        // The sink is swapped out so the commit phase can borrow self
        // mutably; its capacity survives the round-trip.
        let mut sink = std::mem::take(&mut self.pcs_sink);
        if let Err(e) = self.manager.update_and_query(now, point, &mut sink) {
            self.pcs_sink = sink;
            return Err(e);
        }
        let mut plan = std::mem::take(&mut self.point_plan);
        sweep_point(&self.config, &sink, &mut plan);
        self.pcs_sink = sink;
        let verdict = self.commit_point(now, point, &mut plan);
        self.point_plan = plan;
        Ok(verdict)
    }

    /// Batch detection: processes `points` as if fed one-by-one to
    /// [`Spot::process`], but ingests them in maintenance-bounded runs so
    /// the per-point synopsis work is a tight loop over pre-quantized
    /// coordinates (and, with the `parallel` feature, fans the
    /// subspace-disjoint store shards across the manager's persistent
    /// worker pool).
    ///
    /// Evaluation is **two-phase** per run: a pure *sweep* over each
    /// point's per-subspace PCS list produces an immutable [`EvalPlan`]
    /// (shardable jobs over the run's points, dispatched through the same
    /// executor as the shard phase), then a sequential *commit* applies
    /// the plans in point order (counters, reservoir RNG, drift test,
    /// maintenance). When a run's commit cannot mutate the synopses — no
    /// maintenance tick inside it and no drift-triggered SST rewrite
    /// possible — the **next run's shard ingestion overlaps the commit**
    /// instead of waiting behind it.
    ///
    /// Input validation is all-or-nothing: every point is checked for
    /// dimension mismatches and NaN values before anything is ingested.
    ///
    /// Semantics match the one-by-one path exactly, with one documented
    /// exception: a *drift-triggered* self-evolution that fires mid-run is
    /// applied at the end of that run (at most [`Spot::BATCH_RUN`] points
    /// late) rather than on the alarm's exact tick. Periodic evolution and
    /// pruning stay on their exact ticks — runs never span a maintenance
    /// boundary.
    pub fn process_batch(&mut self, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        self.batch_impl(points, None)
    }

    /// [`Spot::process_batch`] with an explicit executor for the synopsis
    /// shard phase — the entry `SharedSpot` uses to let producer threads
    /// blocked on the detector lock claim shards cooperatively. Verdicts
    /// and synopsis state are bit-identical for every executor.
    pub fn process_batch_with(
        &mut self,
        points: &[DataPoint],
        exec: &dyn StoreExecutor,
    ) -> Result<Vec<Verdict>> {
        self.batch_impl(points, Some(exec))
    }

    fn batch_impl(
        &mut self,
        points: &[DataPoint],
        exec: Option<&dyn StoreExecutor>,
    ) -> Result<Vec<Verdict>> {
        for p in points {
            if p.dims() != self.phi {
                return Err(SpotError::DimensionMismatch {
                    expected: self.phi,
                    got: p.dims(),
                });
            }
            for (d, &v) in p.values().iter().enumerate() {
                if v.is_nan() {
                    return Err(SpotError::NonFiniteValue { dim: d });
                }
            }
        }
        if points.is_empty() {
            return Ok(Vec::new());
        }
        self.mutations += 1;
        // One executor serves the whole batch: the caller's (cooperative
        // SharedSpot), the manager's persistent pool when the first run is
        // wide enough (`parallel` feature), or the calling thread alone.
        // Both the shard phase and the verdict sweep dispatch through it.
        // The width estimate is the *actual* first run length, so tight
        // maintenance periods (tiny runs) never pay pool dispatch.
        let first_run = self.run_len(self.clock.now() + 1, points.len());
        let chosen = match exec {
            Some(e) => BatchExec::External(e),
            None => self.default_exec(first_run),
        };

        let mut verdicts = Vec::with_capacity(points.len());
        let mut cur_sinks = std::mem::take(&mut self.batch_sinks);
        let mut cur_outcomes = std::mem::take(&mut self.batch_outcomes);
        let mut nxt_sinks = std::mem::take(&mut self.batch_sinks_alt);
        let mut nxt_outcomes = std::mem::take(&mut self.batch_outcomes_alt);
        let mut plans = std::mem::take(&mut self.batch_plans);
        let result = self.batch_runs(
            points,
            chosen.as_dyn(),
            &mut cur_sinks,
            &mut cur_outcomes,
            &mut nxt_sinks,
            &mut nxt_outcomes,
            &mut plans,
            &mut verdicts,
        );
        self.batch_sinks = cur_sinks;
        self.batch_outcomes = cur_outcomes;
        self.batch_sinks_alt = nxt_sinks;
        self.batch_outcomes_alt = nxt_outcomes;
        self.batch_plans = plans;
        result.map(|()| verdicts)
    }

    /// The pipelined run loop behind [`Spot::batch_impl`]. Per run:
    /// ingest (shard phase) → sweep (parallel, pure) → commit
    /// (sequential); whenever [`Spot::commit_is_manager_pure`] holds, the
    /// commit of run *k* rides the shard dispatch of run *k + 1* as a
    /// claim-once unit, so ingestion never waits behind evaluation.
    #[allow(clippy::too_many_arguments)]
    fn batch_runs(
        &mut self,
        points: &[DataPoint],
        exec: &dyn StoreExecutor,
        cur_sinks: &mut Vec<Vec<SubspacePcs>>,
        cur_outcomes: &mut Vec<UpdateOutcome>,
        nxt_sinks: &mut Vec<Vec<SubspacePcs>>,
        nxt_outcomes: &mut Vec<UpdateOutcome>,
        plans: &mut Vec<EvalPlan>,
        verdicts: &mut Vec<Verdict>,
    ) -> Result<()> {
        let mut start = self.clock.now() + 1;
        let mut len = self.run_len(start, points.len());
        let (mut run, mut rest) = points.split_at(len);
        self.manager
            .update_and_query_batch_with(start, run, cur_sinks, cur_outcomes, exec)?;
        loop {
            self.stats.batch_runs += 1;
            self.stats.batch_points += run.len() as u64;
            let sweep_t0 = Instant::now();
            sweep_run(&self.config, exec, cur_sinks, plans);
            self.stats.sweep_nanos += sweep_t0.elapsed().as_nanos() as u64;

            if rest.is_empty() {
                self.commit_run(run, plans, verdicts, exec);
                return Ok(());
            }
            let next_start = start + len as u64;
            let next_len = self.run_len(next_start, rest.len());
            let (next_run, next_rest) = rest.split_at(next_len);

            if self.commit_is_manager_pure(start, len as u64, plans) {
                self.stats.overlapped_runs += 1;
                // Overlap: this run's commit becomes a claim-once rider on
                // the next run's shard dispatch. Commit touches only
                // detector state, ingestion only synopsis state, so the
                // interleaving is unobservable (bit-identical to
                // commit-then-ingest, which is exactly what a serial
                // executor degrades to). The gate excluded every
                // maintenance effect — no periodic/prune tick touches the
                // run, and a drift alarm is possible only with CS empty,
                // where self-evolution is a no-op — so the batched,
                // effect-free commit applies verbatim.
                let config = &self.config;
                let stats = &mut self.stats;
                let clock = &mut self.clock;
                let reservoir = &mut self.reservoir;
                let outlier_buffer = &mut self.outlier_buffer;
                let drift = &mut self.drift;
                let run_points = run;
                let run_plans: &mut [EvalPlan] = plans;
                let out: &mut Vec<Verdict> = verdicts;
                let commit = OnceTask::new(move || {
                    let t0 = Instant::now();
                    let mut ctx = CommitCtx {
                        config,
                        stats,
                        reservoir,
                        outlier_buffer,
                        drift,
                    };
                    // The rider stays serial inside its claim unit: it is
                    // already one participant of the shard dispatch, and
                    // nesting another dispatch would deadlock the pool.
                    let chunk = config.tuning.commit_chunk;
                    ctx.commit_run_batched(clock, run_points, run_plans, out, None, chunk);
                    ctx.stats.commit_nanos += t0.elapsed().as_nanos() as u64;
                });
                self.manager.update_and_query_batch_prelude(
                    next_start,
                    next_run,
                    nxt_sinks,
                    nxt_outcomes,
                    exec,
                    &commit,
                )?;
            } else {
                self.commit_run(run, plans, verdicts, exec);
                self.manager.update_and_query_batch_with(
                    next_start,
                    next_run,
                    nxt_sinks,
                    nxt_outcomes,
                    exec,
                )?;
            }
            std::mem::swap(cur_sinks, nxt_sinks);
            std::mem::swap(cur_outcomes, nxt_outcomes);
            (run, rest) = (next_run, next_rest);
            (start, len) = (next_start, next_len);
        }
    }

    /// Commit of a swept run, maintenance effects applied inline (the
    /// non-overlapped path and every final run).
    ///
    /// Two shapes, bit-identical by construction:
    ///
    /// * **Batched** (the overwhelmingly common case): the order-free part
    ///   of every point's commit — verdict assembly out of the swept plans
    ///   — fans across `exec` in claim-chunks, then one sequential fold
    ///   applies the Page–Hinkley observations in point order, merges the
    ///   counters, replays the outlier retentions, offers the whole run to
    ///   the reservoir in a single batched pass
    ///   ([`Reservoir::offer_run`]), and advances the clock by arithmetic.
    ///   Maintenance effects run after the fold — [`Spot::run_len`]
    ///   guarantees a periodic/prune tick can only sit on the run's *last*
    ///   point, exactly where the per-point path would apply it.
    /// * **Exact fallback**: when a drift alarm inside the run would
    ///   rewrite the SST mid-run (alarm + evolution enabled + CS
    ///   non-empty, decided up front by replaying the plans' novelty
    ///   signals on a scratch Page–Hinkley), the commit degrades to the
    ///   original per-point loop, because a mid-run self-evolution reads
    ///   the reservoir and outlier buffer *as of that point*.
    fn commit_run(
        &mut self,
        run: &[DataPoint],
        plans: &mut [EvalPlan],
        verdicts: &mut Vec<Verdict>,
        exec: &dyn StoreExecutor,
    ) {
        let t0 = Instant::now();
        if self.run_commit_needs_exact(plans) {
            for (i, p) in run.iter().enumerate() {
                let now = self.clock.tick();
                let verdict = self.commit_point(now, p, &mut plans[i]);
                verdicts.push(verdict);
            }
            self.stats.commit_nanos += t0.elapsed().as_nanos() as u64;
            return;
        }
        let end = self.clock.now() + run.len() as u64;
        let chunk = self.config.tuning.commit_chunk;
        let mut ctx = CommitCtx {
            config: &self.config,
            stats: &mut self.stats,
            reservoir: &mut self.reservoir,
            outlier_buffer: &mut self.outlier_buffer,
            drift: &mut self.drift,
        };
        ctx.commit_run_batched(&mut self.clock, run, plans, verdicts, Some(exec), chunk);
        // Maintenance on the run's final tick, in the order the per-point
        // path applies it. A drift alarm inside a batched run implies CS
        // is empty or evolution is off (the exact-fallback gate), so the
        // drift-evolve effect is always a no-op here and is skipped.
        if self.config.evolution.enabled && end.is_multiple_of(self.config.evolution.period) {
            self.self_evolve(end);
            self.grow_os(end);
        }
        if self.config.prune_every > 0 && end.is_multiple_of(self.config.prune_every) {
            self.stats.cells_pruned += self.manager.prune(end, self.config.prune_floor) as u64;
        }
        self.stats.commit_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Whether committing this swept run must take the exact per-point
    /// path: a drift alarm will fire inside it *and* the alarm triggers a
    /// CS self-evolution that reads mid-run reservoir/outlier state.
    /// Decided before the commit runs — the swept plans fully determine
    /// every Page–Hinkley update (no RNG), so a replay on a scratch copy
    /// is exact.
    fn run_commit_needs_exact(&self, plans: &[EvalPlan]) -> bool {
        if !self.config.drift.enabled || !self.config.evolution.enabled || self.sst.sizes().1 == 0 {
            return false;
        }
        let mut ph = self.drift.clone();
        plans.iter().any(|plan| {
            plan.monitored > 0 && ph.observe(plan.monitored_fresh as f64 / plan.monitored as f64)
        })
    }

    /// Whether committing the run `[start, start + len)` is guaranteed not
    /// to mutate the synopsis manager or the SST — the gate for
    /// overlapping the next run's shard ingestion with this commit.
    /// Mutations come from maintenance ticks (periodic evolution, pruning;
    /// excluded by tick arithmetic) and from a drift-triggered CS
    /// self-evolution. The latter is decidable *before* the commit runs:
    /// the swept `plans` fully determine every Page–Hinkley update the
    /// commit will perform (no RNG is involved in the drift test), so a
    /// cheap simulation over the run's novelty signals tells exactly
    /// whether an alarm — and with it an SST rewrite — will fire. (A
    /// fired alarm with CS empty is still pure: self-evolution of an
    /// empty CS is a no-op, and CS cannot become non-empty mid-commit —
    /// only `evolve_cs` of a non-empty CS or a learning stage populate
    /// it.)
    fn commit_is_manager_pure(&self, start: u64, len: u64, plans: &[EvalPlan]) -> bool {
        // First multiple of `p` at or after `start`, inside the run?
        let period_tick_inside = |p: u64| p > 0 && start.div_ceil(p) * p < start + len;
        if self.config.evolution.enabled && period_tick_inside(self.config.evolution.period) {
            return false;
        }
        if period_tick_inside(self.config.prune_every) {
            return false;
        }
        if self.config.drift.enabled && self.config.evolution.enabled && self.sst.sizes().1 > 0 {
            // Replay the commit's exact observe() sequence on a scratch
            // copy of the drift detector (commits of earlier runs have
            // already completed, so `self.drift` is the state this run's
            // commit starts from).
            let mut ph = self.drift.clone();
            for plan in plans {
                if plan.monitored > 0 {
                    let novel = plan.monitored_fresh as f64 / plan.monitored as f64;
                    if ph.observe(novel) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Default executor for [`Spot::process_batch`]: the service's shared
    /// pool when the run is wide enough to pay for dispatch, the calling
    /// thread otherwise.
    fn default_exec(&mut self, run_points: usize) -> BatchExec<'static> {
        match self.manager.batch_pool(run_points) {
            Some(pool) => BatchExec::Pool(pool),
            None => BatchExec::Serial(SerialExecutor),
        }
    }

    /// Maximum points per internal batch run (bounds how late a
    /// drift-triggered self-evolution can be applied).
    pub const BATCH_RUN: usize = 256;

    /// Length of the next batch run starting at `start`: capped at
    /// [`Spot::BATCH_RUN`] and never spanning a periodic-maintenance tick
    /// (the run *ends on* the maintenance tick, so maintenance runs at
    /// exactly the same point in the stream as under one-by-one
    /// processing).
    fn run_len(&self, start: u64, remaining: usize) -> usize {
        let mut len = remaining.min(Self::BATCH_RUN);
        let mut cap_at_period = |p: u64| {
            if p == 0 {
                return;
            }
            // First multiple of p at or after start, inclusive in the run.
            let next = start.div_ceil(p) * p;
            let span = (next - start + 1).min(len as u64) as usize;
            len = span.max(1);
        };
        if self.config.evolution.enabled {
            cap_at_period(self.config.evolution.period);
        }
        cap_at_period(self.config.prune_every);
        len
    }

    /// The sequential **commit** phase for one swept point: counters,
    /// outlier retention, reservoir sampling, the drift test, and —
    /// applied inline here — every maintenance effect (drift-triggered and
    /// periodic self-evolution, OS growth, pruning). Consumes the plan's
    /// findings into the verdict.
    fn commit_point(&mut self, now: u64, point: &DataPoint, plan: &mut EvalPlan) -> Verdict {
        let (verdict, effects) = CommitCtx {
            config: &self.config,
            stats: &mut self.stats,
            reservoir: &mut self.reservoir,
            outlier_buffer: &mut self.outlier_buffer,
            drift: &mut self.drift,
        }
        .commit_one(now, point, plan);
        // Maintenance, in the order the pre-split evaluator applied it.
        if effects.drift_evolve {
            self.self_evolve(now);
        }
        if effects.periodic {
            self.self_evolve(now);
            self.grow_os(now);
        }
        if effects.prune {
            self.stats.cells_pruned += self.manager.prune(now, self.config.prune_floor) as u64;
        }
        verdict
    }

    /// Convenience wrapper over [`Spot::process`] for stream records.
    pub fn process_record(&mut self, record: &StreamRecord) -> Result<Verdict> {
        self.process(&record.point)
    }

    /// Replaces the SST wholesale (snapshot restoration). Rebuilds lookup
    /// indices and reconciles the monitored stores.
    pub(crate) fn restore_sst(&mut self, mut sst: Sst, learned: bool) {
        self.mutations += 1;
        self.structure_revision += 1;
        sst.rebuild_index();
        self.sst = sst;
        self.learned = learned;
        self.sync_manager_subspaces(false);
    }

    /// Captures the detector's complete runtime state — everything beyond
    /// config + SST — as the `state` payload of a v2 checkpoint. The
    /// synopsis stores are encoded through `exec` (one claim unit per
    /// store), so a cooperative caller's helpers share the column-encoding
    /// work. Read-only; any claim interleaving yields the identical tree.
    pub(crate) fn capture_runtime_state(&self, exec: &dyn StoreExecutor) -> Value {
        let mut w = StateWriter::new();
        w.component("clock", &self.clock);
        w.bool("learned", self.learned);
        w.u64_col("rng", self.rng.state());
        w.component("stats", &self.stats);
        w.component("drift", &self.drift);
        w.component("reservoir", &self.reservoir);
        w.point_list("outlier_buffer", &self.outlier_buffer);
        w.value("synopsis", self.manager.capture_state_with(exec));
        w.finish()
    }

    /// Snapshots the detector's dirty-tracking counters at capture time.
    /// Take the mark under the same lock (and at the same instant) as the
    /// capture itself; pair it with [`Spot::delta_capture_with`] on the
    /// next checkpoint to encode only what changed in between.
    pub fn capture_mark(&self) -> CaptureMark {
        CaptureMark {
            mutations: self.mutations,
            structure: self.structure_revision,
            synopsis: self.manager.capture_mark(),
        }
    }

    /// Attempts a delta capture against `mark` (a previous checkpoint's
    /// [`Spot::capture_mark`]). The scalar layers (clock, RNG, stats,
    /// drift, reservoir, outlier retention) are always included — they are
    /// tiny and change with every point; the synopsis contributes only its
    /// dirtied stores. Falls back to [`DeltaCapture::Full`] whenever the
    /// SST structure moved, because ordinals would no longer line up.
    pub fn delta_capture_with(&self, exec: &dyn StoreExecutor, mark: &CaptureMark) -> DeltaCapture {
        if self.mutations == mark.mutations && self.structure_revision == mark.structure {
            return DeltaCapture::Unchanged;
        }
        if self.structure_revision != mark.structure {
            return DeltaCapture::Full;
        }
        let Some(synopsis) = self.manager.capture_state_delta_with(exec, &mark.synopsis) else {
            return DeltaCapture::Full;
        };
        let mut w = StateWriter::new();
        w.component("clock", &self.clock);
        w.bool("learned", self.learned);
        w.u64_col("rng", self.rng.state());
        w.component("stats", &self.stats);
        w.component("drift", &self.drift);
        w.component("reservoir", &self.reservoir);
        w.point_list("outlier_buffer", &self.outlier_buffer);
        w.value("synopsis", synopsis);
        DeltaCapture::Delta(w.finish())
    }

    /// Restores the complete runtime state captured by
    /// [`Spot::capture_runtime_state`] into a freshly-constructed detector
    /// of the same configuration. The SST is installed without the usual
    /// reconcile-and-warm pass: the manager's stores are rebuilt wholesale
    /// from the snapshot, preserving their capture-time registration order
    /// (which defines per-point result order — the bit-exactness contract).
    pub(crate) fn restore_runtime_state(
        &mut self,
        mut sst: Sst,
        r: &StateReader<'_>,
    ) -> std::result::Result<(), PersistError> {
        self.mutations += 1;
        self.structure_revision += 1;
        sst.rebuild_index();
        self.sst = sst;
        self.active = self.sst.iter_all().collect();
        r.restore_component("clock", &mut self.clock)?;
        self.learned = r.bool("learned")?;
        let rng_words = r.u64_col("rng")?;
        let rng_state: [u64; 4] = rng_words
            .as_slice()
            .try_into()
            .map_err(|_| PersistError::custom("rng state must be exactly 4 words"))?;
        self.rng = StdRng::from_state(rng_state);
        r.restore_component("stats", &mut self.stats)?;
        r.restore_component("drift", &mut self.drift)?;
        r.restore_component("reservoir", &mut self.reservoir)?;
        // The reservoir itself is dimension-agnostic; reject mismatched
        // payloads here, at load time, not at the next self-evolution.
        if let Some((_, p)) = self
            .reservoir
            .items()
            .iter()
            .find(|(_, p)| p.dims() != self.phi)
        {
            return Err(PersistError::custom(format!(
                "reservoir point dimensionality {} does not match ϕ = {}",
                p.dims(),
                self.phi
            )));
        }
        self.outlier_buffer = r.point_list("outlier_buffer", Some(self.phi))?;
        self.manager.restore_state(&r.nested("synopsis")?)?;
        Ok(())
    }

    /// Empties the CS component (SST-ablation studies: e.g. an "FS+OS"
    /// configuration). The monitored stores are reconciled immediately.
    pub fn clear_cs(&mut self) {
        self.mutations += 1;
        self.structure_revision += 1;
        self.sst.clear_cs();
        self.sync_manager_subspaces(false);
    }

    /// Empties the OS component (SST-ablation studies).
    pub fn clear_os(&mut self) {
        self.mutations += 1;
        self.structure_revision += 1;
        self.sst.clear_os();
        self.sync_manager_subspaces(false);
    }

    /// HOS-Miner-style query: the top sparse subspaces of an arbitrary
    /// point, judged against the reservoir sample of the recent stream.
    /// Requires enough recent data (≥ 8 points) to be meaningful.
    pub fn explain(&mut self, point: &DataPoint, top_k: usize) -> Result<Vec<(Subspace, f64)>> {
        if self.reservoir.len() < 8 {
            return Err(SpotError::NotLearned);
        }
        let mut pts: Vec<DataPoint> = self
            .reservoir
            .items()
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        let target = pts.len();
        pts.push(point.clone());
        let evaluator = TrainingEvaluator::new(self.manager.grid().clone(), pts)?;
        let mut problem = SparsityProblem::for_targets(
            &evaluator,
            vec![target],
            self.config.learning.max_cardinality,
        );
        let out = spot_moga::run(&mut problem, &self.online_moga_config())?;
        Ok(out.top_k(top_k))
    }

    /// CS self-evolution (paper, Section II-C2): crossover/mutate the top
    /// subspaces of the current CS, re-rank old and new together against
    /// the recent stream, keep the best.
    fn self_evolve(&mut self, _now: u64) {
        let entries = self.sst.cs_entries();
        if entries.is_empty() || self.reservoir.len() < 8 {
            return;
        }
        self.structure_revision += 1;
        self.stats.evolutions += 1;
        // Generate offspring of the current CS.
        let parents: Vec<Subspace> = entries.iter().map(|e| e.subspace).collect();
        let max_card = self.config.learning.max_cardinality.unwrap_or(self.phi);
        let mut offspring: Vec<Subspace> = Vec::with_capacity(self.config.cs_capacity);
        for _ in 0..self.config.cs_capacity {
            let a = parents[self.rng.gen_range(0..parents.len())];
            let b = parents[self.rng.gen_range(0..parents.len())];
            let child = genetic::uniform_crossover(a, b, self.phi, &mut self.rng);
            let child = genetic::mutate(child, self.phi, 0.1, &mut self.rng);
            offspring.push(genetic::repair_with_max_card(
                child.mask(),
                self.phi,
                max_card,
                &mut self.rng,
            ));
        }
        // Score everyone against the recent stream: how sparse do the
        // buffered outliers (or, lacking any, all recent points) look?
        let Some((evaluator, targets)) = self.reservoir_evaluator() else {
            return;
        };
        let mut candidates: Vec<ScoredSubspace> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for s in entries.iter().map(|e| e.subspace).chain(offspring) {
            if !seen.insert(s.mask()) {
                continue;
            }
            let (rd, irsd) = evaluator.sparsity(s, targets.as_deref());
            let dim = 0.25 * s.cardinality() as f64 / self.phi as f64;
            candidates.push(ScoredSubspace {
                subspace: s,
                score: rd + irsd + dim,
            });
        }
        self.sst.evolve_cs(candidates);
        self.sync_manager_subspaces(true);
    }

    /// OS growth (paper, Section II-C2): MOGA over the buffered detected
    /// outliers; their top sparse subspaces join OS so similar outliers are
    /// caught directly later.
    fn grow_os(&mut self, _now: u64) {
        if self.outlier_buffer.len() < self.config.evolution.min_outliers_for_os
            || self.reservoir.len() < 8
        {
            return;
        }
        let Some((evaluator, _)) = self.reservoir_evaluator() else {
            return;
        };
        // Targets are the buffered outliers, which sit at the tail of the
        // combined evaluator batch built by `reservoir_evaluator`.
        let n_reservoir = self.reservoir.len();
        let targets: Vec<usize> = (n_reservoir..n_reservoir + self.outlier_buffer.len()).collect();
        let mut problem =
            SparsityProblem::for_targets(&evaluator, targets, self.config.learning.max_cardinality);
        let Ok(out) = spot_moga::run(&mut problem, &self.online_moga_config()) else {
            return;
        };
        let mut added = 0;
        for (s, score) in out.top_k(self.config.learning.moga_top_k) {
            if self.sst.add_os(s, score) {
                added += 1;
            }
        }
        self.stats.os_added += added;
        self.outlier_buffer.clear();
        self.structure_revision += 1;
        if added > 0 {
            self.sync_manager_subspaces(true);
        }
    }

    /// A lighter MOGA configuration for online searches (time criticality
    /// of the detection stage).
    fn online_moga_config(&self) -> MogaConfig {
        let base = &self.config.learning.moga;
        MogaConfig {
            population: base.population.clamp(8, 24),
            generations: base.generations.clamp(4, 12),
            crossover_rate: base.crossover_rate,
            mutation_rate: base.mutation_rate,
            seed: self.config.seed ^ self.stats.processed,
        }
    }

    /// Evaluator over reservoir ∪ outlier buffer; targets = buffer indices
    /// (None when the buffer is empty → whole-batch objectives).
    fn reservoir_evaluator(&self) -> Option<(TrainingEvaluator<'static>, Option<Vec<usize>>)> {
        let mut pts: Vec<DataPoint> = self
            .reservoir
            .items()
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        let n_reservoir = pts.len();
        pts.extend(self.outlier_buffer.iter().map(|(_, p)| p.clone()));
        let targets = if self.outlier_buffer.is_empty() {
            None
        } else {
            Some((n_reservoir..pts.len()).collect())
        };
        TrainingEvaluator::new(self.manager.grid().clone(), pts)
            .ok()
            .map(|ev| (ev, targets))
    }

    /// Reconciles the manager's projected stores with the current SST;
    /// `warm` replays the reservoir into stores created by this call.
    fn sync_manager_subspaces(&mut self, warm: bool) {
        let desired: FxHashSet<u64> = self.sst.iter_all().map(|s| s.mask()).collect();
        let current: Vec<Subspace> = self.manager.subspaces().collect();
        for s in current {
            if !desired.contains(&s.mask()) {
                self.manager.remove_subspace(&s);
            }
        }
        let mut added: Vec<Subspace> = Vec::new();
        self.active = self.sst.iter_all().collect();
        for s in &self.active {
            if self.manager.add_subspace(*s) {
                added.push(*s);
            }
        }
        if warm && !added.is_empty() && !self.reservoir.is_empty() {
            let mut replay = self.reservoir.items().to_vec();
            replay.sort_by_key(|(tick, _)| *tick);
            for s in added {
                // Replay failures only leave a colder store; detection
                // continues either way.
                let _ = self.manager.replay_into(&s, &replay);
            }
        }
    }
}

/// The effects a committed point demands beyond its own verdict — the
/// state mutations that must run between points, applied by the caller
/// (inline on the sequential paths; excluded by the overlap gate on the
/// pipelined path, where `drift_evolve` is provably a no-op).
#[derive(Debug, Default, Clone, Copy)]
struct CommitEffects {
    /// A drift alarm fired and evolution is enabled → CS self-evolution.
    drift_evolve: bool,
    /// This tick is a periodic-evolution tick → self-evolution + OS growth.
    periodic: bool,
    /// This tick is a pruning tick.
    prune: bool,
}

/// The split-borrow bundle of every detector field the commit phase
/// mutates — constructed over `&mut Spot` on the sequential paths, and
/// captured field-by-field into the claim-once rider on the overlapped
/// path (where `Spot::manager` is concurrently ingesting the next run).
struct CommitCtx<'a> {
    config: &'a SpotConfig,
    stats: &'a mut SpotStats,
    reservoir: &'a mut Reservoir,
    outlier_buffer: &'a mut Vec<(u64, DataPoint)>,
    drift: &'a mut PageHinkley,
}

impl CommitCtx<'_> {
    /// Commits one swept point: the sequential, state-mutating half of
    /// two-phase evaluation. Returns the verdict (taking the plan's
    /// findings) plus the maintenance effects due on this tick.
    fn commit_one(
        &mut self,
        now: u64,
        point: &DataPoint,
        plan: &mut EvalPlan,
    ) -> (Verdict, CommitEffects) {
        self.stats.processed += 1;
        if plan.outlier {
            self.stats.outliers += 1;
            push_outlier(
                self.config.evolution.outlier_buffer,
                self.outlier_buffer,
                now,
                point,
            );
        }
        self.reservoir
            .offer(self.config.evolution.reservoir, now, point);

        // Concept drift on the projected-freshness signal.
        let mut effects = CommitEffects::default();
        let mut drift_fired = false;
        if self.config.drift.enabled && plan.monitored > 0 {
            let novel = plan.monitored_fresh as f64 / plan.monitored as f64;
            if self.drift.observe(novel) {
                drift_fired = true;
                self.stats.drift_events += 1;
                if self.config.evolution.enabled {
                    effects.drift_evolve = true;
                }
            }
        }
        if self.config.evolution.enabled && now.is_multiple_of(self.config.evolution.period) {
            effects.periodic = true;
        }
        if self.config.prune_every > 0 && now.is_multiple_of(self.config.prune_every) {
            effects.prune = true;
        }
        let verdict = Verdict {
            tick: now,
            outlier: plan.outlier,
            score: plan.score,
            findings: std::mem::take(&mut plan.findings),
            drift: drift_fired,
        };
        (verdict, effects)
    }

    /// Commits a whole swept run in two passes instead of a per-point
    /// loop, bit-identical to [`CommitCtx::commit_one`] over the run as
    /// long as no mid-run maintenance effect fires (the callers' gates
    /// guarantee that; a drift alarm is fine — it only flags the verdict).
    ///
    /// Pass 1 is **order-free**: each verdict is a pure function of its
    /// own plan and tick, so assembly fans across `exec` in `chunk`-sized
    /// claim units (or runs inline when the run is narrow or `exec` is
    /// `None`). Pass 2 is the **sequential fold**: Page–Hinkley
    /// observations in point order, counter merges, outlier retention in
    /// point order, one batched reservoir pass, one clock advance.
    fn commit_run_batched(
        &mut self,
        clock: &mut LogicalClock,
        run: &[DataPoint],
        plans: &mut [EvalPlan],
        verdicts: &mut Vec<Verdict>,
        exec: Option<&dyn StoreExecutor>,
        chunk: usize,
    ) {
        let len = run.len();
        let start = clock.now() + 1;

        // Pass 1: order-free verdict assembly.
        let base = verdicts.len();
        verdicts.resize_with(base + len, || Verdict {
            tick: 0,
            outlier: false,
            score: 0.0,
            findings: Vec::new(),
            drift: false,
        });
        let out = &mut verdicts[base..];
        let assemble = |i: usize, plan: &mut EvalPlan| Verdict {
            tick: start + i as u64,
            outlier: plan.outlier,
            score: plan.score,
            findings: std::mem::take(&mut plan.findings),
            drift: false,
        };
        match exec {
            Some(e) if len > chunk => {
                let chunks = len.div_ceil(chunk);
                let cursor = AtomicUsize::new(0);
                let shared_plans = SharedSlice::new(plans);
                let shared_out = SharedSlice::new(out);
                let work = || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= chunks {
                        break;
                    }
                    let lo = k * chunk;
                    let hi = (lo + chunk).min(len);
                    for i in lo..hi {
                        // SAFETY: `i` belongs to chunk `k`, claimed
                        // exactly once; plans and out are disjoint slices.
                        let plan = unsafe { shared_plans.get_mut(i) };
                        let slot = unsafe { shared_out.get_mut(i) };
                        *slot = assemble(i, plan);
                    }
                };
                e.execute(&work);
            }
            _ => {
                for (i, (slot, plan)) in out.iter_mut().zip(plans.iter_mut()).enumerate() {
                    *slot = assemble(i, plan);
                }
            }
        }

        // Pass 2: the sequential fold. Page–Hinkley first — its updates
        // are the only order-sensitive computation in a commit.
        if self.config.drift.enabled {
            for (slot, plan) in out.iter_mut().zip(plans.iter()) {
                if plan.monitored > 0 {
                    let novel = plan.monitored_fresh as f64 / plan.monitored as f64;
                    if self.drift.observe(novel) {
                        slot.drift = true;
                        self.stats.drift_events += 1;
                    }
                }
            }
        }
        self.stats.processed += len as u64;
        let cap = self.config.evolution.outlier_buffer;
        for (i, (slot, point)) in out.iter().zip(run).enumerate() {
            if slot.outlier {
                self.stats.outliers += 1;
                push_outlier(cap, self.outlier_buffer, start + i as u64, point);
            }
        }
        self.reservoir
            .offer_run(self.config.evolution.reservoir, start, run);
        clock.advance(len as u64);
    }
}

/// Retains a detected outlier for OS growth — the clone happens only once
/// the point is actually kept (a zero-capacity buffer never clones).
fn push_outlier(cap: usize, buffer: &mut Vec<(u64, DataPoint)>, now: u64, p: &DataPoint) {
    if cap == 0 {
        return;
    }
    if buffer.len() >= cap {
        buffer.remove(0);
    }
    buffer.push((now, p.clone()));
}

/// The pure **sweep** phase for one point: thresholds and the drift
/// signal, from the per-subspace PCS list and the configuration alone.
/// Reads no detector state, writes only `plan` — which is what makes
/// sweeps shardable across a run's points.
///
/// Outlier-ness is checked in every SST subspace. The same sweep collects
/// the drift signal: the fraction of the point's monitored projected
/// cells that are sparse. (Full-space novelty is useless here — in high
/// dimensions nearly every base cell is empty, so that signal saturates;
/// low-dimensional projections stay dense under a stable distribution and
/// light up when it moves.)
fn sweep_point(config: &SpotConfig, entries: &[SubspacePcs], plan: &mut EvalPlan) {
    plan.clear();
    let thresholds = config.thresholds;
    let mut min_rd = f64::INFINITY;
    for e in entries {
        min_rd = min_rd.min(e.pcs.rd);
        // Freshness: the decayed occupancy of the cell counts the point
        // itself, so `< novelty_floor` means the cell held (almost)
        // nothing before this arrival. A stationary stream revisits its
        // cells; a drifting one keeps opening fresh ones. Only the
        // immutable FS stores feed the signal — CS/OS churn under
        // self-evolution and their freshly warmed stores would
        // contaminate it.
        if e.subspace.cardinality() <= config.fs_max_dimension {
            plan.monitored += 1;
            if e.occupancy < config.drift.novelty_floor {
                plan.monitored_fresh += 1;
            }
        }
        let flagged = e.pcs.rd < thresholds.rd && thresholds.irsd.is_none_or(|t| e.pcs.irsd < t);
        if flagged {
            plan.findings.push(SubspaceFinding {
                subspace: e.subspace,
                rd: e.pcs.rd,
                irsd: e.pcs.irsd,
            });
        }
    }
    plan.findings
        .sort_by(|a, b| a.rd.partial_cmp(&b.rd).expect("RD values are not NaN"));
    plan.outlier = !plan.findings.is_empty();
    plan.score = if min_rd.is_finite() {
        1.0 / (1.0 + min_rd)
    } else {
        0.0
    };
}

/// Sweeps a whole run into `plans` (resized/cleared to `sinks.len()`),
/// fanning point chunks across the executor's participants when the run
/// is wide enough to pay for dispatch. Sweeps are pure per point, so any
/// claim interleaving produces identical plans. The claim granularity is
/// `config.tuning.sweep_chunk` points per cursor hit — small enough that
/// a 256-point run splits across participants, large enough that the
/// cursor is not contended.
fn sweep_run(
    config: &SpotConfig,
    exec: &dyn StoreExecutor,
    sinks: &[Vec<SubspacePcs>],
    plans: &mut Vec<EvalPlan>,
) {
    let n = sinks.len();
    let chunk = config.tuning.sweep_chunk;
    plans.truncate(n);
    plans.resize_with(n, EvalPlan::default);
    if n <= chunk {
        for (plan, entries) in plans.iter_mut().zip(sinks) {
            sweep_point(config, entries, plan);
        }
        return;
    }
    let chunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let shared = SharedSlice::new(&mut plans[..]);
    let work = || loop {
        let k = cursor.fetch_add(1, Ordering::Relaxed);
        if k >= chunks {
            break;
        }
        let lo = k * chunk;
        let hi = (lo + chunk).min(n);
        for (i, entries) in sinks[lo..hi].iter().enumerate() {
            // SAFETY: `lo + i` belongs to chunk `k`, claimed exactly once.
            let plan = unsafe { shared.get_mut(lo + i) };
            sweep_point(config, entries, plan);
        }
    };
    exec.execute(&work);
}

/// The executor a batch call resolved to (owned where necessary so one
/// choice serves every run of the batch).
enum BatchExec<'a> {
    /// Caller-supplied (e.g. the cooperative `SharedSpot` job board).
    External(&'a dyn StoreExecutor),
    /// The executor service's shared worker pool.
    Pool(Arc<spot_synopsis::WorkerPool>),
    /// The calling thread alone.
    Serial(SerialExecutor),
}

impl BatchExec<'_> {
    fn as_dyn(&self) -> &dyn StoreExecutor {
        match self {
            BatchExec::External(e) => *e,
            BatchExec::Pool(pool) => &**pool,
            BatchExec::Serial(serial) => serial,
        }
    }
}

/// τ estimate for leader clustering: half the mean pairwise distance over a
/// bounded random sample of the batch.
fn estimate_tau(points: &[DataPoint], rng: &mut StdRng) -> f64 {
    const PAIRS: usize = 256;
    if points.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for _ in 0..PAIRS {
        let i = rng.gen_range(0..points.len());
        let j = rng.gen_range(0..points.len());
        if i == j {
            continue;
        }
        sum += points[i].distance(&points[j]);
        n += 1;
    }
    if n == 0 || sum <= 0.0 {
        1.0
    } else {
        (sum / n as f64) * 0.5
    }
}

impl StreamDetector for Spot {
    fn learn(&mut self, training: &[DataPoint]) -> Result<()> {
        Spot::learn(self, training).map(|_| ())
    }

    fn process(&mut self, point: &DataPoint) -> Detection {
        match Spot::process(self, point) {
            Ok(v) => Detection {
                outlier: v.outlier,
                score: v.score,
            },
            Err(_) => Detection::outlier(f64::INFINITY),
        }
    }

    fn name(&self) -> &str {
        "spot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvolutionConfig, SpotBuilder};
    use spot_types::DomainBounds;

    /// Clustered 6-dim batch: three tight clusters in dims {0,1}, broad in
    /// the rest.
    fn training(n: usize) -> Vec<DataPoint> {
        let centers = [[0.2, 0.2], [0.5, 0.7], [0.8, 0.3]];
        (0..n)
            .map(|i| {
                let c = centers[i % 3];
                let jitter = |k: usize| ((i * (k + 7)) % 13) as f64 / 13.0 * 0.04;
                let mut v = vec![0.0; 6];
                v[0] = c[0] + jitter(0);
                v[1] = c[1] + jitter(1);
                for (d, item) in v.iter_mut().enumerate().skip(2) {
                    *item = 0.3 + ((i * (d + 3)) % 17) as f64 / 17.0 * 0.4;
                }
                DataPoint::new(v)
            })
            .collect()
    }

    fn spot() -> Spot {
        SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn new_enumerates_fs_and_monitors_it() {
        let s = spot();
        let (fs, cs, os) = s.sst().sizes();
        assert_eq!(fs, 6 + 15);
        assert_eq!(cs, 0);
        assert_eq!(os, 0);
        assert_eq!(s.active.len(), fs);
    }

    #[test]
    fn learn_builds_cs_and_warms_synopses() {
        let mut s = spot();
        let report = s.learn(&training(300)).unwrap();
        assert_eq!(report.training_points, 300);
        assert!(report.od_candidates >= 3);
        assert!(!report.cs.is_empty(), "CS must be populated");
        assert!(report.moga_evaluations > 0);
        assert!(s.is_learned());
        // Replay warmed the synopses.
        assert!(s.footprint().base_cells > 0);
        assert_eq!(s.now(), 300);
    }

    #[test]
    fn learn_rejects_empty_and_mismatched() {
        let mut s = spot();
        assert!(matches!(s.learn(&[]), Err(SpotError::EmptyTrainingSet)));
        assert!(s.learn(&[DataPoint::new(vec![0.5; 3])]).is_err());
    }

    #[test]
    fn detects_planted_projected_outlier() {
        let mut s = spot();
        s.learn(&training(600)).unwrap();
        // A point normal in dims 2..6 but far from all clusters in {0,1}.
        let mut v = vec![0.5; 6];
        v[0] = 0.02;
        v[1] = 0.98;
        let verdict = s.process(&DataPoint::new(v)).unwrap();
        assert!(verdict.outlier);
        assert!(!verdict.findings.is_empty());
        // Findings are sorted sparsest-first.
        for w in verdict.findings.windows(2) {
            assert!(w[0].rd <= w[1].rd);
        }
        assert!(verdict.score > 0.5);
    }

    #[test]
    fn dense_point_is_not_flagged() {
        let mut s = spot();
        let train = training(600);
        s.learn(&train).unwrap();
        // Process a stretch of normal points; the vast majority must pass.
        let mut flagged = 0;
        for p in training(200) {
            if s.process(&p).unwrap().outlier {
                flagged += 1;
            }
        }
        assert!(flagged < 40, "flagged {flagged}/200 normal points");
    }

    #[test]
    fn process_rejects_wrong_dims() {
        let mut s = spot();
        assert!(s.process(&DataPoint::new(vec![0.5; 2])).is_err());
    }

    #[test]
    fn outliers_fill_buffer_and_grow_os() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .evolution(EvolutionConfig {
                enabled: true,
                period: 100,
                outlier_buffer: 32,
                reservoir: 128,
                min_outliers_for_os: 3,
            })
            .build()
            .unwrap();
        s.learn(&training(400)).unwrap();
        // Interleave normal traffic with varied projected outliers (each in
        // a fresh sparse region, so they do not accumulate into a dense
        // micro-cluster of their own).
        let normals = training(400);
        for (i, p) in normals.iter().enumerate() {
            s.process(p).unwrap();
            if i % 10 == 0 {
                let mut v = p.values().to_vec();
                let d = 2 + (i / 10) % 4;
                v[d] = if (i / 10) % 2 == 0 { 0.98 } else { 0.015 };
                v[(d + 1) % 6] = 0.96 - (i / 10) as f64 * 0.013;
                s.process(&DataPoint::new(v)).unwrap();
            }
        }
        assert!(s.stats().os_added > 0, "OS never grew: {:?}", s.stats());
        assert!(s.sst().sizes().2 > 0);
    }

    #[test]
    fn self_evolution_runs_periodically() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .evolution(EvolutionConfig {
                period: 50,
                ..Default::default()
            })
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        for p in training(200) {
            s.process(&p).unwrap();
        }
        assert!(s.stats().evolutions > 0);
        // CS stays within capacity.
        assert!(s.sst().sizes().1 <= s.config().cs_capacity);
    }

    #[test]
    fn pruning_counter_advances_on_long_streams() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            // Short memory (omega = 200 ticks) so stale cells decay below
            // the prune floor within the test stream.
            .time_model(spot_stream::TimeModel::new(200, 0.01).unwrap())
            .pruning(200, 1e-3)
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        // Shifted stream: old cells decay away and must be evicted.
        for (i, p) in training(2500).iter().enumerate() {
            let mut v = p.values().to_vec();
            v[5] = (i % 100) as f64 / 100.0;
            s.process(&DataPoint::new(v)).unwrap();
        }
        assert!(s.stats().cells_pruned > 0);
    }

    #[test]
    fn nan_points_rejected_and_detector_stays_usable() {
        let mut s = spot();
        s.learn(&training(200)).unwrap();
        let mut bad = vec![0.5; 6];
        bad[3] = f64::NAN;
        let before = s.stats().processed;
        let err = s.process(&DataPoint::new(bad.clone())).unwrap_err();
        assert!(matches!(err, SpotError::NonFiniteValue { dim: 3 }));
        assert_eq!(s.stats().processed, before, "rejected point must not count");
        // Batch path validates up front: nothing is ingested.
        let batch = vec![DataPoint::new(vec![0.5; 6]), DataPoint::new(bad)];
        assert!(s.process_batch(&batch).is_err());
        assert_eq!(s.stats().processed, before);
        // Infinities are clamped, not rejected.
        assert!(s.process(&DataPoint::new(vec![f64::INFINITY; 6])).is_ok());
        assert!(s.process(&DataPoint::new(vec![0.5; 6])).is_ok());
    }

    #[test]
    fn nan_batch_rejection_leaves_scratch_state_clean() {
        // A rejected batch (NaN point) must not corrupt the reused
        // batch_sinks / batch_outcomes / batch_plans scratch buffers: every
        // subsequent batch must be bit-identical to a detector that never
        // saw the poisoned batch. The failed batch lands mid-stream, after
        // the scratch buffers are warm from earlier (larger) batches.
        let stream = training(300);
        let mut tainted = spot();
        tainted.learn(&training(200)).unwrap();
        let mut clean = spot();
        clean.learn(&training(200)).unwrap();

        let before = tainted.process_batch(&stream[..120]).unwrap();
        assert_eq!(before, clean.process_batch(&stream[..120]).unwrap());

        let mut poisoned: Vec<DataPoint> = stream[120..180].to_vec();
        let mut bad = vec![0.4; 6];
        bad[2] = f64::NAN;
        poisoned.insert(30, DataPoint::new(bad));
        assert!(matches!(
            tainted.process_batch(&poisoned).unwrap_err(),
            SpotError::NonFiniteValue { dim: 2 }
        ));
        assert_eq!(
            tainted.stats(),
            clean.stats(),
            "rejected batch must not count"
        );

        // Smaller-than-before batches reuse (truncated) scratch rows;
        // larger ones regrow them. Both must match the clean detector.
        for chunk in [&stream[120..150], &stream[150..300]] {
            let want = clean.process_batch(chunk).unwrap();
            let got = tainted.process_batch(chunk).unwrap();
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.tick, b.tick);
                assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "tick {}", a.tick);
                assert_eq!(a.findings, b.findings, "tick {}", a.tick);
            }
        }
        assert_eq!(tainted.stats(), clean.stats());
        assert_eq!(tainted.footprint(), clean.footprint());
    }

    #[test]
    fn zero_capacity_outlier_buffer_never_panics() {
        // cap = 0 used to hit `remove(0)` on an empty buffer; the commit
        // path must simply skip retention (and never clone the point).
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .evolution(EvolutionConfig {
                outlier_buffer: 0,
                ..Default::default()
            })
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        let mut v = vec![0.5; 6];
        v[0] = 0.02;
        v[1] = 0.98;
        let verdict = s.process(&DataPoint::new(v)).unwrap();
        assert!(verdict.outlier);
        assert_eq!(s.stats().outliers, 1);
    }

    #[test]
    fn batch_eval_metrics_advance() {
        let mut s = spot();
        s.learn(&training(300)).unwrap();
        s.process_batch(&training(400)).unwrap();
        let stats = *s.stats();
        assert_eq!(stats.batch_points, 400);
        assert!(stats.batch_runs >= 2, "{stats:?}");
        assert!(stats.sweep_nanos > 0 && stats.commit_nanos > 0, "{stats:?}");
        assert!(stats.eval_points_per_sec().unwrap() > 0.0);
        // The single-point path leaves the batch metrics untouched.
        s.process(&DataPoint::new(vec![0.5; 6])).unwrap();
        assert_eq!(s.stats().batch_points, 400);
    }

    #[test]
    fn process_batch_matches_one_by_one() {
        // Periodic evolution + pruning land inside the stream so the batch
        // path has to split runs at the maintenance boundaries; drift is
        // left at its default (alarms never fire on these short streams).
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(6))
                .seed(11)
                .evolution(EvolutionConfig {
                    period: 150,
                    ..Default::default()
                })
                .pruning(100, 1e-4)
                .build()
                .unwrap();
            s.learn(&training(300)).unwrap();
            s
        };
        let mut stream = training(400);
        for (i, p) in stream.iter_mut().enumerate() {
            if i % 17 == 0 {
                let mut v = p.values().to_vec();
                v[2 + i % 4] = 0.97;
                *p = DataPoint::new(v);
            }
        }
        let mut serial = build();
        let serial_verdicts: Vec<Verdict> =
            stream.iter().map(|p| serial.process(p).unwrap()).collect();
        let mut batched = build();
        let batch_verdicts = batched.process_batch(&stream).unwrap();
        assert_eq!(serial_verdicts.len(), batch_verdicts.len());
        for (a, b) in serial_verdicts.iter().zip(&batch_verdicts) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.score, b.score, "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
        }
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.footprint(), batched.footprint());
    }

    #[test]
    fn process_batch_in_chunks_matches_single_batch() {
        let mut a = spot();
        a.learn(&training(300)).unwrap();
        let mut b = spot();
        b.learn(&training(300)).unwrap();
        let stream = training(200);
        let whole = a.process_batch(&stream).unwrap();
        let mut chunked = Vec::new();
        for chunk in stream.chunks(33) {
            chunked.extend(b.process_batch(chunk).unwrap());
        }
        assert_eq!(whole.len(), chunked.len());
        for (x, y) in whole.iter().zip(&chunked) {
            assert_eq!((x.tick, x.outlier), (y.tick, y.outlier));
        }
    }

    #[test]
    fn long_uniform_stream_footprint_plateaus() {
        // Memory guard: under a stationary stream with pruning enabled the
        // live-cell population must stop growing once the space's support
        // is covered — the synopsis may not grow with stream length.
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(3)
            .time_model(spot_stream::TimeModel::new(500, 0.01).unwrap())
            .pruning(250, 1e-3)
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        let stream: Vec<DataPoint> = (0..4000)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 89) as f64 / 89.0,
                    ((i * 7) % 97) as f64 / 97.0,
                    ((i * 13) % 83) as f64 / 83.0,
                    ((i * 3) % 79) as f64 / 79.0,
                    ((i * 11) % 73) as f64 / 73.0,
                    ((i * 5) % 71) as f64 / 71.0,
                ])
            })
            .collect();
        s.process_batch(&stream[..2000]).unwrap();
        let mid = s.footprint().approx_bytes;
        s.process_batch(&stream[2000..]).unwrap();
        let end = s.footprint().approx_bytes;
        assert!(s.stats().cells_pruned > 0, "pruning never ran");
        // Allow slack for hash-map capacity growth, but the footprint must
        // not keep scaling with the stream.
        assert!(
            end <= mid * 2,
            "footprint kept growing: {mid} -> {end} bytes"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut s = spot();
            s.learn(&training(300)).unwrap();
            let mut verdicts = Vec::new();
            for p in training(100) {
                verdicts.push(s.process(&p).unwrap().outlier);
            }
            verdicts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn explain_returns_subspaces_for_queried_point() {
        let mut s = spot();
        s.learn(&training(300)).unwrap();
        let mut v = vec![0.5; 6];
        v[0] = 0.02;
        v[1] = 0.98;
        let explained = s.explain(&DataPoint::new(v), 3).unwrap();
        assert!(!explained.is_empty());
        assert!(explained.len() <= 3);
        // Scores ascend (best = sparsest first).
        for w in explained.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn explain_requires_recent_data() {
        let mut s = spot();
        assert_eq!(
            s.explain(&DataPoint::new(vec![0.5; 6]), 3),
            Err(SpotError::NotLearned)
        );
    }

    #[test]
    fn stream_detector_trait_roundtrip() {
        let mut s = spot();
        StreamDetector::learn(&mut s, &training(200)).unwrap();
        let d = StreamDetector::process(&mut s, &DataPoint::new(vec![0.5; 6]));
        assert!(d.score >= 0.0);
        assert_eq!(StreamDetector::name(&s), "spot");
        // Dimension mismatch maps to an infinite-score outlier.
        let d = StreamDetector::process(&mut s, &DataPoint::new(vec![0.5; 2]));
        assert!(d.outlier && d.score.is_infinite());
    }

    #[test]
    fn estimate_tau_is_positive_and_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        let near: Vec<DataPoint> = (0..50)
            .map(|i| DataPoint::new(vec![i as f64 * 1e-4]))
            .collect();
        let far: Vec<DataPoint> = (0..50).map(|i| DataPoint::new(vec![i as f64])).collect();
        let t_near = estimate_tau(&near, &mut rng);
        let t_far = estimate_tau(&far, &mut rng);
        assert!(t_near > 0.0);
        assert!(t_far > t_near);
        assert_eq!(estimate_tau(&near[..1], &mut rng), 1.0);
    }
}
