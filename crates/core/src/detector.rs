//! The SPOT detector: learning stage + online detection stage.

use crate::config::SpotConfig;
use crate::drift::PageHinkley;
use crate::evaluator::{SparsityProblem, TrainingEvaluator};
use crate::sst::Sst;
use crate::verdict::{LearningReport, SpotStats, SubspaceFinding, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_clustering::{outlying_degrees, top_outlying_indices, OdConfig};
use spot_moga::MogaConfig;
use spot_stream::LogicalClock;
use spot_subspace::{genetic, ScoredSubspace, Subspace};
use spot_synopsis::{
    Grid, LiveCounters, StoreExecutor, SubspacePcs, SynopsisManager, UpdateOutcome,
};
use spot_types::{
    DataPoint, Detection, FxHashSet, Result, SpotError, StreamDetector, StreamRecord,
};
use std::sync::Arc;

/// Memory snapshot of the synopses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynopsisFootprint {
    /// Populated base cells.
    pub base_cells: usize,
    /// Populated projected cells summed over SST subspaces.
    pub projected_cells: usize,
    /// Approximate bytes held by all synopsis stores.
    pub approx_bytes: usize,
}

/// Stream Projected Outlier deTector.
///
/// ```
/// use spot::{SpotBuilder, Verdict};
/// use spot_types::{DataPoint, DomainBounds};
///
/// // 4-dimensional stream over the unit box.
/// let mut spot = SpotBuilder::new(DomainBounds::unit(4)).seed(7).build().unwrap();
///
/// // Learning stage: an unlabeled batch of historical data.
/// let train: Vec<DataPoint> = (0..300)
///     .map(|i| DataPoint::new(vec![0.5 + (i % 7) as f64 * 0.01; 4]))
///     .collect();
/// spot.learn(&train).unwrap();
///
/// // Detection stage: one pass over arriving points.
/// let v: Verdict = spot.process(&DataPoint::new(vec![0.51; 4])).unwrap();
/// assert!(!v.outlier);
/// let v = spot.process(&DataPoint::new(vec![0.95, 0.02, 0.93, 0.04])).unwrap();
/// assert!(v.outlier);
/// assert!(!v.findings.is_empty()); // the outlying subspaces
/// ```
#[derive(Debug)]
pub struct Spot {
    config: SpotConfig,
    phi: usize,
    manager: SynopsisManager,
    sst: Sst,
    /// Flattened, deduplicated SST — the hot path iterates this.
    active: Vec<Subspace>,
    clock: LogicalClock,
    rng: StdRng,
    /// Recently detected outliers (tick, point), bounded ring.
    outlier_buffer: Vec<(u64, DataPoint)>,
    /// Reservoir sample of recent stream points (tick, point).
    reservoir: Vec<(u64, DataPoint)>,
    reservoir_seen: u64,
    drift: PageHinkley,
    stats: SpotStats,
    learned: bool,
    /// Reused per-point PCS sink (keeps the hot path allocation-free).
    pcs_sink: Vec<SubspacePcs>,
    /// Reused batch sinks/outcomes for [`Spot::process_batch`].
    batch_sinks: Vec<Vec<SubspacePcs>>,
    batch_outcomes: Vec<UpdateOutcome>,
}

impl Spot {
    /// Creates a detector from a validated configuration. FS is enumerated
    /// immediately; CS/OS await the learning stage.
    pub fn new(config: SpotConfig) -> Result<Self> {
        config.validate()?;
        let phi = config.phi();
        let grid = Grid::new(config.bounds.clone(), config.granularity)?;
        let manager = SynopsisManager::new(grid, config.time_model);
        let sst = Sst::new(
            phi,
            config.fs_max_dimension,
            config.cs_capacity,
            config.os_capacity,
        )?;
        let drift = PageHinkley::new(
            config.drift.delta,
            config.drift.lambda,
            config.drift.min_points,
        );
        let rng = StdRng::seed_from_u64(config.seed);
        let mut spot = Spot {
            config,
            phi,
            manager,
            sst,
            active: Vec::new(),
            clock: LogicalClock::new(),
            rng,
            outlier_buffer: Vec::new(),
            reservoir: Vec::new(),
            reservoir_seen: 0,
            drift,
            stats: SpotStats::default(),
            learned: false,
            pcs_sink: Vec::new(),
            batch_sinks: Vec::new(),
            batch_outcomes: Vec::new(),
        };
        spot.sync_manager_subspaces(false);
        Ok(spot)
    }

    /// The configuration in force.
    pub fn config(&self) -> &SpotConfig {
        &self.config
    }

    /// The current SST.
    pub fn sst(&self) -> &Sst {
        &self.sst
    }

    /// Running counters.
    pub fn stats(&self) -> &SpotStats {
        &self.stats
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// `true` once a learning stage has run.
    pub fn is_learned(&self) -> bool {
        self.learned
    }

    /// Running mean of the concept-drift novelty signal (the fraction of a
    /// point's 1-dim projected cells that are sparse) — an observability
    /// hook for dashboards and the drift experiments.
    pub fn drift_signal_mean(&self) -> f64 {
        self.drift.mean()
    }

    /// Memory held by the synopses.
    pub fn footprint(&self) -> SynopsisFootprint {
        let (base_cells, projected_cells) = self.manager.live_cells();
        SynopsisFootprint {
            base_cells,
            projected_cells,
            approx_bytes: self.manager.approx_bytes(),
        }
    }

    /// The synopses' lock-free footprint mirror (see [`LiveCounters`]):
    /// monitoring threads read live cell/byte counts from it without
    /// synchronizing with — or stalling — ingestion. `SharedSpot` serves
    /// its `footprint()` from this.
    pub fn live_counters(&self) -> Arc<LiveCounters> {
        self.manager.live_counters()
    }

    /// Overrides the worker count of the synopsis manager's persistent
    /// pool (`Some(0)` forces serial, `None` restores machine-sized
    /// defaults). Equivalence tests and deployments pinning thread budgets
    /// use this; results are bit-identical for every setting.
    #[cfg(feature = "parallel")]
    pub fn set_parallel_workers(&mut self, workers: Option<usize>) {
        self.manager.set_parallel_workers(workers);
    }

    /// Unsupervised learning stage (paper, Section II-C1): MOGA over the
    /// whole batch, lead clustering under shuffled orders for outlying
    /// degrees, MOGA over the top candidates — the results become CS.
    pub fn learn(&mut self, training: &[DataPoint]) -> Result<LearningReport> {
        self.learn_with_examples(training, &[])
    }

    /// Learning stage with optional supervised outlier exemplars: the
    /// exemplars' top sparse subspaces become OS (example-based detection).
    pub fn learn_with_examples(
        &mut self,
        training: &[DataPoint],
        outlier_examples: &[DataPoint],
    ) -> Result<LearningReport> {
        if training.is_empty() {
            return Err(SpotError::EmptyTrainingSet);
        }
        for p in training.iter().chain(outlier_examples) {
            if p.dims() != self.phi {
                return Err(SpotError::DimensionMismatch {
                    expected: self.phi,
                    got: p.dims(),
                });
            }
        }
        let learning = self.config.learning.clone();
        let evaluator = TrainingEvaluator::new(self.manager.grid().clone(), training.to_vec())?;
        let mut evaluations = 0usize;

        // (1) MOGA over the whole batch: globally sparse subspaces.
        let whole = {
            let mut problem = SparsityProblem::whole_batch(&evaluator, learning.max_cardinality);
            let out = spot_moga::run(&mut problem, &learning.moga)?;
            evaluations += out.evaluations;
            out.top_k(learning.moga_top_k)
        };

        // (2) Lead clustering under different data orders → outlying degree.
        let tau = match learning.leader_tau {
            Some(t) => t,
            None => estimate_tau(training, &mut self.rng),
        };
        let od = outlying_degrees(
            training,
            &OdConfig {
                tau,
                runs: learning.od_runs,
                alpha: learning.od_alpha,
                seed: self.config.seed ^ 0x0D15_EA5E,
            },
        )?;
        let k = ((training.len() as f64 * learning.top_fraction).ceil() as usize)
            .clamp(3.min(training.len()), training.len());
        let candidates = top_outlying_indices(&od, k);

        // (3) MOGA over the top outlying candidates → CS.
        let targeted = {
            let mut problem = SparsityProblem::for_targets(
                &evaluator,
                candidates.clone(),
                learning.max_cardinality,
            );
            let out = spot_moga::run(&mut problem, &learning.moga)?;
            evaluations += out.evaluations;
            out.top_k(learning.moga_top_k)
        };
        let cs_entries: Vec<ScoredSubspace> = whole
            .iter()
            .chain(targeted.iter())
            .map(|&(subspace, score)| ScoredSubspace { subspace, score })
            .collect();
        self.sst.evolve_cs(cs_entries);

        // (4) Supervised: "MOGA is applied on each of these outliers to
        // find their top sparse subspaces" (paper, II-C1) — one search per
        // exemplar, so every exemplar contributes its own outlying
        // subspaces to OS regardless of how the others score.
        let mut os_report = Vec::new();
        if !outlier_examples.is_empty() {
            let mut combined = training.to_vec();
            let first_exemplar = combined.len();
            combined.extend_from_slice(outlier_examples);
            let ex_evaluator = TrainingEvaluator::new(self.manager.grid().clone(), combined)?;
            let per_exemplar_k = learning.moga_top_k.div_ceil(2).clamp(1, 5);
            for (i, _) in outlier_examples.iter().enumerate() {
                let mut problem = SparsityProblem::for_targets(
                    &ex_evaluator,
                    vec![first_exemplar + i],
                    learning.max_cardinality,
                );
                let mut moga = learning.moga.clone();
                moga.seed = moga.seed.wrapping_add(i as u64);
                let out = spot_moga::run(&mut problem, &moga)?;
                evaluations += out.evaluations;
                for (s, score) in out.top_k(per_exemplar_k) {
                    if self.sst.add_os(s, score) {
                        os_report.push((s, score));
                    }
                }
            }
        }

        self.sync_manager_subspaces(false);

        // (5) Warm the streaming synopses with the training batch so
        // detection starts against a populated model.
        if learning.replay_training {
            for p in training {
                let now = self.clock.tick();
                self.manager.update(now, p)?;
                self.sample_reservoir(now, p);
            }
        }
        self.learned = true;
        Ok(LearningReport {
            training_points: training.len(),
            od_candidates: candidates.len(),
            cs: self.sst.cs().map(|e| (e.subspace, e.score)).collect(),
            os: os_report,
            moga_evaluations: evaluations,
        })
    }

    /// Detection stage for one arriving point: update the synapses and read
    /// back the PCS of the point's cell in every SST subspace *in the same
    /// pass* (no second projection or hash lookup), check the thresholds,
    /// run periodic maintenance (self-evolution, OS growth, drift response,
    /// pruning). On the steady state the synopsis work allocates nothing;
    /// see `spot_synopsis`'s crate docs for the key layout.
    pub fn process(&mut self, point: &DataPoint) -> Result<Verdict> {
        if point.dims() != self.phi {
            return Err(SpotError::DimensionMismatch {
                expected: self.phi,
                got: point.dims(),
            });
        }
        let now = self.clock.tick();
        // The sink is swapped out so `evaluate_point` can borrow self
        // mutably; its capacity survives the round-trip.
        let mut sink = std::mem::take(&mut self.pcs_sink);
        let outcome = match self.manager.update_and_query(now, point, &mut sink) {
            Ok(o) => o,
            Err(e) => {
                self.pcs_sink = sink;
                return Err(e);
            }
        };
        let verdict = self.evaluate_point(now, point, &outcome, &sink);
        self.pcs_sink = sink;
        Ok(verdict)
    }

    /// Batch detection: processes `points` as if fed one-by-one to
    /// [`Spot::process`], but ingests them in maintenance-bounded runs so
    /// the per-point synopsis work is a tight loop over pre-quantized
    /// coordinates (and, with the `parallel` feature, fans the
    /// subspace-disjoint store shards across the manager's persistent
    /// worker pool).
    ///
    /// Input validation is all-or-nothing: every point is checked for
    /// dimension mismatches and NaN values before anything is ingested.
    ///
    /// Semantics match the one-by-one path exactly, with one documented
    /// exception: a *drift-triggered* self-evolution that fires mid-run is
    /// applied at the end of that run (at most [`Spot::BATCH_RUN`] points
    /// late) rather than on the alarm's exact tick. Periodic evolution and
    /// pruning stay on their exact ticks — runs never span a maintenance
    /// boundary.
    pub fn process_batch(&mut self, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        self.batch_impl(points, None)
    }

    /// [`Spot::process_batch`] with an explicit executor for the synopsis
    /// shard phase — the entry `SharedSpot` uses to let producer threads
    /// blocked on the detector lock claim shards cooperatively. Verdicts
    /// and synopsis state are bit-identical for every executor.
    pub fn process_batch_with(
        &mut self,
        points: &[DataPoint],
        exec: &dyn StoreExecutor,
    ) -> Result<Vec<Verdict>> {
        self.batch_impl(points, Some(exec))
    }

    fn batch_impl(
        &mut self,
        points: &[DataPoint],
        exec: Option<&dyn StoreExecutor>,
    ) -> Result<Vec<Verdict>> {
        for p in points {
            if p.dims() != self.phi {
                return Err(SpotError::DimensionMismatch {
                    expected: self.phi,
                    got: p.dims(),
                });
            }
            for (d, &v) in p.values().iter().enumerate() {
                if v.is_nan() {
                    return Err(SpotError::NonFiniteValue { dim: d });
                }
            }
        }
        let mut verdicts = Vec::with_capacity(points.len());
        let mut rest = points;
        while !rest.is_empty() {
            let start = self.clock.now() + 1;
            let len = self.run_len(start, rest.len());
            let (run, tail) = rest.split_at(len);
            rest = tail;

            let mut sinks = std::mem::take(&mut self.batch_sinks);
            let mut outcomes = std::mem::take(&mut self.batch_outcomes);
            let res = match exec {
                Some(exec) => self.manager.update_and_query_batch_with(
                    start,
                    run,
                    &mut sinks,
                    &mut outcomes,
                    exec,
                ),
                None => self
                    .manager
                    .update_and_query_batch(start, run, &mut sinks, &mut outcomes),
            };
            if let Err(e) = res {
                self.batch_sinks = sinks;
                self.batch_outcomes = outcomes;
                return Err(e);
            }
            for (i, p) in run.iter().enumerate() {
                let now = self.clock.tick();
                debug_assert_eq!(now, start + i as u64);
                verdicts.push(self.evaluate_point(now, p, &outcomes[i], &sinks[i]));
            }
            self.batch_sinks = sinks;
            self.batch_outcomes = outcomes;
        }
        Ok(verdicts)
    }

    /// Maximum points per internal batch run (bounds how late a
    /// drift-triggered self-evolution can be applied).
    pub const BATCH_RUN: usize = 256;

    /// Length of the next batch run starting at `start`: capped at
    /// [`Spot::BATCH_RUN`] and never spanning a periodic-maintenance tick
    /// (the run *ends on* the maintenance tick, so maintenance runs at
    /// exactly the same point in the stream as under one-by-one
    /// processing).
    fn run_len(&self, start: u64, remaining: usize) -> usize {
        let mut len = remaining.min(Self::BATCH_RUN);
        let mut cap_at_period = |p: u64| {
            if p == 0 {
                return;
            }
            // First multiple of p at or after start, inclusive in the run.
            let next = start.div_ceil(p) * p;
            let span = (next - start + 1).min(len as u64) as usize;
            len = span.max(1);
        };
        if self.config.evolution.enabled {
            cap_at_period(self.config.evolution.period);
        }
        cap_at_period(self.config.prune_every);
        len
    }

    /// Thresholds, drift signal, maintenance — everything that happens to a
    /// point after its synopsis pass. `entries` is the per-subspace PCS
    /// list produced in that pass.
    fn evaluate_point(
        &mut self,
        now: u64,
        point: &DataPoint,
        outcome: &UpdateOutcome,
        entries: &[SubspacePcs],
    ) -> Verdict {
        let _ = outcome; // prior_base_count is an observability hook today
        self.stats.processed += 1;

        // Outlier-ness check in every SST subspace. The same sweep collects
        // the drift signal: the fraction of the point's monitored projected
        // cells that are sparse. (Full-space novelty is useless here — in
        // high dimensions nearly every base cell is empty, so that signal
        // saturates; low-dimensional projections stay dense under a stable
        // distribution and light up when it moves.)
        let thresholds = self.config.thresholds;
        let mut findings: Vec<SubspaceFinding> = Vec::new();
        let mut min_rd = f64::INFINITY;
        let mut monitored = 0u32;
        let mut monitored_fresh = 0u32;
        for e in entries {
            min_rd = min_rd.min(e.pcs.rd);
            // Freshness: the decayed occupancy of the cell counts the point
            // itself, so `< novelty_floor` means the cell held (almost)
            // nothing before this arrival. A stationary stream revisits its
            // cells; a drifting one keeps opening fresh ones. Only the
            // immutable FS stores feed the signal — CS/OS churn under
            // self-evolution and their freshly warmed stores would
            // contaminate it.
            if e.subspace.cardinality() <= self.config.fs_max_dimension {
                monitored += 1;
                if e.occupancy < self.config.drift.novelty_floor {
                    monitored_fresh += 1;
                }
            }
            let flagged =
                e.pcs.rd < thresholds.rd && thresholds.irsd.is_none_or(|t| e.pcs.irsd < t);
            if flagged {
                findings.push(SubspaceFinding {
                    subspace: e.subspace,
                    rd: e.pcs.rd,
                    irsd: e.pcs.irsd,
                });
            }
        }
        findings.sort_by(|a, b| a.rd.partial_cmp(&b.rd).expect("RD values are not NaN"));
        let outlier = !findings.is_empty();
        if outlier {
            self.stats.outliers += 1;
            self.push_outlier(now, point.clone());
        }
        self.sample_reservoir(now, point);

        // Concept drift on the projected-freshness signal.
        let mut drift_fired = false;
        if self.config.drift.enabled && monitored > 0 {
            let novel = monitored_fresh as f64 / monitored as f64;
            if self.drift.observe(novel) {
                drift_fired = true;
                self.stats.drift_events += 1;
                if self.config.evolution.enabled {
                    self.self_evolve(now);
                }
            }
        }

        // Periodic maintenance.
        if self.config.evolution.enabled && now.is_multiple_of(self.config.evolution.period) {
            self.self_evolve(now);
            self.grow_os(now);
        }
        if self.config.prune_every > 0 && now.is_multiple_of(self.config.prune_every) {
            self.stats.cells_pruned += self.manager.prune(now, self.config.prune_floor) as u64;
        }

        let score = if min_rd.is_finite() {
            1.0 / (1.0 + min_rd)
        } else {
            0.0
        };
        Verdict {
            tick: now,
            outlier,
            score,
            findings,
            drift: drift_fired,
        }
    }

    /// Convenience wrapper over [`Spot::process`] for stream records.
    pub fn process_record(&mut self, record: &StreamRecord) -> Result<Verdict> {
        self.process(&record.point)
    }

    /// Replaces the SST wholesale (snapshot restoration). Rebuilds lookup
    /// indices and reconciles the monitored stores.
    pub(crate) fn restore_sst(&mut self, mut sst: Sst, learned: bool) {
        sst.rebuild_index();
        self.sst = sst;
        self.learned = learned;
        self.sync_manager_subspaces(false);
    }

    /// Empties the CS component (SST-ablation studies: e.g. an "FS+OS"
    /// configuration). The monitored stores are reconciled immediately.
    pub fn clear_cs(&mut self) {
        self.sst.clear_cs();
        self.sync_manager_subspaces(false);
    }

    /// Empties the OS component (SST-ablation studies).
    pub fn clear_os(&mut self) {
        self.sst.clear_os();
        self.sync_manager_subspaces(false);
    }

    /// HOS-Miner-style query: the top sparse subspaces of an arbitrary
    /// point, judged against the reservoir sample of the recent stream.
    /// Requires enough recent data (≥ 8 points) to be meaningful.
    pub fn explain(&mut self, point: &DataPoint, top_k: usize) -> Result<Vec<(Subspace, f64)>> {
        if self.reservoir.len() < 8 {
            return Err(SpotError::NotLearned);
        }
        let mut pts: Vec<DataPoint> = self.reservoir.iter().map(|(_, p)| p.clone()).collect();
        let target = pts.len();
        pts.push(point.clone());
        let evaluator = TrainingEvaluator::new(self.manager.grid().clone(), pts)?;
        let mut problem = SparsityProblem::for_targets(
            &evaluator,
            vec![target],
            self.config.learning.max_cardinality,
        );
        let out = spot_moga::run(&mut problem, &self.online_moga_config())?;
        Ok(out.top_k(top_k))
    }

    /// CS self-evolution (paper, Section II-C2): crossover/mutate the top
    /// subspaces of the current CS, re-rank old and new together against
    /// the recent stream, keep the best.
    fn self_evolve(&mut self, _now: u64) {
        let entries = self.sst.cs_entries();
        if entries.is_empty() || self.reservoir.len() < 8 {
            return;
        }
        self.stats.evolutions += 1;
        // Generate offspring of the current CS.
        let parents: Vec<Subspace> = entries.iter().map(|e| e.subspace).collect();
        let max_card = self.config.learning.max_cardinality.unwrap_or(self.phi);
        let mut offspring: Vec<Subspace> = Vec::with_capacity(self.config.cs_capacity);
        for _ in 0..self.config.cs_capacity {
            let a = parents[self.rng.gen_range(0..parents.len())];
            let b = parents[self.rng.gen_range(0..parents.len())];
            let child = genetic::uniform_crossover(a, b, self.phi, &mut self.rng);
            let child = genetic::mutate(child, self.phi, 0.1, &mut self.rng);
            offspring.push(genetic::repair_with_max_card(
                child.mask(),
                self.phi,
                max_card,
                &mut self.rng,
            ));
        }
        // Score everyone against the recent stream: how sparse do the
        // buffered outliers (or, lacking any, all recent points) look?
        let Some((evaluator, targets)) = self.reservoir_evaluator() else {
            return;
        };
        let mut candidates: Vec<ScoredSubspace> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for s in entries.iter().map(|e| e.subspace).chain(offspring) {
            if !seen.insert(s.mask()) {
                continue;
            }
            let (rd, irsd) = evaluator.sparsity(s, targets.as_deref());
            let dim = 0.25 * s.cardinality() as f64 / self.phi as f64;
            candidates.push(ScoredSubspace {
                subspace: s,
                score: rd + irsd + dim,
            });
        }
        self.sst.evolve_cs(candidates);
        self.sync_manager_subspaces(true);
    }

    /// OS growth (paper, Section II-C2): MOGA over the buffered detected
    /// outliers; their top sparse subspaces join OS so similar outliers are
    /// caught directly later.
    fn grow_os(&mut self, _now: u64) {
        if self.outlier_buffer.len() < self.config.evolution.min_outliers_for_os
            || self.reservoir.len() < 8
        {
            return;
        }
        let Some((evaluator, _)) = self.reservoir_evaluator() else {
            return;
        };
        // Targets are the buffered outliers, which sit at the tail of the
        // combined evaluator batch built by `reservoir_evaluator`.
        let n_reservoir = self.reservoir.len();
        let targets: Vec<usize> = (n_reservoir..n_reservoir + self.outlier_buffer.len()).collect();
        let mut problem =
            SparsityProblem::for_targets(&evaluator, targets, self.config.learning.max_cardinality);
        let Ok(out) = spot_moga::run(&mut problem, &self.online_moga_config()) else {
            return;
        };
        let mut added = 0;
        for (s, score) in out.top_k(self.config.learning.moga_top_k) {
            if self.sst.add_os(s, score) {
                added += 1;
            }
        }
        self.stats.os_added += added;
        self.outlier_buffer.clear();
        if added > 0 {
            self.sync_manager_subspaces(true);
        }
    }

    /// A lighter MOGA configuration for online searches (time criticality
    /// of the detection stage).
    fn online_moga_config(&self) -> MogaConfig {
        let base = &self.config.learning.moga;
        MogaConfig {
            population: base.population.clamp(8, 24),
            generations: base.generations.clamp(4, 12),
            crossover_rate: base.crossover_rate,
            mutation_rate: base.mutation_rate,
            seed: self.config.seed ^ self.stats.processed,
        }
    }

    /// Evaluator over reservoir ∪ outlier buffer; targets = buffer indices
    /// (None when the buffer is empty → whole-batch objectives).
    fn reservoir_evaluator(&self) -> Option<(TrainingEvaluator, Option<Vec<usize>>)> {
        let mut pts: Vec<DataPoint> = self.reservoir.iter().map(|(_, p)| p.clone()).collect();
        let n_reservoir = pts.len();
        pts.extend(self.outlier_buffer.iter().map(|(_, p)| p.clone()));
        let targets = if self.outlier_buffer.is_empty() {
            None
        } else {
            Some((n_reservoir..pts.len()).collect())
        };
        TrainingEvaluator::new(self.manager.grid().clone(), pts)
            .ok()
            .map(|ev| (ev, targets))
    }

    /// Reconciles the manager's projected stores with the current SST;
    /// `warm` replays the reservoir into stores created by this call.
    fn sync_manager_subspaces(&mut self, warm: bool) {
        let desired: FxHashSet<u64> = self.sst.iter_all().map(|s| s.mask()).collect();
        let current: Vec<Subspace> = self.manager.subspaces().collect();
        for s in current {
            if !desired.contains(&s.mask()) {
                self.manager.remove_subspace(&s);
            }
        }
        let mut added: Vec<Subspace> = Vec::new();
        self.active = self.sst.iter_all().collect();
        for s in &self.active {
            if self.manager.add_subspace(*s) {
                added.push(*s);
            }
        }
        if warm && !added.is_empty() && !self.reservoir.is_empty() {
            let mut replay = self.reservoir.clone();
            replay.sort_by_key(|(tick, _)| *tick);
            for s in added {
                // Replay failures only leave a colder store; detection
                // continues either way.
                let _ = self.manager.replay_into(&s, &replay);
            }
        }
    }

    fn push_outlier(&mut self, now: u64, p: DataPoint) {
        if self.outlier_buffer.len() >= self.config.evolution.outlier_buffer {
            self.outlier_buffer.remove(0);
        }
        self.outlier_buffer.push((now, p));
    }

    /// Algorithm-R reservoir sampling of the recent stream.
    fn sample_reservoir(&mut self, now: u64, p: &DataPoint) {
        self.reservoir_seen += 1;
        let cap = self.config.evolution.reservoir;
        if self.reservoir.len() < cap {
            self.reservoir.push((now, p.clone()));
        } else {
            let j = self.rng.gen_range(0..self.reservoir_seen);
            if (j as usize) < cap {
                self.reservoir[j as usize] = (now, p.clone());
            }
        }
    }
}

/// τ estimate for leader clustering: half the mean pairwise distance over a
/// bounded random sample of the batch.
fn estimate_tau(points: &[DataPoint], rng: &mut StdRng) -> f64 {
    const PAIRS: usize = 256;
    if points.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for _ in 0..PAIRS {
        let i = rng.gen_range(0..points.len());
        let j = rng.gen_range(0..points.len());
        if i == j {
            continue;
        }
        sum += points[i].distance(&points[j]);
        n += 1;
    }
    if n == 0 || sum <= 0.0 {
        1.0
    } else {
        (sum / n as f64) * 0.5
    }
}

impl StreamDetector for Spot {
    fn learn(&mut self, training: &[DataPoint]) -> Result<()> {
        Spot::learn(self, training).map(|_| ())
    }

    fn process(&mut self, point: &DataPoint) -> Detection {
        match Spot::process(self, point) {
            Ok(v) => Detection {
                outlier: v.outlier,
                score: v.score,
            },
            Err(_) => Detection::outlier(f64::INFINITY),
        }
    }

    fn name(&self) -> &str {
        "spot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvolutionConfig, SpotBuilder};
    use spot_types::DomainBounds;

    /// Clustered 6-dim batch: three tight clusters in dims {0,1}, broad in
    /// the rest.
    fn training(n: usize) -> Vec<DataPoint> {
        let centers = [[0.2, 0.2], [0.5, 0.7], [0.8, 0.3]];
        (0..n)
            .map(|i| {
                let c = centers[i % 3];
                let jitter = |k: usize| ((i * (k + 7)) % 13) as f64 / 13.0 * 0.04;
                let mut v = vec![0.0; 6];
                v[0] = c[0] + jitter(0);
                v[1] = c[1] + jitter(1);
                for (d, item) in v.iter_mut().enumerate().skip(2) {
                    *item = 0.3 + ((i * (d + 3)) % 17) as f64 / 17.0 * 0.4;
                }
                DataPoint::new(v)
            })
            .collect()
    }

    fn spot() -> Spot {
        SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn new_enumerates_fs_and_monitors_it() {
        let s = spot();
        let (fs, cs, os) = s.sst().sizes();
        assert_eq!(fs, 6 + 15);
        assert_eq!(cs, 0);
        assert_eq!(os, 0);
        assert_eq!(s.active.len(), fs);
    }

    #[test]
    fn learn_builds_cs_and_warms_synopses() {
        let mut s = spot();
        let report = s.learn(&training(300)).unwrap();
        assert_eq!(report.training_points, 300);
        assert!(report.od_candidates >= 3);
        assert!(!report.cs.is_empty(), "CS must be populated");
        assert!(report.moga_evaluations > 0);
        assert!(s.is_learned());
        // Replay warmed the synopses.
        assert!(s.footprint().base_cells > 0);
        assert_eq!(s.now(), 300);
    }

    #[test]
    fn learn_rejects_empty_and_mismatched() {
        let mut s = spot();
        assert!(matches!(s.learn(&[]), Err(SpotError::EmptyTrainingSet)));
        assert!(s.learn(&[DataPoint::new(vec![0.5; 3])]).is_err());
    }

    #[test]
    fn detects_planted_projected_outlier() {
        let mut s = spot();
        s.learn(&training(600)).unwrap();
        // A point normal in dims 2..6 but far from all clusters in {0,1}.
        let mut v = vec![0.5; 6];
        v[0] = 0.02;
        v[1] = 0.98;
        let verdict = s.process(&DataPoint::new(v)).unwrap();
        assert!(verdict.outlier);
        assert!(!verdict.findings.is_empty());
        // Findings are sorted sparsest-first.
        for w in verdict.findings.windows(2) {
            assert!(w[0].rd <= w[1].rd);
        }
        assert!(verdict.score > 0.5);
    }

    #[test]
    fn dense_point_is_not_flagged() {
        let mut s = spot();
        let train = training(600);
        s.learn(&train).unwrap();
        // Process a stretch of normal points; the vast majority must pass.
        let mut flagged = 0;
        for p in training(200) {
            if s.process(&p).unwrap().outlier {
                flagged += 1;
            }
        }
        assert!(flagged < 40, "flagged {flagged}/200 normal points");
    }

    #[test]
    fn process_rejects_wrong_dims() {
        let mut s = spot();
        assert!(s.process(&DataPoint::new(vec![0.5; 2])).is_err());
    }

    #[test]
    fn outliers_fill_buffer_and_grow_os() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .evolution(EvolutionConfig {
                enabled: true,
                period: 100,
                outlier_buffer: 32,
                reservoir: 128,
                min_outliers_for_os: 3,
            })
            .build()
            .unwrap();
        s.learn(&training(400)).unwrap();
        // Interleave normal traffic with varied projected outliers (each in
        // a fresh sparse region, so they do not accumulate into a dense
        // micro-cluster of their own).
        let normals = training(400);
        for (i, p) in normals.iter().enumerate() {
            s.process(p).unwrap();
            if i % 10 == 0 {
                let mut v = p.values().to_vec();
                let d = 2 + (i / 10) % 4;
                v[d] = if (i / 10) % 2 == 0 { 0.98 } else { 0.015 };
                v[(d + 1) % 6] = 0.96 - (i / 10) as f64 * 0.013;
                s.process(&DataPoint::new(v)).unwrap();
            }
        }
        assert!(s.stats().os_added > 0, "OS never grew: {:?}", s.stats());
        assert!(s.sst().sizes().2 > 0);
    }

    #[test]
    fn self_evolution_runs_periodically() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            .evolution(EvolutionConfig {
                period: 50,
                ..Default::default()
            })
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        for p in training(200) {
            s.process(&p).unwrap();
        }
        assert!(s.stats().evolutions > 0);
        // CS stays within capacity.
        assert!(s.sst().sizes().1 <= s.config().cs_capacity);
    }

    #[test]
    fn pruning_counter_advances_on_long_streams() {
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(5)
            // Short memory (omega = 200 ticks) so stale cells decay below
            // the prune floor within the test stream.
            .time_model(spot_stream::TimeModel::new(200, 0.01).unwrap())
            .pruning(200, 1e-3)
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        // Shifted stream: old cells decay away and must be evicted.
        for (i, p) in training(2500).iter().enumerate() {
            let mut v = p.values().to_vec();
            v[5] = (i % 100) as f64 / 100.0;
            s.process(&DataPoint::new(v)).unwrap();
        }
        assert!(s.stats().cells_pruned > 0);
    }

    #[test]
    fn nan_points_rejected_and_detector_stays_usable() {
        let mut s = spot();
        s.learn(&training(200)).unwrap();
        let mut bad = vec![0.5; 6];
        bad[3] = f64::NAN;
        let before = s.stats().processed;
        let err = s.process(&DataPoint::new(bad.clone())).unwrap_err();
        assert!(matches!(err, SpotError::NonFiniteValue { dim: 3 }));
        assert_eq!(s.stats().processed, before, "rejected point must not count");
        // Batch path validates up front: nothing is ingested.
        let batch = vec![DataPoint::new(vec![0.5; 6]), DataPoint::new(bad)];
        assert!(s.process_batch(&batch).is_err());
        assert_eq!(s.stats().processed, before);
        // Infinities are clamped, not rejected.
        assert!(s.process(&DataPoint::new(vec![f64::INFINITY; 6])).is_ok());
        assert!(s.process(&DataPoint::new(vec![0.5; 6])).is_ok());
    }

    #[test]
    fn process_batch_matches_one_by_one() {
        // Periodic evolution + pruning land inside the stream so the batch
        // path has to split runs at the maintenance boundaries; drift is
        // left at its default (alarms never fire on these short streams).
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(6))
                .seed(11)
                .evolution(EvolutionConfig {
                    period: 150,
                    ..Default::default()
                })
                .pruning(100, 1e-4)
                .build()
                .unwrap();
            s.learn(&training(300)).unwrap();
            s
        };
        let mut stream = training(400);
        for (i, p) in stream.iter_mut().enumerate() {
            if i % 17 == 0 {
                let mut v = p.values().to_vec();
                v[2 + i % 4] = 0.97;
                *p = DataPoint::new(v);
            }
        }
        let mut serial = build();
        let serial_verdicts: Vec<Verdict> =
            stream.iter().map(|p| serial.process(p).unwrap()).collect();
        let mut batched = build();
        let batch_verdicts = batched.process_batch(&stream).unwrap();
        assert_eq!(serial_verdicts.len(), batch_verdicts.len());
        for (a, b) in serial_verdicts.iter().zip(&batch_verdicts) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.score, b.score, "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
        }
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.footprint(), batched.footprint());
    }

    #[test]
    fn process_batch_in_chunks_matches_single_batch() {
        let mut a = spot();
        a.learn(&training(300)).unwrap();
        let mut b = spot();
        b.learn(&training(300)).unwrap();
        let stream = training(200);
        let whole = a.process_batch(&stream).unwrap();
        let mut chunked = Vec::new();
        for chunk in stream.chunks(33) {
            chunked.extend(b.process_batch(chunk).unwrap());
        }
        assert_eq!(whole.len(), chunked.len());
        for (x, y) in whole.iter().zip(&chunked) {
            assert_eq!((x.tick, x.outlier), (y.tick, y.outlier));
        }
    }

    #[test]
    fn long_uniform_stream_footprint_plateaus() {
        // Memory guard: under a stationary stream with pruning enabled the
        // live-cell population must stop growing once the space's support
        // is covered — the synopsis may not grow with stream length.
        let mut s = SpotBuilder::new(DomainBounds::unit(6))
            .seed(3)
            .time_model(spot_stream::TimeModel::new(500, 0.01).unwrap())
            .pruning(250, 1e-3)
            .build()
            .unwrap();
        s.learn(&training(300)).unwrap();
        let stream: Vec<DataPoint> = (0..4000)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 89) as f64 / 89.0,
                    ((i * 7) % 97) as f64 / 97.0,
                    ((i * 13) % 83) as f64 / 83.0,
                    ((i * 3) % 79) as f64 / 79.0,
                    ((i * 11) % 73) as f64 / 73.0,
                    ((i * 5) % 71) as f64 / 71.0,
                ])
            })
            .collect();
        s.process_batch(&stream[..2000]).unwrap();
        let mid = s.footprint().approx_bytes;
        s.process_batch(&stream[2000..]).unwrap();
        let end = s.footprint().approx_bytes;
        assert!(s.stats().cells_pruned > 0, "pruning never ran");
        // Allow slack for hash-map capacity growth, but the footprint must
        // not keep scaling with the stream.
        assert!(
            end <= mid * 2,
            "footprint kept growing: {mid} -> {end} bytes"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut s = spot();
            s.learn(&training(300)).unwrap();
            let mut verdicts = Vec::new();
            for p in training(100) {
                verdicts.push(s.process(&p).unwrap().outlier);
            }
            verdicts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn explain_returns_subspaces_for_queried_point() {
        let mut s = spot();
        s.learn(&training(300)).unwrap();
        let mut v = vec![0.5; 6];
        v[0] = 0.02;
        v[1] = 0.98;
        let explained = s.explain(&DataPoint::new(v), 3).unwrap();
        assert!(!explained.is_empty());
        assert!(explained.len() <= 3);
        // Scores ascend (best = sparsest first).
        for w in explained.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn explain_requires_recent_data() {
        let mut s = spot();
        assert_eq!(
            s.explain(&DataPoint::new(vec![0.5; 6]), 3),
            Err(SpotError::NotLearned)
        );
    }

    #[test]
    fn stream_detector_trait_roundtrip() {
        let mut s = spot();
        StreamDetector::learn(&mut s, &training(200)).unwrap();
        let d = StreamDetector::process(&mut s, &DataPoint::new(vec![0.5; 6]));
        assert!(d.score >= 0.0);
        assert_eq!(StreamDetector::name(&s), "spot");
        // Dimension mismatch maps to an infinite-score outlier.
        let d = StreamDetector::process(&mut s, &DataPoint::new(vec![0.5; 2]));
        assert!(d.outlier && d.score.is_infinite());
    }

    #[test]
    fn estimate_tau_is_positive_and_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        let near: Vec<DataPoint> = (0..50)
            .map(|i| DataPoint::new(vec![i as f64 * 1e-4]))
            .collect();
        let far: Vec<DataPoint> = (0..50).map(|i| DataPoint::new(vec![i as f64])).collect();
        let t_near = estimate_tau(&near, &mut rng);
        let t_far = estimate_tau(&far, &mut rng);
        assert!(t_near > 0.0);
        assert!(t_far > t_near);
        assert_eq!(estimate_tau(&near[..1], &mut rng), 1.0);
    }
}
