//! # SPOT — Stream Projected Outlier deTector
//!
//! A from-scratch reproduction of *"SPOT: A System for Detecting Projected
//! Outliers From High-dimensional Data Streams"* (Zhang, Gao, Wang — ICDE
//! 2008). SPOT labels each point of an unbounded, high-dimensional data
//! stream as a regular point or a **projected outlier** — a point that is
//! abnormal inside some low-dimensional subspace even though it looks
//! ordinary in the full space — and reports the outlying subspaces.
//!
//! ## Architecture (paper, Figure 1)
//!
//! * **Time model** — the (ω, ε) window model: decaying summaries
//!   approximate a size-ω sliding window with factor ε, without buffering
//!   points or snapshotting synopses (`spot-stream`).
//! * **Data synapses** — Base Cell Summaries and Projected Cell Summaries
//!   (RD, IRSD) over an equi-width hypercube grid, incrementally maintained
//!   (`spot-synopsis`).
//! * **Learning stage** — builds the Sparse Subspace Template (SST):
//!   FS (exact low-dimensional lattice slice) ∪ CS (MOGA over
//!   clustering-derived outlier candidates) ∪ OS (MOGA over outlier
//!   exemplars). Unsupervised and/or supervised ([`Spot::learn`],
//!   [`Spot::learn_with_examples`]).
//! * **Detection stage** — per point: update synapses, threshold the PCS of
//!   the point's cell in every SST subspace, report outlying subspaces
//!   ([`Spot::process`] → [`Verdict`]).
//! * **Online adaptation** — CS self-evolution, OS growth from detected
//!   outliers, and Page–Hinkley concept-drift response.
//!
//! ## Quickstart
//!
//! ```
//! use spot::SpotBuilder;
//! use spot_types::{DataPoint, DomainBounds};
//!
//! let mut detector = SpotBuilder::new(DomainBounds::unit(8))
//!     .fs_max_dimension(2)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//!
//! // Offline learning over a historical batch…
//! let train: Vec<DataPoint> =
//!     (0..200).map(|i| DataPoint::new(vec![0.5 + (i % 5) as f64 * 0.02; 8])).collect();
//! detector.learn(&train).unwrap();
//!
//! // …then one-pass detection.
//! let verdict = detector.process(&DataPoint::new(vec![0.51; 8])).unwrap();
//! println!("outlier={} score={:.3}", verdict.outlier, verdict.score);
//! for finding in &verdict.findings {
//!     println!("  outlying in {} (rd={:.4})", finding.subspace, finding.rd);
//! }
//! ```

pub mod concurrent;
pub mod config;
pub mod detector;
pub mod drift;
pub mod evaluator;
pub mod snapshot;
pub mod sst;
pub mod verdict;

pub use concurrent::SharedSpot;
pub use config::{
    DriftConfig, EvolutionConfig, LearningConfig, SpotBuilder, SpotConfig, Thresholds, TuningConfig,
};
pub use detector::{CaptureMark, DeltaCapture, Spot, SynopsisFootprint};
pub use drift::PageHinkley;
pub use evaluator::{SparsityProblem, TrainingEvaluator};
pub use snapshot::{
    restore_from_bytes, restore_from_json, SpotCheckpoint, SpotSnapshot, CHECKPOINT_BINARY_VERSION,
    CHECKPOINT_VERSION, SNAPSHOT_VERSION,
};
pub use spot_synopsis::ExecutorHandle;
pub use sst::{Sst, SstComponent};
pub use verdict::{EvalPlan, LearningReport, SpotStats, SubspaceFinding, Verdict};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use spot_moga as moga;
pub use spot_stream as stream;
pub use spot_subspace as subspace;
pub use spot_synopsis as synopsis;
pub use spot_types as types;
