//! Batch sparsity evaluation — the learning stage's objective functions.
//!
//! During offline learning (and during online OS growth, against the
//! reservoir sample) SPOT must answer: *how sparse do some target points
//! look in an arbitrary candidate subspace `s`?* The streaming synopses
//! cannot answer that — they only cover the subspaces already in SST — so
//! the learning stage materializes the training batch once
//! ([`TrainingEvaluator`] pre-quantizes every point to its base-cell
//! coordinates) and then evaluates any subspace in O(n·|s|) by grouping the
//! projected coordinates on the fly.
//!
//! [`SparsityProblem`] packages that evaluation as the MOGA's objective
//! vector: mean normalized RD and mean normalized IRSD of the target
//! points' cells (both minimized), plus a small dimensionality penalty that
//! steers the search toward concise outlying subspaces.

use spot_moga::SubspaceProblem;
use spot_subspace::Subspace;
use spot_synopsis::{CellKey, Grid};
use spot_types::{DataPoint, FxHashMap, Result, SpotError};
use std::borrow::Cow;

/// IRSD values are clamped to this cap before normalization so a single
/// zero-variance micro-cluster cannot blow up a mean objective.
pub const IRSD_CAP: f64 = 10.0;

/// A quantized training batch that can score any subspace.
///
/// The batch is held as a [`Cow`]: the offline learning stage borrows the
/// caller's training slice (no clone of the batch is ever made), while
/// online callers that assemble an ad-hoc batch (reservoir ∪ outliers,
/// `explain` probes) pass an owned `Vec`.
#[derive(Debug, Clone)]
pub struct TrainingEvaluator<'a> {
    grid: Grid,
    points: Cow<'a, [DataPoint]>,
    /// Base-cell coordinates per point, precomputed once.
    coords: Vec<Vec<u16>>,
}

impl<'a> TrainingEvaluator<'a> {
    /// Quantizes `points` over `grid` — borrowed (`&[DataPoint]`) or owned
    /// (`Vec<DataPoint>`). Fails on dimension mismatches or an empty batch.
    pub fn new(grid: Grid, points: impl Into<Cow<'a, [DataPoint]>>) -> Result<Self> {
        let points = points.into();
        if points.is_empty() {
            return Err(SpotError::EmptyTrainingSet);
        }
        let coords = points
            .iter()
            .map(|p| grid.base_coords(p))
            .collect::<Result<Vec<_>>>()?;
        Ok(TrainingEvaluator {
            grid,
            points,
            coords,
        })
    }

    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the batch is empty (never after `new`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The batch points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// Mean `(rd, irsd)` of the cells containing the `targets` (indices
    /// into the batch; `None` = all points) in subspace `s`. RD is
    /// normalized as `rd/(1+rd)` into `[0,1)`; IRSD is clamped at
    /// [`IRSD_CAP`] and scaled into `[0,1]`.
    pub fn sparsity(&self, s: Subspace, targets: Option<&[usize]>) -> (f64, f64) {
        // Group the batch into projected cells, SoA-style: one flat
        // moments buffer (LS then SS per cell) instead of two Vecs per
        // cell, and the slot of every point's own cell memoized during
        // the grouping pass so scoring needs no second key projection or
        // hash lookup. This runs on the online hot path (CS
        // self-evolution scores ~2x cs_capacity candidates per
        // maintenance tick), and the per-cell accumulation order is
        // unchanged, so every float result is bit-identical to the naive
        // grouping.
        let card = s.cardinality();
        let stride = 2 * card;
        let mut index: FxHashMap<CellKey, u32> = FxHashMap::default();
        let mut counts: Vec<f64> = Vec::new();
        let mut moments: Vec<f64> = Vec::new();
        let mut slot_of: Vec<u32> = Vec::with_capacity(self.points.len());
        for (p, base) in self.points.iter().zip(self.coords.iter()) {
            let key = self.grid.project_key(base, &s);
            let slot = *index.entry(key).or_insert_with(|| {
                counts.push(0.0);
                moments.extend(std::iter::repeat_n(0.0, stride));
                (counts.len() - 1) as u32
            });
            slot_of.push(slot);
            let slot = slot as usize;
            counts[slot] += 1.0;
            let (ls, ss) = moments[slot * stride..(slot + 1) * stride].split_at_mut(card);
            for (i, d) in s.dims().enumerate() {
                let v = p.value(d);
                ls[i] += v;
                ss[i] += v * v;
            }
        }
        let n = self.points.len() as f64;
        let cell_count = self.grid.cell_count_in(&s);
        let uniform_sigma = self.grid.uniform_sigma_in(&s);
        let score_one = |idx: usize| -> (f64, f64) {
            let slot = slot_of[idx] as usize;
            let count = counts[slot];
            let rd = count * cell_count / n;
            let irsd = if count < 2.0 {
                0.0
            } else {
                let (ls, ss) = moments[slot * stride..(slot + 1) * stride].split_at(card);
                let mut var = 0.0;
                for i in 0..card {
                    let m = ls[i] / count;
                    var += (ss[i] / count - m * m).max(0.0);
                }
                let sigma = var.sqrt();
                if sigma > f64::EPSILON {
                    (uniform_sigma / sigma).min(IRSD_CAP)
                } else {
                    IRSD_CAP
                }
            };
            (rd / (1.0 + rd), irsd / IRSD_CAP)
        };
        let mut rd_sum = 0.0;
        let mut irsd_sum = 0.0;
        let mut count = 0usize;
        match targets {
            Some(idx) => {
                for &i in idx {
                    let (r, s_) = score_one(i);
                    rd_sum += r;
                    irsd_sum += s_;
                    count += 1;
                }
            }
            None => {
                for i in 0..self.points.len() {
                    let (r, s_) = score_one(i);
                    rd_sum += r;
                    irsd_sum += s_;
                    count += 1;
                }
            }
        }
        if count == 0 {
            return (1.0, 1.0); // nothing to score: maximally un-sparse
        }
        (rd_sum / count as f64, irsd_sum / count as f64)
    }
}

/// MOGA problem: minimize the mean normalized RD and IRSD of the target
/// points plus a dimensionality penalty.
pub struct SparsityProblem<'a> {
    evaluator: &'a TrainingEvaluator<'a>,
    targets: Option<Vec<usize>>,
    max_cardinality: Option<usize>,
    /// Weight of the `|s|/ϕ` objective (0 disables it; the objective vector
    /// keeps three entries either way for a stable MOGA setup).
    pub dim_penalty: f64,
}

impl<'a> SparsityProblem<'a> {
    /// Problem over all batch points.
    pub fn whole_batch(
        evaluator: &'a TrainingEvaluator<'a>,
        max_cardinality: Option<usize>,
    ) -> Self {
        SparsityProblem {
            evaluator,
            targets: None,
            max_cardinality,
            dim_penalty: 0.25,
        }
    }

    /// Problem over a target subset (e.g. the top outlying-degree points or
    /// one outlier exemplar).
    pub fn for_targets(
        evaluator: &'a TrainingEvaluator<'a>,
        targets: Vec<usize>,
        max_cardinality: Option<usize>,
    ) -> Self {
        SparsityProblem {
            evaluator,
            targets: Some(targets),
            max_cardinality,
            dim_penalty: 0.25,
        }
    }
}

impl SubspaceProblem for SparsityProblem<'_> {
    fn phi(&self) -> usize {
        self.evaluator.grid().dims()
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, s: Subspace) -> Vec<f64> {
        let (rd, irsd) = self.evaluator.sparsity(s, self.targets.as_deref());
        let dim = self.dim_penalty * s.cardinality() as f64 / self.phi() as f64;
        vec![rd, irsd, dim]
    }

    fn max_cardinality(&self) -> Option<usize> {
        self.max_cardinality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    /// 2-dim batch: a tight cluster in dim 0 at 0.2 and a lone point at
    /// 0.9; dim 1 is uniform for everyone.
    fn batch() -> TrainingEvaluator<'static> {
        let grid = Grid::new(DomainBounds::unit(2), 10).unwrap();
        let mut pts: Vec<DataPoint> = (0..99)
            .map(|i| DataPoint::new(vec![0.2 + (i % 10) as f64 * 0.005, i as f64 / 99.0]))
            .collect();
        pts.push(DataPoint::new(vec![0.9, 0.5])); // index 99: the outlier
        TrainingEvaluator::new(grid, pts).unwrap()
    }

    #[test]
    fn outlier_target_is_sparse_in_its_dim() {
        let ev = batch();
        let s0 = Subspace::from_dims([0]).unwrap();
        let (rd_outlier, irsd_outlier) = ev.sparsity(s0, Some(&[99]));
        let (rd_cluster, _) = ev.sparsity(s0, Some(&[0]));
        assert!(rd_outlier < rd_cluster, "{rd_outlier} vs {rd_cluster}");
        assert_eq!(irsd_outlier, 0.0, "singleton cell reads maximally sparse");
    }

    #[test]
    fn uniform_dim_is_not_sparse_for_anyone() {
        let ev = batch();
        let s1 = Subspace::from_dims([1]).unwrap();
        let (rd, _) = ev.sparsity(s1, Some(&[99]));
        // In the uniform dim every cell holds ~10 of 100 points → rd ≈ 1,
        // normalized ≈ 0.5.
        assert!(rd > 0.4, "rd={rd}");
    }

    #[test]
    fn whole_batch_mean_is_bounded() {
        let ev = batch();
        for mask in 1u64..4 {
            let s = Subspace::from_mask(mask).unwrap();
            let (rd, irsd) = ev.sparsity(s, None);
            assert!((0.0..=1.0).contains(&rd));
            assert!((0.0..=1.0).contains(&irsd));
        }
    }

    #[test]
    fn empty_batch_rejected() {
        let grid = Grid::new(DomainBounds::unit(2), 10).unwrap();
        assert!(TrainingEvaluator::new(grid, vec![]).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let grid = Grid::new(DomainBounds::unit(2), 10).unwrap();
        let pts = vec![DataPoint::new(vec![0.5])];
        assert!(TrainingEvaluator::new(grid, pts).is_err());
    }

    #[test]
    fn moga_on_sparsity_problem_finds_the_outlying_dim() {
        let ev = batch();
        let mut problem = SparsityProblem::for_targets(&ev, vec![99], Some(2));
        let out = spot_moga::run(
            &mut problem,
            &spot_moga::MogaConfig {
                population: 16,
                generations: 15,
                ..Default::default()
            },
        )
        .unwrap();
        // Dim 0 (alone or with dim 1) must appear among the top subspaces;
        // dim 0 alone is where the target is sparsest.
        let top: Vec<Subspace> = out.top_k(3).into_iter().map(|(s, _)| s).collect();
        assert!(
            top.iter().any(|s| s.contains_dim(0)),
            "top subspaces {top:?} miss dim 0"
        );
    }

    #[test]
    fn problem_reports_three_objectives() {
        let ev = batch();
        let mut p = SparsityProblem::whole_batch(&ev, None);
        assert_eq!(p.num_objectives(), 3);
        let v = p.evaluate(Subspace::from_dims([0, 1]).unwrap());
        assert_eq!(v.len(), 3);
        assert!(v[2] > 0.0); // dimension penalty active by default
    }
}
