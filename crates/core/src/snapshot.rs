//! Detector state persistence: template snapshots (v1) and full
//! warm-restart checkpoints (v2).
//!
//! Two formats, one loader:
//!
//! * **v1 — [`SpotSnapshot`]**: configuration + learned SST only. A
//!   detector restored from it starts with *cold synopses* and re-warms
//!   from the live stream.
//! * **v2 — [`SpotCheckpoint`]**: the complete runtime state — SoA store
//!   columns and packed cell keys, the global decayed weight, drift-test
//!   state, the reservoir and outlier retention, counters, RNG state and
//!   the stream clock — in a compact column-oriented encoding (floats as
//!   IEEE-754 bit patterns; see `spot_types::persist`). A detector
//!   restored from a v2 checkpoint produces **bit-identical verdicts and
//!   stats** to one that never restarted. Each layer serializes itself
//!   through the [`spot_types::DurableState`] capture/restore trait; the
//!   checkpoint merely composes the layers.
//!
//! [`restore_from_json`] dispatches on the `version` field and rejects
//! unknown versions with a typed error
//! ([`SpotError::UnsupportedSnapshotVersion`]) instead of a deserialize
//! panic. See
//! `docs/persistence.md` for the format layout, the versioning policy and
//! the non-blocking checkpoint protocol of `SharedSpot::checkpoint`.
//!
//! # When is a cold (v1) restore good enough?
//!
//! Under the (ω, ε) time model, pre-restart synopsis mass decays by
//! `δ^t = ε^{t/ω}`: only after a **full window of ω ticks** does the lost
//! state's influence drop to the ε approximation floor. A cold restore is
//! therefore operationally equivalent to a warm one only when ω is small
//! relative to the tolerable re-warm budget — for the default ω = 6000
//! that is thousands of points during which verdicts are degraded (empty
//! cells read as maximally sparse, so the false-alarm rate spikes until
//! the grid re-populates). And decay never restores the *non-decaying*
//! state a v1 snapshot drops: the Page–Hinkley statistics, the reservoir
//! sample that scores self-evolution, and the outlier buffer all influence
//! maintenance decisions long after ω ticks. Long-running deployments
//! should checkpoint with v2; v1 remains the right tool for shipping a
//! learned template to a fresh deployment site.

use crate::config::SpotConfig;
use crate::detector::Spot;
use crate::sst::Sst;
use serde::{DeError, Deserialize, Serialize, Value};
use spot_synopsis::{SerialExecutor, StoreExecutor};
use spot_types::persist::binary;
use spot_types::{Result, SpotError, StateReader};

/// Durable state of a SPOT instance, v1: configuration + learned template.
/// Restores with cold synopses (see the module docs for when that is
/// acceptable).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Full configuration.
    pub config: SpotConfig,
    /// The learned Sparse Subspace Template.
    pub sst: Sst,
}

/// v1 snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// v2 checkpoint format version (JSON text carrier).
pub const CHECKPOINT_VERSION: u32 = 2;

/// v3 checkpoint format version: the same value tree as v2, carried in
/// the binary column container (`spot_types::persist::binary`). v2 and v3
/// are interchangeable at load time — the version field selects the
/// carrier, not the content.
pub const CHECKPOINT_BINARY_VERSION: u32 = 3;

/// Durable state of a SPOT instance, v2: configuration + SST + the
/// complete runtime state. [`Spot::from_checkpoint`] restores it
/// bit-exactly — the restored detector continues the stream as if it had
/// never stopped.
#[derive(Debug, Clone)]
pub struct SpotCheckpoint {
    /// Full configuration.
    pub config: SpotConfig,
    /// The learned Sparse Subspace Template, exactly as captured.
    pub sst: Sst,
    /// The composed runtime state (column-oriented; see
    /// `spot_types::persist` for the encoding).
    state: Value,
}

impl Serialize for SpotCheckpoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::U64(CHECKPOINT_VERSION as u64)),
            ("config".to_string(), self.config.to_value()),
            ("sst".to_string(), self.sst.to_value()),
            ("state".to_string(), self.state.clone()),
        ])
    }
}

impl Deserialize for SpotCheckpoint {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let version = u32::from_value(v.get_field("version").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("version"))?;
        if version != CHECKPOINT_VERSION && version != CHECKPOINT_BINARY_VERSION {
            return Err(DeError::custom(format!(
                "expected checkpoint version {CHECKPOINT_VERSION} or \
                 {CHECKPOINT_BINARY_VERSION}, found {version}"
            )));
        }
        Ok(SpotCheckpoint {
            config: SpotConfig::from_value(v.get_field("config").unwrap_or(&Value::Null))
                .map_err(|e| e.in_field("config"))?,
            sst: Sst::from_value(v.get_field("sst").unwrap_or(&Value::Null))
                .map_err(|e| e.in_field("sst"))?,
            state: v
                .get_field("state")
                .ok_or_else(|| DeError::custom("missing field `state`"))?
                .clone(),
        })
    }
}

fn corrupt(e: impl std::fmt::Display) -> SpotError {
    SpotError::SnapshotCorrupt(e.to_string())
}

/// Mutable access to a named field of a state object (checkpoint merge
/// helper); a missing field or non-object shape is a corruption error.
fn field_mut<'a>(v: &'a mut Value, name: &str) -> Result<&'a mut Value> {
    match v {
        Value::Object(entries) => entries
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| corrupt(format!("checkpoint state missing field `{name}`"))),
        other => Err(corrupt(format!(
            "checkpoint state field `{name}`: parent is not an object ({other:?})"
        ))),
    }
}

impl SpotCheckpoint {
    /// Serializes the checkpoint on the binary column carrier (v3): the
    /// same value tree as the JSON text form, encoded through
    /// `spot_types::persist::binary` and sealed in a checksummed container
    /// frame. Load with [`SpotCheckpoint::from_bytes`] or the
    /// carrier-sniffing [`restore_from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        // Field-borrowed encode: the multi-megabyte `state` tree is
        // encoded in place, never deep-cloned into an owned envelope.
        let version = Value::U64(CHECKPOINT_BINARY_VERSION as u64);
        let config = self.config.to_value();
        let sst = self.sst.to_value();
        binary::container_of_fields(&[
            ("version", &version),
            ("config", &config),
            ("sst", &sst),
            ("state", &self.state),
        ])
    }

    /// The checkpoint's value tree with the v3 (binary-carrier) version
    /// stamp — what [`SpotCheckpoint::to_bytes`] encodes.
    pub fn to_value_binary(&self) -> Value {
        Value::Object(vec![
            (
                "version".to_string(),
                Value::U64(CHECKPOINT_BINARY_VERSION as u64),
            ),
            ("config".to_string(), self.config.to_value()),
            ("sst".to_string(), self.sst.to_value()),
            ("state".to_string(), self.state.clone()),
        ])
    }

    /// Deserializes a binary-carrier (v3) checkpoint container. Corruption
    /// anywhere — magic, checksum trailer, payload structure — is a typed
    /// error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let tree = binary::read_container(bytes).map_err(corrupt)?;
        SpotCheckpoint::from_value(&tree).map_err(corrupt)
    }

    /// Materializes the checkpoint a delta capture describes: `self` is
    /// the delta's base (the previous generation), `delta_state` is the
    /// tree produced by `Spot::delta_capture_with`. The scalar layers are
    /// replaced wholesale; the synopsis merge swaps in only the dirtied
    /// stores, keyed by registration ordinal, with the store's subspace
    /// mask cross-checked against the base so a delta can never silently
    /// apply to the wrong generation.
    pub fn apply_state_delta(&self, delta_state: &Value) -> Result<SpotCheckpoint> {
        let d = StateReader::new(delta_state).map_err(corrupt)?;
        let mut state = self.state.clone();
        for field in [
            "clock",
            "learned",
            "rng",
            "stats",
            "drift",
            "reservoir",
            "outlier_buffer",
        ] {
            let nv = d.value(field).map_err(corrupt)?;
            *field_mut(&mut state, field)? = nv.clone();
        }

        let syn_delta = d.nested("synopsis").map_err(corrupt)?;
        let stores_len = syn_delta.u64("stores_len").map_err(corrupt)? as usize;
        let syn = field_mut(&mut state, "synopsis")?;
        *field_mut(syn, "total")? = syn_delta.value("total").map_err(corrupt)?.clone();
        let base = syn_delta.value("base").map_err(corrupt)?;
        if !matches!(base, Value::Null) {
            *field_mut(syn, "base")? = base.clone();
        }
        let stores = field_mut(syn, "stores")?;
        let Value::Array(items) = stores else {
            return Err(corrupt("checkpoint synopsis `stores` is not an array"));
        };
        if items.len() != stores_len {
            return Err(corrupt(format!(
                "delta expects {stores_len} stores, base checkpoint has {}",
                items.len()
            )));
        }
        for entry in syn_delta.nested_list("changed").map_err(corrupt)? {
            let ordinal = entry.u64("ordinal").map_err(corrupt)? as usize;
            let store = entry.value("store").map_err(corrupt)?;
            let slot = items.get_mut(ordinal).ok_or_else(|| {
                corrupt(format!(
                    "delta store ordinal {ordinal} out of range ({stores_len} stores)"
                ))
            })?;
            let want_mask = StateReader::new(store)
                .and_then(|r| r.u64("mask"))
                .map_err(corrupt)?;
            let have_mask = StateReader::new(slot)
                .and_then(|r| r.u64("mask"))
                .map_err(corrupt)?;
            if want_mask != have_mask {
                return Err(corrupt(format!(
                    "delta store at ordinal {ordinal} is for subspace mask {want_mask:#x}, \
                     base has {have_mask:#x} — delta applied to the wrong generation"
                )));
            }
            *slot = store.clone();
        }

        Ok(SpotCheckpoint {
            config: self.config.clone(),
            sst: self.sst.clone(),
            state,
        })
    }
}

impl Spot {
    /// Captures the durable template (configuration + SST) — the v1
    /// snapshot. Cheap; drops all runtime state by design.
    pub fn snapshot(&self) -> SpotSnapshot {
        SpotSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config().clone(),
            sst: self.sst().clone(),
        }
    }

    /// Restores a detector from a v1 snapshot: same configuration, same
    /// SST, cold synopses (see module docs). The detector reports
    /// `is_learned() == true` when the snapshot carried learned CS/OS.
    /// Snapshots declaring any other version are rejected with
    /// [`SpotError::UnsupportedSnapshotVersion`].
    pub fn from_snapshot(snapshot: SpotSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SpotError::UnsupportedSnapshotVersion(snapshot.version));
        }
        let learned = {
            let (_, cs, os) = snapshot.sst.sizes();
            cs + os > 0
        };
        let mut spot = Spot::new(snapshot.config)?;
        spot.restore_sst(snapshot.sst, learned);
        Ok(spot)
    }

    /// Captures the complete runtime state — the v2 checkpoint. The
    /// detector is not mutated; processing can resume immediately after.
    pub fn checkpoint(&self) -> SpotCheckpoint {
        self.checkpoint_with(&SerialExecutor)
    }

    /// [`Spot::checkpoint`] with an explicit executor: every projected
    /// store's column encoding is one claim unit on the capture cursor
    /// (the same claim-once protocol the batch shard phase uses), so a
    /// cooperative caller's blocked producers help capture instead of
    /// convoying. `SharedSpot::checkpoint` rides this.
    pub fn checkpoint_with(&self, exec: &dyn StoreExecutor) -> SpotCheckpoint {
        SpotCheckpoint {
            config: self.config().clone(),
            sst: self.sst().clone(),
            state: self.capture_runtime_state(exec),
        }
    }

    /// Restores a detector from a v2 checkpoint, bit-exactly: verdicts,
    /// stats and footprint continue as if the detector had never stopped
    /// (pinned by the warm-restart proptest suites).
    pub fn from_checkpoint(checkpoint: &SpotCheckpoint) -> Result<Self> {
        let mut spot = Spot::new(checkpoint.config.clone())?;
        let reader = StateReader::new(&checkpoint.state)
            .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        spot.restore_runtime_state(checkpoint.sst.clone(), &reader)?;
        Ok(spot)
    }
}

/// Restores a detector from serialized snapshot text of **any** supported
/// version: v1 restores cold (template only), v2 restores warm
/// (bit-exact). Unknown versions yield
/// [`SpotError::UnsupportedSnapshotVersion`]; structurally broken payloads
/// yield [`SpotError::SnapshotCorrupt`] — never a panic.
pub fn restore_from_json(text: &str) -> Result<Spot> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
    restore_from_value(&value)
}

/// Restores a detector from serialized snapshot **bytes** of any supported
/// carrier and version: the binary container (v3) is recognized by its
/// magic prefix; anything else is treated as JSON text (v1 cold, v2 warm).
/// The same typed-error guarantees as [`restore_from_json`] apply — a
/// truncated or bit-flipped binary frame yields
/// [`SpotError::SnapshotCorrupt`], never a panic.
pub fn restore_from_bytes(bytes: &[u8]) -> Result<Spot> {
    if binary::is_container(bytes) {
        let value = binary::read_container(bytes).map_err(corrupt)?;
        restore_from_value(&value)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| corrupt("snapshot is neither a binary container nor UTF-8 JSON"))?;
        restore_from_json(text)
    }
}

fn restore_from_value(value: &Value) -> Result<Spot> {
    let version = match value.get_field("version") {
        Some(&Value::U64(n)) => u32::try_from(n).unwrap_or(u32::MAX),
        Some(other) => {
            return Err(SpotError::SnapshotCorrupt(format!(
                "version field is not an integer: {other:?}"
            )))
        }
        None => {
            return Err(SpotError::SnapshotCorrupt(
                "missing version field".to_string(),
            ))
        }
    };
    match version {
        SNAPSHOT_VERSION => {
            let snapshot = SpotSnapshot::from_value(value)
                .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
            Spot::from_snapshot(snapshot)
        }
        CHECKPOINT_VERSION | CHECKPOINT_BINARY_VERSION => {
            let checkpoint = SpotCheckpoint::from_value(value)
                .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
            Spot::from_checkpoint(&checkpoint)
        }
        other => Err(SpotError::UnsupportedSnapshotVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvolutionConfig, SpotBuilder};
    use crate::verdict::Verdict;
    use spot_types::{DataPoint, DomainBounds};

    fn train() -> Vec<DataPoint> {
        (0..400)
            .map(|i| {
                let c = [(0.2, 0.3), (0.7, 0.6)][i % 2];
                DataPoint::new(vec![
                    c.0 + (i % 9) as f64 * 0.004,
                    c.1 + (i % 7) as f64 * 0.004,
                    0.4 + (i % 11) as f64 * 0.01,
                    0.5 + (i % 5) as f64 * 0.01,
                ])
            })
            .collect()
    }

    fn stream(n: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                let mut p = train()[i % 400].clone().into_values();
                if i % 13 == 0 {
                    p[2 + i % 2] = 0.97 - (i % 7) as f64 * 0.01;
                }
                DataPoint::new(p)
            })
            .collect()
    }

    fn assert_verdicts_bitwise(want: &[Verdict], got: &[Verdict]) {
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(got) {
            // Field-level asserts for diagnostics; bitwise_eq is the
            // authoritative (field-complete) predicate.
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
            assert!(a.bitwise_eq(b), "tick {}: {a:?} vs {b:?}", a.tick);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_sst() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);

        let json = serde_json::to_string(&snap).unwrap();
        let back: SpotSnapshot = serde_json::from_str(&json).unwrap();
        let restored = Spot::from_snapshot(back).unwrap();

        assert!(restored.is_learned());
        assert_eq!(restored.sst().sizes(), spot.sst().sizes());
        let a: Vec<u64> = spot.sst().iter_all().map(|s| s.mask()).collect();
        let b: Vec<u64> = restored.sst().iter_all().map(|s| s.mask()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restored_detector_detects() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        let mut restored = Spot::from_snapshot(snap).unwrap();
        // Warm the cold synopses with a recent batch, then detect.
        for p in train() {
            restored.process(&p).unwrap();
        }
        let v = restored
            .process(&DataPoint::new(vec![0.95, 0.02, 0.9, 0.05]))
            .unwrap();
        assert!(v.outlier);
        let v = restored
            .process(&DataPoint::new(vec![0.21, 0.31, 0.45, 0.52]))
            .unwrap();
        assert!(!v.outlier);
    }

    #[test]
    fn unlearned_snapshot_restores_unlearned() {
        let spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
        let restored = Spot::from_snapshot(spot.snapshot()).unwrap();
        assert!(!restored.is_learned());
        let (fs, cs, os) = restored.sst().sizes();
        assert_eq!(fs, 4 + 6);
        assert_eq!((cs, os), (0, 0));
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        // The v2 acceptance bar: snapshot mid-stream (through JSON text),
        // restore, continue — verdicts, stats and footprint must be
        // bit-identical to the uninterrupted detector, across evolution
        // and pruning ticks.
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(4))
                .seed(17)
                .evolution(EvolutionConfig {
                    period: 120,
                    ..Default::default()
                })
                .pruning(90, 1e-4)
                .build()
                .unwrap();
            s.learn(&train()).unwrap();
            s
        };
        let pts = stream(500);
        let mut uninterrupted = build();
        let mut want = Vec::new();
        for p in &pts {
            want.push(uninterrupted.process(p).unwrap());
        }

        let mut first_half = build();
        let mut got = Vec::new();
        for p in &pts[..230] {
            got.push(first_half.process(p).unwrap());
        }
        let json = serde_json::to_string(&first_half.checkpoint()).unwrap();
        drop(first_half); // the "crash"
        let mut resumed = restore_from_json(&json).unwrap();
        for p in &pts[230..] {
            got.push(resumed.process(p).unwrap());
        }

        assert_verdicts_bitwise(&want, &got);
        assert_eq!(resumed.stats(), uninterrupted.stats());
        assert_eq!(resumed.footprint(), uninterrupted.footprint());
        assert_eq!(resumed.now(), uninterrupted.now());
        assert_eq!(
            resumed.drift_signal_mean().to_bits(),
            uninterrupted.drift_signal_mean().to_bits()
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_exact_for_batches() {
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(4))
                .seed(29)
                .evolution(EvolutionConfig {
                    period: 150,
                    ..Default::default()
                })
                .pruning(100, 1e-4)
                .build()
                .unwrap();
            s.learn(&train()).unwrap();
            s
        };
        let pts = stream(420);
        let mut uninterrupted = build();
        let want = uninterrupted.process_batch(&pts).unwrap();

        let mut first_half = build();
        let mut got = first_half.process_batch(&pts[..200]).unwrap();
        let resumed = Spot::from_checkpoint(&first_half.checkpoint());
        let mut resumed = resumed.unwrap();
        got.extend(resumed.process_batch(&pts[200..]).unwrap());

        assert_verdicts_bitwise(&want, &got);
        assert_eq!(resumed.stats(), uninterrupted.stats());
        assert_eq!(resumed.footprint(), uninterrupted.footprint());
    }

    #[test]
    fn checkpoint_of_restored_detector_matches_original() {
        // capture → restore → capture is a fixed point (same JSON bytes up
        // to base-store key order, which the sorted columns make
        // deterministic too).
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(5)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(150) {
            spot.process(&p).unwrap();
        }
        let first = serde_json::to_string(&spot.checkpoint()).unwrap();
        let restored = restore_from_json(&first).unwrap();
        let second = serde_json::to_string(&restored.checkpoint()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn v1_json_still_loads_cold() {
        // Migration path: a v1 snapshot (config + SST only) loads through
        // the universal loader with today's cold-synopsis semantics.
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(50) {
            spot.process(&p).unwrap();
        }
        let json = serde_json::to_string(&spot.snapshot()).unwrap();
        let restored = restore_from_json(&json).unwrap();
        assert!(restored.is_learned());
        assert_eq!(restored.now(), 0, "v1 restores cold: clock resets");
        assert_eq!(restored.footprint().base_cells, 0, "synopses are cold");
        let a: Vec<u64> = spot.sst().iter_all().map(|s| s.mask()).collect();
        let b: Vec<u64> = restored.sst().iter_all().map(|s| s.mask()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_versions_are_rejected_with_typed_errors() {
        let spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
        // A struct claiming a future version is refused, not misread.
        let mut snap = spot.snapshot();
        snap.version = 3;
        assert_eq!(
            Spot::from_snapshot(snap).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(3)
        );
        // Same through the text loader — including absurd versions.
        let json = r#"{"version":9,"config":{},"sst":{}}"#;
        assert_eq!(
            restore_from_json(json).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(9)
        );
        let json = format!(r#"{{"version":{}}}"#, u64::MAX);
        assert_eq!(
            restore_from_json(&json).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(u32::MAX)
        );
    }

    #[test]
    fn binary_checkpoint_resume_is_bit_exact() {
        // v3 acceptance bar, mirroring the JSON test: checkpoint through
        // the binary container mid-stream, restore, continue — verdicts
        // and stats bit-identical to the uninterrupted detector.
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(4))
                .seed(17)
                .evolution(EvolutionConfig {
                    period: 120,
                    ..Default::default()
                })
                .pruning(90, 1e-4)
                .build()
                .unwrap();
            s.learn(&train()).unwrap();
            s
        };
        let pts = stream(400);
        let mut uninterrupted = build();
        let mut want = Vec::new();
        for p in &pts {
            want.push(uninterrupted.process(p).unwrap());
        }

        let mut first_half = build();
        let mut got = Vec::new();
        for p in &pts[..180] {
            got.push(first_half.process(p).unwrap());
        }
        let bytes = first_half.checkpoint().to_bytes();
        drop(first_half);
        let mut resumed = restore_from_bytes(&bytes).unwrap();
        for p in &pts[180..] {
            got.push(resumed.process(p).unwrap());
        }
        assert_verdicts_bitwise(&want, &got);
        assert_eq!(resumed.stats(), uninterrupted.stats());
        assert_eq!(resumed.footprint(), uninterrupted.footprint());

        // Binary is the compact carrier: meaningfully smaller than the
        // JSON rendering of the same checkpoint.
        let json = serde_json::to_string(&resumed.checkpoint()).unwrap();
        let bin = resumed.checkpoint().to_bytes();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn binary_checkpoint_is_a_fixed_point_across_carriers() {
        // capture → (binary) restore → capture must reproduce identical
        // bytes on BOTH carriers, and a JSON-restored detector must emit
        // the same binary bytes as a binary-restored one.
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(5)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(150) {
            spot.process(&p).unwrap();
        }
        let first_bin = spot.checkpoint().to_bytes();
        let first_json = serde_json::to_string(&spot.checkpoint()).unwrap();

        let from_bin = restore_from_bytes(&first_bin).unwrap();
        assert_eq!(from_bin.checkpoint().to_bytes(), first_bin);
        assert_eq!(
            serde_json::to_string(&from_bin.checkpoint()).unwrap(),
            first_json
        );

        let from_json = restore_from_bytes(first_json.as_bytes()).unwrap();
        assert_eq!(from_json.checkpoint().to_bytes(), first_bin);
    }

    #[test]
    fn corrupted_binary_frames_error_instead_of_panicking() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(60) {
            spot.process(&p).unwrap();
        }
        let bytes = spot.checkpoint().to_bytes();
        assert!(restore_from_bytes(&bytes).is_ok());
        // Truncations at a spread of prefix lengths.
        for cut in [0, 7, 8, 100, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                restore_from_bytes(&bytes[..cut]).unwrap_err(),
                SpotError::SnapshotCorrupt(_)
            ));
        }
        // Bit flips across the frame (magic, payload, trailer).
        for at in (0..bytes.len()).step_by(bytes.len() / 37 + 1) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x04;
            assert!(
                matches!(
                    restore_from_bytes(&bad).unwrap_err(),
                    SpotError::SnapshotCorrupt(_)
                ),
                "flip at {at}"
            );
        }
        // Bytes that are neither container nor UTF-8.
        assert!(matches!(
            restore_from_bytes(&[0xff, 0xfe, 0x01]).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
    }

    #[test]
    fn delta_capture_applies_onto_base_checkpoint_bit_exactly() {
        use spot_synopsis::SerialExecutor;
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(11)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(120) {
            spot.process(&p).unwrap();
        }
        let base = spot.checkpoint();
        let mark = spot.capture_mark();

        // No mutation → Unchanged.
        assert!(matches!(
            spot.delta_capture_with(&SerialExecutor, &mark),
            crate::detector::DeltaCapture::Unchanged
        ));

        // Mutations without structure change → a delta that materializes
        // the exact full checkpoint.
        for p in stream(40) {
            spot.process(&p).unwrap();
        }
        match spot.delta_capture_with(&SerialExecutor, &mark) {
            crate::detector::DeltaCapture::Delta(d) => {
                let merged = base.apply_state_delta(&d).unwrap();
                let want = serde_json::to_string(&spot.checkpoint()).unwrap();
                let got = serde_json::to_string(&merged).unwrap();
                assert_eq!(want, got, "delta-applied checkpoint must be bit-exact");
                assert_eq!(merged.to_bytes(), spot.checkpoint().to_bytes());
            }
            other => panic!("expected Delta, got {other:?}"),
        }

        // Structure change → Full fallback.
        let mark = spot.capture_mark();
        spot.clear_cs();
        assert!(matches!(
            spot.delta_capture_with(&SerialExecutor, &mark),
            crate::detector::DeltaCapture::Full
        ));

        // A delta can never apply against the wrong base: a valid delta
        // carries each changed store's subspace mask, so a base whose
        // store at that ordinal answers to a different mask is refused.
        let mark2 = spot.capture_mark();
        for p in stream(20) {
            spot.process(&p).unwrap();
        }
        let crate::detector::DeltaCapture::Delta(d) =
            spot.delta_capture_with(&SerialExecutor, &mark2)
        else {
            panic!("expected Delta after processing against a fresh mark");
        };
        let mut mangled = spot.checkpoint();
        {
            let syn = field_mut(&mut mangled.state, "synopsis").unwrap();
            let stores = field_mut(syn, "stores").unwrap();
            let Value::Array(items) = stores else {
                panic!("stores is not an array")
            };
            let mask = field_mut(&mut items[0], "mask").unwrap();
            *mask = Value::U64(0xdead_beef);
        }
        let err = mangled.apply_state_delta(&d).unwrap_err();
        assert!(
            err.to_string().contains("wrong generation"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        assert!(matches!(
            restore_from_json("not json").unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            restore_from_json(r#"{"no_version":true}"#).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            restore_from_json(r#"{"version":"two"}"#).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        // A v2 header with a mangled state payload.
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let json = serde_json::to_string(&spot.checkpoint()).unwrap();
        let broken = json.replace("\"rng\"", "\"gnr\"");
        assert!(matches!(
            restore_from_json(&broken).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
    }
}
