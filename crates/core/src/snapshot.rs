//! Detector state persistence: template snapshots (v1) and full
//! warm-restart checkpoints (v2).
//!
//! Two formats, one loader:
//!
//! * **v1 — [`SpotSnapshot`]**: configuration + learned SST only. A
//!   detector restored from it starts with *cold synopses* and re-warms
//!   from the live stream.
//! * **v2 — [`SpotCheckpoint`]**: the complete runtime state — SoA store
//!   columns and packed cell keys, the global decayed weight, drift-test
//!   state, the reservoir and outlier retention, counters, RNG state and
//!   the stream clock — in a compact column-oriented encoding (floats as
//!   IEEE-754 bit patterns; see `spot_types::persist`). A detector
//!   restored from a v2 checkpoint produces **bit-identical verdicts and
//!   stats** to one that never restarted. Each layer serializes itself
//!   through the [`spot_types::DurableState`] capture/restore trait; the
//!   checkpoint merely composes the layers.
//!
//! [`restore_from_json`] dispatches on the `version` field and rejects
//! unknown versions with a typed error
//! ([`SpotError::UnsupportedSnapshotVersion`]) instead of a deserialize
//! panic. See
//! `docs/persistence.md` for the format layout, the versioning policy and
//! the non-blocking checkpoint protocol of `SharedSpot::checkpoint`.
//!
//! # When is a cold (v1) restore good enough?
//!
//! Under the (ω, ε) time model, pre-restart synopsis mass decays by
//! `δ^t = ε^{t/ω}`: only after a **full window of ω ticks** does the lost
//! state's influence drop to the ε approximation floor. A cold restore is
//! therefore operationally equivalent to a warm one only when ω is small
//! relative to the tolerable re-warm budget — for the default ω = 6000
//! that is thousands of points during which verdicts are degraded (empty
//! cells read as maximally sparse, so the false-alarm rate spikes until
//! the grid re-populates). And decay never restores the *non-decaying*
//! state a v1 snapshot drops: the Page–Hinkley statistics, the reservoir
//! sample that scores self-evolution, and the outlier buffer all influence
//! maintenance decisions long after ω ticks. Long-running deployments
//! should checkpoint with v2; v1 remains the right tool for shipping a
//! learned template to a fresh deployment site.

use crate::config::SpotConfig;
use crate::detector::Spot;
use crate::sst::Sst;
use serde::{DeError, Deserialize, Serialize, Value};
use spot_synopsis::{SerialExecutor, StoreExecutor};
use spot_types::{Result, SpotError, StateReader};

/// Durable state of a SPOT instance, v1: configuration + learned template.
/// Restores with cold synopses (see the module docs for when that is
/// acceptable).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Full configuration.
    pub config: SpotConfig,
    /// The learned Sparse Subspace Template.
    pub sst: Sst,
}

/// v1 snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// v2 checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Durable state of a SPOT instance, v2: configuration + SST + the
/// complete runtime state. [`Spot::from_checkpoint`] restores it
/// bit-exactly — the restored detector continues the stream as if it had
/// never stopped.
#[derive(Debug, Clone)]
pub struct SpotCheckpoint {
    /// Full configuration.
    pub config: SpotConfig,
    /// The learned Sparse Subspace Template, exactly as captured.
    pub sst: Sst,
    /// The composed runtime state (column-oriented; see
    /// `spot_types::persist` for the encoding).
    state: Value,
}

impl Serialize for SpotCheckpoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::U64(CHECKPOINT_VERSION as u64)),
            ("config".to_string(), self.config.to_value()),
            ("sst".to_string(), self.sst.to_value()),
            ("state".to_string(), self.state.clone()),
        ])
    }
}

impl Deserialize for SpotCheckpoint {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let version = u32::from_value(v.get_field("version").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("version"))?;
        if version != CHECKPOINT_VERSION {
            return Err(DeError::custom(format!(
                "expected checkpoint version {CHECKPOINT_VERSION}, found {version}"
            )));
        }
        Ok(SpotCheckpoint {
            config: SpotConfig::from_value(v.get_field("config").unwrap_or(&Value::Null))
                .map_err(|e| e.in_field("config"))?,
            sst: Sst::from_value(v.get_field("sst").unwrap_or(&Value::Null))
                .map_err(|e| e.in_field("sst"))?,
            state: v
                .get_field("state")
                .ok_or_else(|| DeError::custom("missing field `state`"))?
                .clone(),
        })
    }
}

impl Spot {
    /// Captures the durable template (configuration + SST) — the v1
    /// snapshot. Cheap; drops all runtime state by design.
    pub fn snapshot(&self) -> SpotSnapshot {
        SpotSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config().clone(),
            sst: self.sst().clone(),
        }
    }

    /// Restores a detector from a v1 snapshot: same configuration, same
    /// SST, cold synopses (see module docs). The detector reports
    /// `is_learned() == true` when the snapshot carried learned CS/OS.
    /// Snapshots declaring any other version are rejected with
    /// [`SpotError::UnsupportedSnapshotVersion`].
    pub fn from_snapshot(snapshot: SpotSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SpotError::UnsupportedSnapshotVersion(snapshot.version));
        }
        let learned = {
            let (_, cs, os) = snapshot.sst.sizes();
            cs + os > 0
        };
        let mut spot = Spot::new(snapshot.config)?;
        spot.restore_sst(snapshot.sst, learned);
        Ok(spot)
    }

    /// Captures the complete runtime state — the v2 checkpoint. The
    /// detector is not mutated; processing can resume immediately after.
    pub fn checkpoint(&self) -> SpotCheckpoint {
        self.checkpoint_with(&SerialExecutor)
    }

    /// [`Spot::checkpoint`] with an explicit executor: every projected
    /// store's column encoding is one claim unit on the capture cursor
    /// (the same claim-once protocol the batch shard phase uses), so a
    /// cooperative caller's blocked producers help capture instead of
    /// convoying. `SharedSpot::checkpoint` rides this.
    pub fn checkpoint_with(&self, exec: &dyn StoreExecutor) -> SpotCheckpoint {
        SpotCheckpoint {
            config: self.config().clone(),
            sst: self.sst().clone(),
            state: self.capture_runtime_state(exec),
        }
    }

    /// Restores a detector from a v2 checkpoint, bit-exactly: verdicts,
    /// stats and footprint continue as if the detector had never stopped
    /// (pinned by the warm-restart proptest suites).
    pub fn from_checkpoint(checkpoint: &SpotCheckpoint) -> Result<Self> {
        let mut spot = Spot::new(checkpoint.config.clone())?;
        let reader = StateReader::new(&checkpoint.state)
            .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        spot.restore_runtime_state(checkpoint.sst.clone(), &reader)?;
        Ok(spot)
    }
}

/// Restores a detector from serialized snapshot text of **any** supported
/// version: v1 restores cold (template only), v2 restores warm
/// (bit-exact). Unknown versions yield
/// [`SpotError::UnsupportedSnapshotVersion`]; structurally broken payloads
/// yield [`SpotError::SnapshotCorrupt`] — never a panic.
pub fn restore_from_json(text: &str) -> Result<Spot> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
    let version = match value.get_field("version") {
        Some(&Value::U64(n)) => u32::try_from(n).unwrap_or(u32::MAX),
        Some(other) => {
            return Err(SpotError::SnapshotCorrupt(format!(
                "version field is not an integer: {other:?}"
            )))
        }
        None => {
            return Err(SpotError::SnapshotCorrupt(
                "missing version field".to_string(),
            ))
        }
    };
    match version {
        SNAPSHOT_VERSION => {
            let snapshot = SpotSnapshot::from_value(&value)
                .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
            Spot::from_snapshot(snapshot)
        }
        CHECKPOINT_VERSION => {
            let checkpoint = SpotCheckpoint::from_value(&value)
                .map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
            Spot::from_checkpoint(&checkpoint)
        }
        other => Err(SpotError::UnsupportedSnapshotVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvolutionConfig, SpotBuilder};
    use crate::verdict::Verdict;
    use spot_types::{DataPoint, DomainBounds};

    fn train() -> Vec<DataPoint> {
        (0..400)
            .map(|i| {
                let c = [(0.2, 0.3), (0.7, 0.6)][i % 2];
                DataPoint::new(vec![
                    c.0 + (i % 9) as f64 * 0.004,
                    c.1 + (i % 7) as f64 * 0.004,
                    0.4 + (i % 11) as f64 * 0.01,
                    0.5 + (i % 5) as f64 * 0.01,
                ])
            })
            .collect()
    }

    fn stream(n: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                let mut p = train()[i % 400].clone().into_values();
                if i % 13 == 0 {
                    p[2 + i % 2] = 0.97 - (i % 7) as f64 * 0.01;
                }
                DataPoint::new(p)
            })
            .collect()
    }

    fn assert_verdicts_bitwise(want: &[Verdict], got: &[Verdict]) {
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(got) {
            // Field-level asserts for diagnostics; bitwise_eq is the
            // authoritative (field-complete) predicate.
            assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
            assert_eq!(a.findings, b.findings, "tick {}", a.tick);
            assert!(a.bitwise_eq(b), "tick {}: {a:?} vs {b:?}", a.tick);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_sst() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);

        let json = serde_json::to_string(&snap).unwrap();
        let back: SpotSnapshot = serde_json::from_str(&json).unwrap();
        let restored = Spot::from_snapshot(back).unwrap();

        assert!(restored.is_learned());
        assert_eq!(restored.sst().sizes(), spot.sst().sizes());
        let a: Vec<u64> = spot.sst().iter_all().map(|s| s.mask()).collect();
        let b: Vec<u64> = restored.sst().iter_all().map(|s| s.mask()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restored_detector_detects() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        let mut restored = Spot::from_snapshot(snap).unwrap();
        // Warm the cold synopses with a recent batch, then detect.
        for p in train() {
            restored.process(&p).unwrap();
        }
        let v = restored
            .process(&DataPoint::new(vec![0.95, 0.02, 0.9, 0.05]))
            .unwrap();
        assert!(v.outlier);
        let v = restored
            .process(&DataPoint::new(vec![0.21, 0.31, 0.45, 0.52]))
            .unwrap();
        assert!(!v.outlier);
    }

    #[test]
    fn unlearned_snapshot_restores_unlearned() {
        let spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
        let restored = Spot::from_snapshot(spot.snapshot()).unwrap();
        assert!(!restored.is_learned());
        let (fs, cs, os) = restored.sst().sizes();
        assert_eq!(fs, 4 + 6);
        assert_eq!((cs, os), (0, 0));
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        // The v2 acceptance bar: snapshot mid-stream (through JSON text),
        // restore, continue — verdicts, stats and footprint must be
        // bit-identical to the uninterrupted detector, across evolution
        // and pruning ticks.
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(4))
                .seed(17)
                .evolution(EvolutionConfig {
                    period: 120,
                    ..Default::default()
                })
                .pruning(90, 1e-4)
                .build()
                .unwrap();
            s.learn(&train()).unwrap();
            s
        };
        let pts = stream(500);
        let mut uninterrupted = build();
        let mut want = Vec::new();
        for p in &pts {
            want.push(uninterrupted.process(p).unwrap());
        }

        let mut first_half = build();
        let mut got = Vec::new();
        for p in &pts[..230] {
            got.push(first_half.process(p).unwrap());
        }
        let json = serde_json::to_string(&first_half.checkpoint()).unwrap();
        drop(first_half); // the "crash"
        let mut resumed = restore_from_json(&json).unwrap();
        for p in &pts[230..] {
            got.push(resumed.process(p).unwrap());
        }

        assert_verdicts_bitwise(&want, &got);
        assert_eq!(resumed.stats(), uninterrupted.stats());
        assert_eq!(resumed.footprint(), uninterrupted.footprint());
        assert_eq!(resumed.now(), uninterrupted.now());
        assert_eq!(
            resumed.drift_signal_mean().to_bits(),
            uninterrupted.drift_signal_mean().to_bits()
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_exact_for_batches() {
        let build = || {
            let mut s = SpotBuilder::new(DomainBounds::unit(4))
                .seed(29)
                .evolution(EvolutionConfig {
                    period: 150,
                    ..Default::default()
                })
                .pruning(100, 1e-4)
                .build()
                .unwrap();
            s.learn(&train()).unwrap();
            s
        };
        let pts = stream(420);
        let mut uninterrupted = build();
        let want = uninterrupted.process_batch(&pts).unwrap();

        let mut first_half = build();
        let mut got = first_half.process_batch(&pts[..200]).unwrap();
        let resumed = Spot::from_checkpoint(&first_half.checkpoint());
        let mut resumed = resumed.unwrap();
        got.extend(resumed.process_batch(&pts[200..]).unwrap());

        assert_verdicts_bitwise(&want, &got);
        assert_eq!(resumed.stats(), uninterrupted.stats());
        assert_eq!(resumed.footprint(), uninterrupted.footprint());
    }

    #[test]
    fn checkpoint_of_restored_detector_matches_original() {
        // capture → restore → capture is a fixed point (same JSON bytes up
        // to base-store key order, which the sorted columns make
        // deterministic too).
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(5)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(150) {
            spot.process(&p).unwrap();
        }
        let first = serde_json::to_string(&spot.checkpoint()).unwrap();
        let restored = restore_from_json(&first).unwrap();
        let second = serde_json::to_string(&restored.checkpoint()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn v1_json_still_loads_cold() {
        // Migration path: a v1 snapshot (config + SST only) loads through
        // the universal loader with today's cold-synopsis semantics.
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        for p in stream(50) {
            spot.process(&p).unwrap();
        }
        let json = serde_json::to_string(&spot.snapshot()).unwrap();
        let restored = restore_from_json(&json).unwrap();
        assert!(restored.is_learned());
        assert_eq!(restored.now(), 0, "v1 restores cold: clock resets");
        assert_eq!(restored.footprint().base_cells, 0, "synopses are cold");
        let a: Vec<u64> = spot.sst().iter_all().map(|s| s.mask()).collect();
        let b: Vec<u64> = restored.sst().iter_all().map(|s| s.mask()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_versions_are_rejected_with_typed_errors() {
        let spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
        // A struct claiming a future version is refused, not misread.
        let mut snap = spot.snapshot();
        snap.version = 3;
        assert_eq!(
            Spot::from_snapshot(snap).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(3)
        );
        // Same through the text loader — including absurd versions.
        let json = r#"{"version":9,"config":{},"sst":{}}"#;
        assert_eq!(
            restore_from_json(json).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(9)
        );
        let json = format!(r#"{{"version":{}}}"#, u64::MAX);
        assert_eq!(
            restore_from_json(&json).unwrap_err(),
            SpotError::UnsupportedSnapshotVersion(u32::MAX)
        );
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        assert!(matches!(
            restore_from_json("not json").unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            restore_from_json(r#"{"no_version":true}"#).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            restore_from_json(r#"{"version":"two"}"#).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
        // A v2 header with a mangled state payload.
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let json = serde_json::to_string(&spot.checkpoint()).unwrap();
        let broken = json.replace("\"rng\"", "\"gnr\"");
        assert!(matches!(
            restore_from_json(&broken).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
    }
}
