//! Detector state persistence.
//!
//! A deployed monitor should survive restarts without re-running the
//! learning stage. [`SpotSnapshot`] captures the durable state — the full
//! configuration plus the learned SST (FS/CS/OS with scores) — as a plain
//! serde value. The *synopses* are deliberately not persisted: under the
//! (ω, ε) model their content decays within one window anyway, so a
//! restarted detector rebuilds them from the live stream (optionally warmed
//! by replaying a small recent batch through [`crate::Spot::process`]).

use crate::config::SpotConfig;
use crate::detector::Spot;
use crate::sst::Sst;
use serde::{Deserialize, Serialize};
use spot_types::Result;

/// Durable state of a SPOT instance: configuration + learned template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Full configuration.
    pub config: SpotConfig,
    /// The learned Sparse Subspace Template.
    pub sst: Sst,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl Spot {
    /// Captures the durable state (configuration + SST).
    pub fn snapshot(&self) -> SpotSnapshot {
        SpotSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config().clone(),
            sst: self.sst().clone(),
        }
    }

    /// Restores a detector from a snapshot: same configuration, same SST,
    /// cold synopses (see module docs). The detector reports
    /// `is_learned() == true` when the snapshot carried learned CS/OS.
    pub fn from_snapshot(snapshot: SpotSnapshot) -> Result<Self> {
        let learned = {
            let (_, cs, os) = snapshot.sst.sizes();
            cs + os > 0
        };
        let mut spot = Spot::new(snapshot.config)?;
        spot.restore_sst(snapshot.sst, learned);
        Ok(spot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotBuilder;
    use spot_types::{DataPoint, DomainBounds};

    fn train() -> Vec<DataPoint> {
        (0..400)
            .map(|i| {
                let c = [(0.2, 0.3), (0.7, 0.6)][i % 2];
                DataPoint::new(vec![
                    c.0 + (i % 9) as f64 * 0.004,
                    c.1 + (i % 7) as f64 * 0.004,
                    0.4 + (i % 11) as f64 * 0.01,
                    0.5 + (i % 5) as f64 * 0.01,
                ])
            })
            .collect()
    }

    #[test]
    fn snapshot_roundtrip_preserves_sst() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);

        let json = serde_json::to_string(&snap).unwrap();
        let back: SpotSnapshot = serde_json::from_str(&json).unwrap();
        let restored = Spot::from_snapshot(back).unwrap();

        assert!(restored.is_learned());
        assert_eq!(restored.sst().sizes(), spot.sst().sizes());
        let a: Vec<u64> = spot.sst().iter_all().map(|s| s.mask()).collect();
        let b: Vec<u64> = restored.sst().iter_all().map(|s| s.mask()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restored_detector_detects() {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .seed(3)
            .build()
            .unwrap();
        spot.learn(&train()).unwrap();
        let snap = spot.snapshot();
        let mut restored = Spot::from_snapshot(snap).unwrap();
        // Warm the cold synopses with a recent batch, then detect.
        for p in train() {
            restored.process(&p).unwrap();
        }
        let v = restored
            .process(&DataPoint::new(vec![0.95, 0.02, 0.9, 0.05]))
            .unwrap();
        assert!(v.outlier);
        let v = restored
            .process(&DataPoint::new(vec![0.21, 0.31, 0.45, 0.52]))
            .unwrap();
        assert!(!v.outlier);
    }

    #[test]
    fn unlearned_snapshot_restores_unlearned() {
        let spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
        let restored = Spot::from_snapshot(spot.snapshot()).unwrap();
        assert!(!restored.is_learned());
        let (fs, cs, os) = restored.sst().sizes();
        assert_eq!(fs, 4 + 6);
        assert_eq!((cs, os), (0, 0));
    }
}
