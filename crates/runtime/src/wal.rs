//! The durable ingestion write-ahead log: the fleet's answer to the
//! one-pass problem.
//!
//! SPOT is a one-pass detector — a point lost at ingestion is gone
//! forever. The WAL closes that window: with [`SpotFleet::enable_wal`]
//! every admitted point is appended to a per-tenant segmented log
//! **before** it enters the tenant's queue, so after any crash
//! [`SpotFleet::recover`] can restore the newest checkpoint and replay
//! the log tail through the normal processing path, reconverging
//! bit-identically with the uninterrupted run (`points_lost == 0`).
//!
//! The byte-level segment format (checksummed length-prefixed frames,
//! IEEE-754 bit lanes, torn-tail truncation) lives in
//! [`spot_stream::wal`], shared with the offline
//! [`spot_stream::WalSource`] replayer; this module owns the *writer*:
//!
//! * **Ordering invariant** — a point is enqueued iff its record was
//!   appended first, in the same order. The fleet holds a tenant's
//!   [`WalAppender`] across append + enqueue, so the log's sequence
//!   numbers are exactly the tenant's arrival order, and WAL seq `n`
//!   always corresponds to the detector's `processed` counter
//!   `base_processed + n`. That identity is what lets a checkpoint's
//!   stream position double as a replay watermark.
//! * **[`FsyncPolicy`]** — durability/throughput trade per fleet:
//!   `EveryRecord` syncs each append (no acknowledged point is ever
//!   lost), `EveryN(n)` amortizes one sync over `n` records (the
//!   default, `n = 256`), `OnRotate` syncs only at segment seal.
//! * **Rotation & pruning** — segments rotate at
//!   [`WalTuning::segment_bytes`]; a successful durable checkpoint
//!   ([`SpotFleet::checkpoint_durable`]) prunes sealed segments wholly
//!   behind the checkpoint's watermark, bounding the log to roughly one
//!   checkpoint interval of data.
//! * **Deterministic crash injection** — [`crate::FaultPlan`]'s WAL hooks
//!   (kill-after-append, torn write, failed fsync, crash-mid-rotation,
//!   crash-before-prune) damage the file state exactly as a real crash
//!   would and then mark the writer dead, so chaos tests can drive
//!   recovery from every crash point without an actual `kill -9`.
//!
//! See `docs/persistence.md` § "The ingestion WAL" for the format and
//! `docs/robustness.md` for the recovery protocol.
//!
//! [`SpotFleet::enable_wal`]: crate::SpotFleet::enable_wal
//! [`SpotFleet::recover`]: crate::SpotFleet::recover
//! [`SpotFleet::checkpoint_durable`]: crate::SpotFleet::checkpoint_durable

use crate::faults::{FaultInjector, WalFault};
use spot_stream::wal::{
    encode_record, encode_segment_header, record_frame_len, scan_wal_dir, segment_file_name,
    SegmentHeader, WAL_HEADER_LEN, WAL_MAGIC,
};
use spot_types::{DataPoint, Result, SpotError, TenantId};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// When the WAL writer forces appended records onto stable storage.
///
/// Whatever the policy, a segment is always synced when it is sealed
/// (rotation) and records are written straight to the file descriptor
/// (no userspace buffering) — the policy only controls how many
/// *acknowledged* records a poorly-timed power cut can take back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged point is durable.
    EveryRecord,
    /// `fsync` once per `n` records (clamped to at least 1): at most
    /// `n - 1` acknowledged points are exposed to a power cut.
    EveryN(u32),
    /// `fsync` only when a segment is sealed: the active segment's tail
    /// rides on the OS page cache.
    OnRotate,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(256)
    }
}

/// WAL writer knobs. `Default`: `EveryN(256)` fsync, 1 MiB segments.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalTuning {
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotation threshold: a segment holding at least one record is
    /// sealed before an append would push it past this many bytes
    /// (0 is treated as 1 — every record gets its own segment).
    pub segment_bytes: u64,
}

impl WalTuning {
    /// The default segment rotation threshold (1 MiB).
    pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

    fn segment_bytes(&self) -> u64 {
        match self.segment_bytes {
            0 => WalTuning::DEFAULT_SEGMENT_BYTES,
            n => n,
        }
    }
}

/// Escapes a tenant id into a filesystem-safe directory name: ASCII
/// alphanumerics, `.`, `_` and `-` pass through, every other byte becomes
/// `%XX` (so ids containing `/`, `%` or spaces cannot collide or escape
/// the WAL root).
pub fn tenant_dir_name(id: &TenantId) -> String {
    let raw = id.as_str();
    let mut out = String::with_capacity(raw.len());
    for &b in raw.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// What [`SpotFleet::recover`](crate::SpotFleet::recover) did: which
/// checkpoint generation it restored, what it rejected on the way there,
/// and how much WAL tail it replayed per tenant.
#[derive(Debug)]
pub struct FleetRecovery {
    /// The checkpoint generation restored, or `None` when the store held
    /// no valid checkpoint (the fleet starts empty; WAL dirs of tenants
    /// that were never checkpointed show up in `unclaimed`).
    pub generation: Option<u64>,
    /// Checkpoint generations rejected during the scan (newest first)
    /// with the typed error each produced.
    pub rejected: Vec<(u64, SpotError)>,
    /// Per tenant (sorted): WAL records replayed through the normal
    /// processing path to close the checkpoint → crash window.
    pub replayed: Vec<(TenantId, u64)>,
    /// WAL directories whose tenant is absent from the restored
    /// checkpoint (registered after the last durable checkpoint, or no
    /// checkpoint at all). Their logs are left untouched on disk — a
    /// detector cannot be rebuilt without its configuration; re-register
    /// the tenant and replay via [`spot_stream::WalSource`] manually.
    pub unclaimed: Vec<String>,
    /// Stray `.ckpt.tmp` files swept by the store on open.
    pub swept_tmp: usize,
}

impl FleetRecovery {
    /// Total WAL records replayed across all tenants.
    pub fn total_replayed(&self) -> u64 {
        self.replayed.iter().map(|(_, n)| n).sum()
    }
}

/// The active segment's writer state, behind the appender mutex.
struct Writer {
    file: File,
    /// Active segment number.
    segment: u64,
    /// Valid bytes of the active segment (header + whole frames).
    segment_len: u64,
    /// Active-segment bytes known to be on stable storage.
    synced_len: u64,
    /// Sequence number the next append gets.
    next_seq: u64,
    /// Records appended since the last sync.
    unsynced_records: u32,
    /// Live segments, oldest first: `(number, first_seq)`. The last entry
    /// is the active segment.
    segments: Vec<(u64, u64)>,
    /// `Some(reason)` after an injected crash: the simulated process is
    /// dead, every further append fails. Recovery goes through
    /// [`crate::SpotFleet::recover`] on the on-disk state.
    dead: Option<String>,
}

/// One tenant's write-ahead log: a directory of segment files plus the
/// serialized appender the fleet's ingestion paths share.
///
/// Obtained via the fleet (`enable_wal` / `recover`); the fleet holds the
/// [`WalAppender`] lock across append + enqueue so log order *is* arrival
/// order — see the module docs for the invariant.
pub struct TenantWal {
    dir: PathBuf,
    tuning: WalTuning,
    base_processed: u64,
    writer: Mutex<Writer>,
}

impl std::fmt::Debug for TenantWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantWal")
            .field("dir", &self.dir)
            .field("base_processed", &self.base_processed)
            .finish_non_exhaustive()
    }
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> SpotError {
    SpotError::Io(format!("{action} {}: {e}", path.display()))
}

impl TenantWal {
    /// Opens (resuming) or creates a tenant's log. A resumed log keeps
    /// its recorded `base_processed`; `base_if_fresh` seeds a new one —
    /// it must be the tenant's `processed` counter at attach time, and
    /// with an existing log the caller's position must lie inside it
    /// (checked by replay, not here). Resume repairs crash residue:
    /// trailing torn-rotation segment files are deleted and a torn final
    /// record is truncated away.
    pub(crate) fn open(dir: PathBuf, base_if_fresh: u64, tuning: WalTuning) -> Result<TenantWal> {
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        if let Some(scan) = scan_wal_dir(&dir)? {
            for path in &scan.dropped {
                std::fs::remove_file(path).map_err(|e| io_err("remove", path, &e))?;
            }
            let last = scan
                .segments
                .last()
                .expect("scan holds at least one segment");
            if last.torn_bytes > 0 {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&last.path)
                    .map_err(|e| io_err("open", &last.path, &e))?;
                file.set_len(last.valid_len as u64)
                    .map_err(|e| io_err("truncate", &last.path, &e))?;
                file.sync_data()
                    .map_err(|e| io_err("sync", &last.path, &e))?;
            }
            let file = OpenOptions::new()
                .append(true)
                .open(&last.path)
                .map_err(|e| io_err("open", &last.path, &e))?;
            Ok(TenantWal {
                base_processed: scan.base_processed,
                writer: Mutex::new(Writer {
                    file,
                    segment: last.number,
                    segment_len: last.valid_len as u64,
                    synced_len: last.valid_len as u64,
                    next_seq: scan.next_seq,
                    unsynced_records: 0,
                    segments: scan
                        .segments
                        .iter()
                        .map(|s| (s.number, s.header.first_seq))
                        .collect(),
                    dead: None,
                }),
                dir,
                tuning,
            })
        } else {
            let path = dir.join(segment_file_name(1));
            let mut file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
            let header = encode_segment_header(SegmentHeader {
                base_processed: base_if_fresh,
                first_seq: 0,
            });
            file.write_all(&header)
                .map_err(|e| io_err("write", &path, &e))?;
            file.sync_data().map_err(|e| io_err("sync", &path, &e))?;
            Ok(TenantWal {
                base_processed: base_if_fresh,
                writer: Mutex::new(Writer {
                    file,
                    segment: 1,
                    segment_len: WAL_HEADER_LEN as u64,
                    synced_len: WAL_HEADER_LEN as u64,
                    next_seq: 0,
                    unsynced_records: 0,
                    segments: vec![(1, 0)],
                    dead: None,
                }),
                dir,
                tuning,
            })
        }
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The detector `processed` counter WAL seq 0 corresponds to.
    pub fn base_processed(&self) -> u64 {
        self.base_processed
    }

    /// Sequence number the next appended record will get (= records ever
    /// appended to this log).
    pub fn position(&self) -> u64 {
        self.lock().next_seq
    }

    /// Sequence number of the oldest retained record (> 0 after pruning).
    pub fn oldest_retained(&self) -> u64 {
        self.lock().segments[0].1
    }

    /// Live segment files.
    pub fn segment_count(&self) -> usize {
        self.lock().segments.len()
    }

    /// `true` after an injected crash killed this writer.
    pub fn is_dead(&self) -> bool {
        self.lock().dead.is_some()
    }

    fn lock(&self) -> MutexGuard<'_, Writer> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks the appender. The fleet holds the returned guard across
    /// append + enqueue so no other producer can interleave.
    pub(crate) fn appender(&self) -> WalAppender<'_> {
        WalAppender {
            wal: self,
            writer: self.lock(),
        }
    }

    /// Deletes sealed segments every record of which lies strictly below
    /// `watermark` (a segment is deletable when the *next* segment starts
    /// at or below the watermark). The active segment is never deleted.
    /// Returns the number of segments removed; a dead writer prunes
    /// nothing.
    pub(crate) fn prune_to(&self, watermark: u64) -> Result<usize> {
        let mut w = self.lock();
        if w.dead.is_some() {
            return Ok(0);
        }
        let mut deleted = 0;
        while w.segments.len() >= 2 && w.segments[1].1 <= watermark {
            let path = self.dir.join(segment_file_name(w.segments[0].0));
            std::fs::remove_file(&path).map_err(|e| io_err("remove", &path, &e))?;
            w.segments.remove(0);
            deleted += 1;
        }
        Ok(deleted)
    }

    /// Marks the writer dead (an injected crash outside the append path,
    /// e.g. crash-between-checkpoint-and-prune).
    pub(crate) fn kill(&self, reason: &str) {
        let mut w = self.lock();
        if w.dead.is_none() {
            w.dead = Some(reason.to_string());
        }
    }
}

/// The locked appender: while a fleet ingestion path holds one, no other
/// producer can append to (or reorder against) this tenant's log.
pub(crate) struct WalAppender<'a> {
    wal: &'a TenantWal,
    writer: MutexGuard<'a, Writer>,
}

impl WalAppender<'_> {
    /// Sequence number the next append gets.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn next_seq(&self) -> u64 {
        self.writer.next_seq
    }

    /// Appends one record (rotating first when due), applies the fsync
    /// policy, and returns the record's sequence number. `faults`
    /// supplies the armed crash plan, if any; an injected crash damages
    /// the file exactly as a real crash would, marks the writer dead and
    /// returns [`SpotError::Io`] — the caller must *not* enqueue the
    /// point (a real crash would have taken the process down before the
    /// enqueue).
    pub(crate) fn append(
        &mut self,
        tenant: &TenantId,
        point: &DataPoint,
        faults: Option<&FaultInjector>,
    ) -> Result<u64> {
        let wal = self.wal;
        let w = &mut *self.writer;
        if let Some(reason) = &w.dead {
            return Err(SpotError::Io(format!(
                "wal writer for tenant {tenant} is dead: {reason}"
            )));
        }
        let seq = w.next_seq;
        let mut frame = Vec::with_capacity(record_frame_len(point.dims()));
        encode_record(seq, point, &mut frame);
        // Rotate *before* the append so a frame never splits across
        // segments; a segment always keeps at least one record however
        // small the threshold.
        if w.segment_len > WAL_HEADER_LEN as u64
            && w.segment_len + frame.len() as u64 > wal.tuning.segment_bytes()
        {
            rotate(wal, w, tenant, faults)?;
        }
        let path = wal.dir.join(segment_file_name(w.segment));
        match faults.and_then(|f| f.take_wal_fault(tenant, seq)) {
            Some(WalFault::TornWrite { keep_bytes }) => {
                // The crash lands mid-`write`: only a prefix of the frame
                // reaches the file.
                let keep = keep_bytes.min(frame.len());
                w.file
                    .write_all(&frame[..keep])
                    .map_err(|e| io_err("write", &path, &e))?;
                let _ = w.file.sync_data();
                Err(die(w, tenant, format!("injected torn write at seq {seq}")))
            }
            Some(WalFault::FailFsync) => {
                // The sync fails and the process goes down with it:
                // everything since the last successful sync was only in
                // the page cache and is lost.
                w.file
                    .write_all(&frame)
                    .map_err(|e| io_err("write", &path, &e))?;
                w.file
                    .set_len(w.synced_len)
                    .map_err(|e| io_err("truncate", &path, &e))?;
                let _ = w.file.sync_data();
                Err(die(
                    w,
                    tenant,
                    format!("injected fsync failure at seq {seq}"),
                ))
            }
            Some(WalFault::KillAfterAppend) => {
                // The record makes it to stable storage; the process dies
                // before acknowledging (recovery must replay it).
                w.file
                    .write_all(&frame)
                    .map_err(|e| io_err("write", &path, &e))?;
                w.file.sync_data().map_err(|e| io_err("sync", &path, &e))?;
                w.segment_len += frame.len() as u64;
                w.synced_len = w.segment_len;
                w.next_seq += 1;
                Err(die(
                    w,
                    tenant,
                    format!("injected kill after appending seq {seq}"),
                ))
            }
            None => {
                w.file
                    .write_all(&frame)
                    .map_err(|e| io_err("write", &path, &e))?;
                w.segment_len += frame.len() as u64;
                w.next_seq += 1;
                w.unsynced_records += 1;
                let due = match wal.tuning.fsync {
                    FsyncPolicy::EveryRecord => true,
                    FsyncPolicy::EveryN(n) => w.unsynced_records >= n.max(1),
                    FsyncPolicy::OnRotate => false,
                };
                if due {
                    w.file.sync_data().map_err(|e| io_err("sync", &path, &e))?;
                    w.synced_len = w.segment_len;
                    w.unsynced_records = 0;
                }
                Ok(seq)
            }
        }
    }
}

/// Marks the writer dead and builds the error the simulated crash
/// surfaces.
fn die(w: &mut Writer, tenant: &TenantId, reason: String) -> SpotError {
    w.dead = Some(reason.clone());
    SpotError::Io(format!("injected crash ({reason}) for tenant {tenant}"))
}

/// Seals the active segment (sync) and opens the next one. An injected
/// rotation crash leaves the next segment's header half-written — the
/// residue [`spot_stream::wal::scan_wal_dir`] drops on recovery.
fn rotate(
    wal: &TenantWal,
    w: &mut Writer,
    tenant: &TenantId,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let sealed = wal.dir.join(segment_file_name(w.segment));
    w.file
        .sync_data()
        .map_err(|e| io_err("sync", &sealed, &e))?;
    w.synced_len = w.segment_len;
    w.unsynced_records = 0;
    let next = w.segment + 1;
    let path = wal.dir.join(segment_file_name(next));
    if faults.is_some_and(|f| f.take_rotation_crash(tenant)) {
        std::fs::write(&path, &WAL_MAGIC[..4]).map_err(|e| io_err("write", &path, &e))?;
        return Err(die(
            w,
            tenant,
            format!("injected crash mid-rotation to segment {next}"),
        ));
    }
    let mut file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
    let header = encode_segment_header(SegmentHeader {
        base_processed: wal.base_processed,
        first_seq: w.next_seq,
    });
    file.write_all(&header)
        .map_err(|e| io_err("write", &path, &e))?;
    file.sync_data().map_err(|e| io_err("sync", &path, &e))?;
    w.file = file;
    w.segment = next;
    w.segment_len = WAL_HEADER_LEN as u64;
    w.synced_len = WAL_HEADER_LEN as u64;
    w.segments.push((next, w.next_seq));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_stream::wal::read_wal_from;

    fn tid(s: &str) -> TenantId {
        TenantId::new(s).expect("valid tenant id")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spot-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pt(v: f64) -> DataPoint {
        DataPoint::new(vec![v, 1.0 - v])
    }

    #[test]
    fn append_resume_roundtrip_preserves_every_record() {
        let dir = temp_dir("resume");
        let tuning = WalTuning {
            fsync: FsyncPolicy::EveryRecord,
            ..WalTuning::default()
        };
        let t = tid("a");
        {
            let wal = TenantWal::open(dir.clone(), 7, tuning).unwrap();
            let mut ap = wal.appender();
            for i in 0..5 {
                assert_eq!(ap.append(&t, &pt(i as f64 * 0.1), None).unwrap(), i);
            }
        }
        // Reopen: positions and base survive, appends continue the seq.
        let wal = TenantWal::open(dir.clone(), 999, tuning).unwrap();
        assert_eq!(wal.base_processed(), 7);
        assert_eq!(wal.position(), 5);
        {
            let mut ap = wal.appender();
            assert_eq!(ap.next_seq(), 5);
            ap.append(&t, &pt(0.9), None).unwrap();
        }
        let records = read_wal_from(&dir, 0).unwrap();
        assert_eq!(records.len(), 6);
        assert_eq!(records[5].0, 5);
        assert_eq!(records[5].1.values()[0].to_bits(), 0.9f64.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_prune_respect_watermark() {
        let dir = temp_dir("rotate");
        // Tiny segments: every record rotates.
        let tuning = WalTuning {
            fsync: FsyncPolicy::OnRotate,
            segment_bytes: 1,
        };
        let t = tid("a");
        let wal = TenantWal::open(dir.clone(), 0, tuning).unwrap();
        {
            let mut ap = wal.appender();
            for i in 0..4 {
                ap.append(&t, &pt(i as f64 * 0.2), None).unwrap();
            }
        }
        assert_eq!(wal.segment_count(), 4);
        // Watermark 2: segments holding seqs 0 and 1 are deletable.
        assert_eq!(wal.prune_to(2).unwrap(), 2);
        assert_eq!(wal.oldest_retained(), 2);
        // Replay from the watermark still works; from before it errors.
        assert_eq!(read_wal_from(&dir, 2).unwrap().len(), 2);
        assert!(read_wal_from(&dir, 0).is_err());
        // The active segment is never pruned.
        assert_eq!(wal.prune_to(u64::MAX).unwrap(), 1);
        assert_eq!(wal.segment_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_dir_names_escape_and_cannot_collide() {
        assert_eq!(tenant_dir_name(&tid("plain-id_0.9")), "plain-id_0.9");
        assert_eq!(tenant_dir_name(&tid("a/b")), "a%2Fb");
        // A literal "%2F" in an id escapes its '%', so it cannot collide
        // with the escaped form of "a/b".
        assert_eq!(tenant_dir_name(&tid("a%2Fb")), "a%252Fb");
        assert_ne!(tenant_dir_name(&tid("a/b")), tenant_dir_name(&tid("a%2Fb")));
    }

    #[test]
    fn dead_writer_rejects_appends_and_skips_prune() {
        let dir = temp_dir("dead");
        let t = tid("a");
        let wal = TenantWal::open(dir.clone(), 0, WalTuning::default()).unwrap();
        wal.appender().append(&t, &pt(0.5), None).unwrap();
        wal.kill("test crash");
        assert!(wal.is_dead());
        assert!(matches!(
            wal.appender().append(&t, &pt(0.5), None),
            Err(SpotError::Io(_))
        ));
        assert_eq!(wal.prune_to(u64::MAX).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
