//! The multi-tenant fleet: a registry of detectors on one shared executor.
//!
//! # Fault containment
//!
//! Every path that runs tenant detector code (`process`, `process_batch`,
//! `drain`, `pump`) executes under a panic guard. A panic — the tenant's
//! own detector code, a worker-pool job re-raised on the dispatching
//! thread, or an injected fault — is caught, converted into a typed
//! [`SpotError::TenantPoisoned`], and **quarantines only that tenant**:
//! co-tenants keep executing on the shared pool, bit-identical to a run
//! where the faulted tenant never existed. A quarantined tenant's
//! in-memory detector is untrusted (the panic may have torn it mid-update
//! behind its non-poisoning lock), so every processing and checkpoint
//! operation fails until the tenant is restored from a checkpoint — see
//! [`SpotFleet::revive_tenant`] and the [`crate::Supervisor`] that
//! automates restoration. Ingestion keeps enqueuing for a quarantined
//! tenant (subject to its [`OverloadPolicy`]) so the backlog survives into
//! recovery.

use crate::checkpoint::FleetCheckpoint;
use crate::faults::{FaultInjector, FaultPlan};
use crate::health::{IngestOutcome, OverloadPolicy, QuarantineInfo, TenantHealth};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use spot::{
    LearningReport, SharedSpot, Spot, SpotCheckpoint, SpotConfig, SpotStats, SynopsisFootprint,
    Verdict,
};
use spot_synopsis::{panic_message, ExecutorHandle, SerialExecutor, StoreExecutor};
use spot_types::{DataPoint, Result, SpotError, TenantId};
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Fleet-wide knobs. `Default` gives a 1024-point queue per tenant and
/// 256-point micro-batches (matching `Spot::BATCH_RUN`, so one drain pass
/// is one maintenance-bounded run in the common case).
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Capacity of each tenant's bounded ingestion queue (clamped to at
    /// least 1). What happens when the queue is full is the tenant's
    /// [`OverloadPolicy`]: block the producer (default), shed, or sample.
    pub queue_capacity: usize,
    /// Maximum points one [`SpotFleet::drain`] pass processes (clamped to
    /// at least 1).
    pub micro_batch: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 1024,
            micro_batch: 256,
        }
    }
}

/// Aggregated logical counters over every tenant, plus queue occupancy and
/// the supervision plane's fault/overload counters. Served entirely from
/// lock-free mirrors (each tenant's stats seqlock, queue counter, health
/// tag and overload atomics) — reading it never blocks, or is blocked by,
/// ingestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Tenants currently quarantined after a panic.
    pub quarantined: usize,
    /// Tenants marked failed (recovery budget exhausted).
    pub failed: usize,
    /// Points waiting in tenant ingestion queues (not yet processed).
    pub queued: usize,
    /// Sum of [`SpotStats::processed`] over all tenants.
    pub processed: u64,
    /// Sum of [`SpotStats::outliers`] over all tenants.
    pub outliers: u64,
    /// Sum of [`SpotStats::evolutions`] over all tenants.
    pub evolutions: u64,
    /// Sum of [`SpotStats::os_added`] over all tenants.
    pub os_added: u64,
    /// Sum of [`SpotStats::drift_events`] over all tenants.
    pub drift_events: u64,
    /// Sum of [`SpotStats::cells_pruned`] over all tenants.
    pub cells_pruned: u64,
    /// Points dropped by `Shed`/`Sample` overload policies, all tenants.
    pub shed: u64,
    /// Points admitted by the `Sample` policy's 1-in-k survivor slot.
    pub sampled_kept: u64,
    /// Tenant panics caught (each moved one tenant to quarantine).
    pub panics: u64,
    /// Successful tenant restorations ([`SpotFleet::revive_tenant`]).
    pub recoveries: u64,
}

/// Aggregated synopsis memory over every tenant — from each tenant's
/// lock-free `LiveCounters` mirror; never touches a detector lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetFootprint {
    /// Registered tenants.
    pub tenants: usize,
    /// Sum of populated base cells.
    pub base_cells: usize,
    /// Sum of populated projected cells.
    pub projected_cells: usize,
    /// Sum of approximate synopsis bytes.
    pub approx_bytes: usize,
}

// `Tenant::state` mirror values — a lock-free fast gate so healthy-path
// operations never touch the health mutex.
const HEALTH_HEALTHY: u8 = 0;
const HEALTH_QUARANTINED: u8 = 1;
const HEALTH_FAILED: u8 = 2;

// `Tenant::policy_kind` values (with `policy_k` carrying Sample's k).
const POLICY_BLOCK: u8 = 0;
const POLICY_SHED: u8 = 1;
const POLICY_SAMPLE: u8 = 2;

/// One registered tenant: the detector handle plus its bounded queue and
/// supervision-plane state.
struct Tenant {
    shared: SharedSpot,
    tx: Sender<DataPoint>,
    /// Drains are exclusive per tenant (points must commit in arrival
    /// order, so the guard is held through processing); concurrent drains
    /// of *different* tenants proceed freely. `None` after eviction — the
    /// dropped receiver is what unblocks producers stuck in a full-queue
    /// `send` (their `SendError` becomes `UnknownTenant`).
    rx: Mutex<Option<Receiver<DataPoint>>>,
    /// Points currently queued: incremented *before* the enqueue (rolled
    /// back on failure), decremented per dequeued point — so the counter
    /// never lags the channel and a concurrent drain cannot wrap it below
    /// zero. May transiently overcount by the producers currently blocked
    /// in `send`. A lock-free occupancy mirror for [`SpotFleet::stats`]
    /// (the channel itself exposes no length).
    queued: AtomicUsize,
    /// Full health state (quarantine reason, counters). Taken only on the
    /// unhealthy path and on transitions; `state` is the hot-path mirror.
    health: Mutex<TenantHealth>,
    /// Lock-free mirror of the health discriminant (`HEALTH_*`).
    state: AtomicU8,
    /// Overload policy, packed into atomics so `ingest` never locks:
    /// `policy_kind` is a `POLICY_*` tag, `policy_k` Sample's `keep_one_in`.
    policy_kind: AtomicU8,
    policy_k: AtomicU32,
    /// Full-queue encounters (drives the deterministic 1-in-k sampler).
    overflow_seen: AtomicU64,
    /// Points dropped by `Shed`/`Sample`.
    shed: AtomicU64,
    /// Points admitted through the `Sample` survivor slot.
    sampled_kept: AtomicU64,
}

impl Tenant {
    /// A fresh healthy tenant with default (`Block`) overload policy.
    fn fresh(spot: Spot, capacity: usize) -> Tenant {
        let (tx, rx) = bounded(capacity);
        Tenant {
            shared: SharedSpot::with_service_executor(spot),
            tx,
            rx: Mutex::new(Some(rx)),
            queued: AtomicUsize::new(0),
            health: Mutex::new(TenantHealth::Healthy),
            state: AtomicU8::new(HEALTH_HEALTHY),
            policy_kind: AtomicU8::new(POLICY_BLOCK),
            policy_k: AtomicU32::new(1),
            overflow_seen: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sampled_kept: AtomicU64::new(0),
        }
    }

    fn policy(&self) -> OverloadPolicy {
        match self.policy_kind.load(Ordering::Relaxed) {
            POLICY_SHED => OverloadPolicy::Shed,
            POLICY_SAMPLE => OverloadPolicy::Sample {
                keep_one_in: self.policy_k.load(Ordering::Relaxed).max(1),
            },
            _ => OverloadPolicy::Block,
        }
    }

    fn set_policy(&self, policy: OverloadPolicy) {
        let (kind, k) = match policy {
            OverloadPolicy::Block => (POLICY_BLOCK, 1),
            OverloadPolicy::Shed => (POLICY_SHED, 1),
            OverloadPolicy::Sample { keep_one_in } => (POLICY_SAMPLE, keep_one_in.max(1)),
        };
        self.policy_k.store(k, Ordering::Relaxed);
        self.policy_kind.store(kind, Ordering::Relaxed);
    }

    fn health_snapshot(&self) -> TenantHealth {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

struct FleetInner {
    exec: ExecutorHandle,
    config: FleetConfig,
    tenants: RwLock<HashMap<TenantId, Arc<Tenant>>>,
    /// Armed fault plan (tests only). `faults_armed` is the lock-free
    /// fast flag consulted on hot paths; the mutex is touched only when a
    /// plan is actually armed.
    faults: Mutex<Option<Arc<FaultInjector>>>,
    faults_armed: AtomicBool,
    /// Tenant panics caught fleet-wide.
    panics: AtomicU64,
    /// Successful tenant restorations fleet-wide.
    recoveries: AtomicU64,
}

/// A registry of named SPOT detectors sharing one executor service.
///
/// Cloning the fleet clones a handle (tenants and executor are shared).
/// Every tenant keeps full single-stream semantics — its own
/// configuration, seed, SST, clock and stats — while all synopsis shard
/// phases, verdict sweeps and checkpoint captures fan out over the one
/// worker pool the shared [`ExecutorHandle`] owns. See the crate docs for
/// the determinism guarantee and the module docs for fault containment.
#[derive(Clone)]
pub struct SpotFleet {
    inner: Arc<FleetInner>,
}

impl SpotFleet {
    /// A fleet on the build's default executor service: machine-sized pool
    /// engagement with the `parallel` feature, serial otherwise.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_executor(config, ExecutorHandle::default_for_build())
    }

    /// A fleet with an explicit worker budget: `Some(0)` forces serial,
    /// `Some(n)` an `n`-worker pool, `None` machine-sized defaults.
    pub fn with_workers(config: FleetConfig, workers: Option<usize>) -> Self {
        let exec = match workers {
            Some(0) => ExecutorHandle::serial(),
            Some(n) => ExecutorHandle::with_workers(n),
            None => ExecutorHandle::auto(),
        };
        Self::with_executor(config, exec)
    }

    /// A fleet dispatching through a caller-supplied executor service
    /// (e.g. one also shared with detectors outside the fleet).
    pub fn with_executor(config: FleetConfig, exec: ExecutorHandle) -> Self {
        SpotFleet {
            inner: Arc::new(FleetInner {
                exec,
                config: FleetConfig {
                    queue_capacity: config.queue_capacity.max(1),
                    micro_batch: config.micro_batch.max(1),
                },
                tenants: RwLock::new(HashMap::new()),
                faults: Mutex::new(None),
                faults_armed: AtomicBool::new(false),
                panics: AtomicU64::new(0),
                recoveries: AtomicU64::new(0),
            }),
        }
    }

    /// The shared executor service. All tenants dispatch through it; its
    /// `pools_spawned()` stays at ≤ 1 however many tenants register.
    pub fn executor(&self) -> &ExecutorHandle {
        &self.inner.exec
    }

    /// Retargets the shared worker budget (see [`ExecutorHandle::set_workers`]).
    /// Verdicts are bit-identical for every setting.
    pub fn set_workers(&self, workers: Option<usize>) {
        self.inner.exec.set_workers(workers);
    }

    // ---- registry -------------------------------------------------------

    /// Registers a new tenant with its own detector configuration. The
    /// detector is built on the fleet's shared executor service. Errors
    /// with [`SpotError::DuplicateTenant`] when the name is taken.
    pub fn register(&self, id: TenantId, config: SpotConfig) -> Result<()> {
        let spot = Spot::with_executor(config, self.inner.exec.clone())?;
        self.install(id, spot, false)
    }

    /// Registers a pre-built detector (it is rewired onto the fleet's
    /// shared executor service — bit-identical, see [`Spot::set_executor`]).
    pub fn register_spot(&self, id: TenantId, mut spot: Spot) -> Result<()> {
        spot.set_executor(self.inner.exec.clone());
        self.install(id, spot, false)
    }

    fn install(&self, id: TenantId, spot: Spot, replace: bool) -> Result<()> {
        let tenant = Arc::new(Tenant::fresh(spot, self.inner.config.queue_capacity));
        let mut map = write_lock(&self.inner.tenants);
        if !replace && map.contains_key(&id) {
            return Err(SpotError::DuplicateTenant(id.to_string()));
        }
        map.insert(id, tenant);
        Ok(())
    }

    /// Removes a tenant, dropping its detector and discarding any points
    /// still queued. Errors with [`SpotError::UnknownTenant`]. Producers
    /// blocked in [`SpotFleet::ingest`] on the evicted tenant's full
    /// queue unblock with `UnknownTenant` (the queue's receiving half is
    /// dropped here, failing their pending `send`).
    pub fn evict(&self, id: &TenantId) -> Result<()> {
        let tenant = write_lock(&self.inner.tenants)
            .remove(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        // Disconnect the channel even if a blocked producer still holds
        // an `Arc<Tenant>` of its own — dropping the registry's Arc alone
        // would leave the receiver alive inside that clone.
        *tenant.rx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        Ok(())
    }

    /// Registered tenant ids, sorted (a stable order for reports and
    /// checkpoints).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let map = read_lock(&self.inner.tenants);
        let mut ids: Vec<TenantId> = map.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        read_lock(&self.inner.tenants).len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &TenantId) -> bool {
        read_lock(&self.inner.tenants).contains_key(id)
    }

    fn tenant(&self, id: &TenantId) -> Result<Arc<Tenant>> {
        read_lock(&self.inner.tenants)
            .get(id)
            .cloned()
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))
    }

    // ---- the supervision plane ------------------------------------------

    /// One tenant's health state (quarantine reason and counters included).
    pub fn health(&self, id: &TenantId) -> Result<TenantHealth> {
        Ok(self.tenant(id)?.health_snapshot())
    }

    /// Sets one tenant's overload policy (effective for subsequent
    /// [`SpotFleet::ingest`] calls; `Sample { keep_one_in: 0 }` is
    /// normalized to `1`). The policy survives [`SpotFleet::revive_tenant`]
    /// but not `restore_tenant`/`register` (those are fresh registrations).
    pub fn set_overload_policy(&self, id: &TenantId, policy: OverloadPolicy) -> Result<()> {
        self.tenant(id)?.set_policy(policy);
        Ok(())
    }

    /// One tenant's current overload policy.
    pub fn overload_policy(&self, id: &TenantId) -> Result<OverloadPolicy> {
        Ok(self.tenant(id)?.policy())
    }

    /// Arms a deterministic [`FaultPlan`] (replacing any previous plan,
    /// ordinal counters reset). Test harness facility: with no plan armed
    /// the hot paths check one atomic flag and nothing else.
    pub fn arm_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Arc::new(FaultInjector::new(plan)));
        self.inner.faults_armed.store(true, Ordering::Release);
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&self) {
        self.inner.faults_armed.store(false, Ordering::Release);
        *self.inner.faults.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn injector(&self) -> Option<Arc<FaultInjector>> {
        if !self.inner.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        self.inner
            .faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Consults the armed fault plan for one recovery attempt (supervisor
    /// hook; `false` when no plan is armed).
    pub(crate) fn recovery_attempt_must_fail(&self, id: &TenantId) -> bool {
        self.injector().is_some_and(|i| i.take_recovery_failure(id))
    }

    /// Transitions a quarantined tenant to the terminal `Failed` state
    /// (supervisor hook, called when the retry budget is exhausted).
    pub(crate) fn mark_failed(&self, id: &TenantId) -> Result<()> {
        let tenant = self.tenant(id)?;
        let mut health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
        if let TenantHealth::Quarantined(info) = &*health {
            *health = TenantHealth::Failed(info.clone());
            tenant.state.store(HEALTH_FAILED, Ordering::Release);
        }
        Ok(())
    }

    /// The lock-free unhealthy gate: errors with the tenant's quarantine
    /// reason when it is not `Healthy`.
    fn gate(&self, id: &TenantId, tenant: &Tenant) -> Result<()> {
        if tenant.state.load(Ordering::Acquire) == HEALTH_HEALTHY {
            return Ok(());
        }
        let health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
        match &*health {
            TenantHealth::Healthy => Ok(()),
            TenantHealth::Quarantined(info) | TenantHealth::Failed(info) => {
                Err(SpotError::TenantPoisoned {
                    tenant: id.to_string(),
                    panic: info.reason.clone(),
                })
            }
        }
    }

    /// Records a caught panic: quarantines the tenant (first report wins)
    /// and returns the typed error for the caller.
    fn quarantine(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        reason: String,
        failed_batch: u64,
    ) -> SpotError {
        // The stats seqlock still holds the last *stable* publication: the
        // panicked operation never reached its publish step, so this read
        // cannot observe (or spin on) a torn write.
        let processed = tenant.shared.stats().processed;
        {
            let mut health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
            if health.is_healthy() {
                *health = TenantHealth::Quarantined(QuarantineInfo {
                    reason: reason.clone(),
                    processed,
                    failed_batch,
                });
                tenant.state.store(HEALTH_QUARANTINED, Ordering::Release);
                self.inner.panics.fetch_add(1, Ordering::Relaxed);
            }
        }
        SpotError::TenantPoisoned {
            tenant: id.to_string(),
            panic: reason,
        }
    }

    /// Runs tenant detector work under the panic guard. A panic anywhere
    /// inside — including one caught in a pool worker and re-raised on
    /// this (dispatching) thread — quarantines this tenant only.
    fn run_guarded(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        points: &[DataPoint],
    ) -> Result<Vec<Verdict>> {
        self.gate(id, tenant)?;
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let injected = self
            .injector()
            .and_then(|i| i.take_panic_offset(id, points.len()));
        // AssertUnwindSafe: on panic the tenant is quarantined and its
        // detector is never touched again until replaced from a checkpoint,
        // so the torn state the unwind leaves behind is unobservable.
        let outcome = catch_unwind(AssertUnwindSafe(|| match injected {
            Some(off) => tenant.shared.with(|s| {
                // Apply the pre-fault prefix first so the panic fires with
                // the detector genuinely mid-batch behind its lock — the
                // torn state a real fault produces.
                for p in &points[..off] {
                    s.process(p)?;
                }
                panic_any(format!(
                    "injected fault: panic at offset {off} of a {}-point batch for tenant {id}",
                    points.len()
                ))
            }),
            None if points.len() == 1 => tenant.shared.process(&points[0]).map(|v| vec![v]),
            None => tenant.shared.process_batch(points),
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => Err(self.quarantine(
                id,
                tenant,
                panic_message(payload.as_ref()),
                points.len() as u64,
            )),
        }
    }

    // ---- the tenant lifecycle: learn → ingest/drain → checkpoint --------

    /// Runs a tenant's learning stage, returning the same
    /// [`LearningReport`] a standalone detector produces. Errors with
    /// [`SpotError::TenantPoisoned`] on a quarantined tenant.
    pub fn learn(&self, id: &TenantId, training: &[DataPoint]) -> Result<LearningReport> {
        let tenant = self.tenant(id)?;
        self.gate(id, &tenant)?;
        tenant.shared.learn(training)
    }

    /// Processes one point synchronously (bypasses the queue; do not mix
    /// with queued ingestion for the same tenant unless the queue is
    /// drained first — verdict order is arrival order either way). Runs
    /// under the panic guard: a panic quarantines this tenant only.
    pub fn process(&self, id: &TenantId, point: &DataPoint) -> Result<Verdict> {
        let tenant = self.tenant(id)?;
        let mut verdicts = self.run_guarded(id, &tenant, std::slice::from_ref(point))?;
        Ok(verdicts.pop().expect("one verdict per point"))
    }

    /// Processes a batch synchronously through the shared executor, under
    /// the panic guard.
    pub fn process_batch(&self, id: &TenantId, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        self.run_guarded(id, &tenant, points)
    }

    /// Enqueues one point under the tenant's [`OverloadPolicy`]. With the
    /// default `Block` policy this **blocks** while the queue is full
    /// (backpressure: a slow tenant stalls its own producers, never the
    /// co-tenants) and always returns [`IngestOutcome::Enqueued`]; `Shed`
    /// and `Sample` never block and may return [`IngestOutcome::Shed`].
    /// Quarantined tenants still enqueue — the backlog is carried into the
    /// recovered tenant by [`SpotFleet::revive_tenant`].
    pub fn ingest(&self, id: &TenantId, point: DataPoint) -> Result<IngestOutcome> {
        let tenant = self.tenant(id)?;
        let policy = tenant.policy();
        // Scripted queue-full windows apply to the non-blocking policies
        // only: a blocking send on a queue with room returns immediately,
        // so a faked "full" has no observable Block behavior to test.
        let forced_full = !matches!(policy, OverloadPolicy::Block)
            && self.injector().is_some_and(|i| i.ingest_forced_full(id));
        match policy {
            OverloadPolicy::Block => {
                self.enqueue_blocking(id, &tenant, point)?;
                Ok(IngestOutcome::Enqueued)
            }
            OverloadPolicy::Shed => {
                let rejected = if forced_full {
                    Some(point)
                } else {
                    self.enqueue_nonblocking(id, &tenant, point)?
                };
                match rejected {
                    None => Ok(IngestOutcome::Enqueued),
                    Some(_) => {
                        tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                        tenant.shed.fetch_add(1, Ordering::Relaxed);
                        Ok(IngestOutcome::Shed)
                    }
                }
            }
            OverloadPolicy::Sample { keep_one_in } => {
                let k = u64::from(keep_one_in.max(1));
                let rejected = if forced_full {
                    Some(point)
                } else {
                    self.enqueue_nonblocking(id, &tenant, point)?
                };
                match rejected {
                    None => Ok(IngestOutcome::Enqueued),
                    Some(point) => {
                        // Deterministic 1-in-k: admit full-queue encounters
                        // 0, k, 2k, … — a pure function of the encounter
                        // ordinal, independent of clocks and scheduling.
                        let n = tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                        if n % k == 0 {
                            self.enqueue_blocking(id, &tenant, point)?;
                            tenant.sampled_kept.fetch_add(1, Ordering::Relaxed);
                            Ok(IngestOutcome::Enqueued)
                        } else {
                            tenant.shed.fetch_add(1, Ordering::Relaxed);
                            Ok(IngestOutcome::Shed)
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking enqueue: `Ok(false)` when the queue is at capacity.
    /// Policy-independent (never sheds, never consults the fault plan).
    pub fn try_ingest(&self, id: &TenantId, point: DataPoint) -> Result<bool> {
        let tenant = self.tenant(id)?;
        Ok(self.enqueue_nonblocking(id, &tenant, point)?.is_none())
    }

    fn enqueue_blocking(&self, id: &TenantId, tenant: &Tenant, point: DataPoint) -> Result<()> {
        // Count before the send so a drain that pops the point immediately
        // can never decrement a counter that was not yet incremented.
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        tenant.tx.send(point).map_err(|_| {
            tenant.queued.fetch_sub(1, Ordering::Relaxed);
            SpotError::UnknownTenant(id.to_string())
        })
    }

    /// `Ok(None)`: enqueued. `Ok(Some(point))`: queue full, point handed
    /// back to the caller (for the sampler's survivor slot).
    fn enqueue_nonblocking(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        point: DataPoint,
    ) -> Result<Option<DataPoint>> {
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        match tenant.tx.try_send(point) {
            Ok(()) => Ok(None),
            Err(TrySendError::Full(point)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Ok(Some(point))
            }
            Err(TrySendError::Disconnected(_)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Err(SpotError::UnknownTenant(id.to_string()))
            }
        }
    }

    /// Points currently queued for `id`.
    pub fn queue_len(&self, id: &TenantId) -> Result<usize> {
        Ok(self.tenant(id)?.queued.load(Ordering::Relaxed))
    }

    /// Drains up to one micro-batch (`FleetConfig::micro_batch` points)
    /// from the tenant's queue and processes it through the shared
    /// executor, returning the verdicts in arrival order. An empty queue
    /// returns an empty vector. Call in a loop (or use
    /// [`SpotFleet::drain_fully`]) to exhaust a backlog.
    ///
    /// An error (e.g. a NaN point → [`SpotError::NonFiniteValue`])
    /// discards the dequeued micro-batch: the detector's all-or-nothing
    /// validation rejected it wholesale, and a poisoned batch cannot be
    /// replayed. Validate upstream when inputs are untrusted. A
    /// quarantined tenant errors with [`SpotError::TenantPoisoned`]
    /// *without* dequeuing — its backlog is preserved for recovery.
    pub fn drain(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        self.drain_tenant(id, &tenant)
    }

    /// Drains the tenant's queue to exhaustion (micro-batch at a time).
    pub fn drain_fully(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        let mut verdicts = Vec::new();
        loop {
            let batch = self.drain_tenant(id, &tenant)?;
            if batch.is_empty() {
                return Ok(verdicts);
            }
            verdicts.extend(batch);
        }
    }

    /// One service pass over the whole fleet: drains up to one micro-batch
    /// from every tenant (sorted id order). The building block for a fleet
    /// service loop.
    ///
    /// Faults are **isolated, not propagated**: a tenant whose drain fails
    /// — quarantined after a panic, or a rejected batch — is reported as
    /// its own `(id, Err(..))` entry and the sweep continues; co-tenants
    /// are drained exactly as if the faulted tenant did not exist. Healthy
    /// tenants with nothing queued are omitted; a quarantined tenant is
    /// reported every pass until it recovers (or is evicted). Tenants
    /// evicted mid-pass are skipped.
    pub fn pump(&self) -> Vec<(TenantId, Result<Vec<Verdict>>)> {
        let mut out = Vec::new();
        for id in self.tenant_ids() {
            // A tenant evicted between the listing and the drain is skipped.
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            match self.drain_tenant(&id, &tenant) {
                Ok(verdicts) if verdicts.is_empty() => {}
                result => out.push((id, result)),
            }
        }
        out
    }

    fn drain_tenant(&self, id: &TenantId, tenant: &Tenant) -> Result<Vec<Verdict>> {
        // Gate *before* touching the queue: a quarantined tenant must not
        // consume its backlog — those points are carried into the
        // recovered tenant by `revive_tenant`.
        self.gate(id, tenant)?;
        // The rx guard is held through processing: it is what serializes
        // concurrent drains of this tenant, and releasing it between the
        // pop and the process_batch would let a second drainer commit a
        // later micro-batch first, breaking arrival order. Producers are
        // unaffected — they block on the channel's capacity, not this
        // lock. A panic inside `run_guarded` is caught *inside* this
        // frame, so the guard is released normally and the queue stays
        // drainable after recovery.
        let rx = tenant.rx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rx) = rx.as_ref() else {
            // Evicted while this caller still held an Arc to the entry.
            return Ok(Vec::new());
        };
        let mut batch: Vec<DataPoint> = Vec::new();
        while batch.len() < self.inner.config.micro_batch {
            match rx.try_recv() {
                Ok(p) => {
                    tenant.queued.fetch_sub(1, Ordering::Relaxed);
                    batch.push(p);
                }
                Err(_) => break,
            }
        }
        self.run_guarded(id, tenant, &batch)
    }

    // ---- monitoring (never takes a detector lock) -----------------------

    /// Aggregated logical counters + queue occupancy + supervision
    /// counters over every tenant. Reads each tenant's stats seqlock,
    /// queue counter and health/overload atomics only — never any detector
    /// lock, so dashboards cannot stall (or be stalled by) ingestion.
    pub fn stats(&self) -> FleetStats {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetStats {
            tenants: tenants.len(),
            panics: self.inner.panics.load(Ordering::Relaxed),
            recoveries: self.inner.recoveries.load(Ordering::Relaxed),
            ..FleetStats::default()
        };
        for t in &tenants {
            let s = t.shared.stats();
            match t.state.load(Ordering::Acquire) {
                HEALTH_QUARANTINED => agg.quarantined += 1,
                HEALTH_FAILED => agg.failed += 1,
                _ => {}
            }
            agg.queued += t.queued.load(Ordering::Relaxed);
            agg.processed += s.processed;
            agg.outliers += s.outliers;
            agg.evolutions += s.evolutions;
            agg.os_added += s.os_added;
            agg.drift_events += s.drift_events;
            agg.cells_pruned += s.cells_pruned;
            agg.shed += t.shed.load(Ordering::Relaxed);
            agg.sampled_kept += t.sampled_kept.load(Ordering::Relaxed);
        }
        agg
    }

    /// One tenant's logical counters (lock-free seqlock read).
    pub fn tenant_stats(&self, id: &TenantId) -> Result<SpotStats> {
        Ok(self.tenant(id)?.shared.stats())
    }

    /// Aggregated synopsis memory over every tenant (lock-free mirrors).
    pub fn footprint(&self) -> FleetFootprint {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetFootprint {
            tenants: tenants.len(),
            ..FleetFootprint::default()
        };
        for t in &tenants {
            let f = t.shared.footprint();
            agg.base_cells += f.base_cells;
            agg.projected_cells += f.projected_cells;
            agg.approx_bytes += f.approx_bytes;
        }
        agg
    }

    /// One tenant's synopsis footprint (lock-free mirror read).
    pub fn tenant_footprint(&self, id: &TenantId) -> Result<SynopsisFootprint> {
        Ok(self.tenant(id)?.shared.footprint())
    }

    /// Runs a closure with exclusive access to one tenant's detector (the
    /// escape hatch for anything the fleet API does not cover). Not
    /// health-gated and not panic-guarded: the caller sees the detector as
    /// it is, torn state included — check [`SpotFleet::health`] first when
    /// that matters.
    pub fn with_tenant<R>(&self, id: &TenantId, f: impl FnOnce(&mut Spot) -> R) -> Result<R> {
        Ok(self.tenant(id)?.shared.with(f))
    }

    // ---- durability -----------------------------------------------------

    /// Captures a versioned checkpoint of every **healthy** tenant (sorted
    /// id order). Each tenant's capture is the standard v2
    /// `SpotCheckpoint` — one claim unit per projected store, dispatched
    /// over the shared pool when the service is pooled — so a tenant
    /// restored from it is bit-exact, standalone or in any fleet.
    /// Quarantined/failed tenants are skipped: their in-memory state is
    /// untrusted and must not contaminate a checkpoint (restore them from
    /// a pre-fault shadow instead). Queued-but-undrained points are *not*
    /// part of the checkpoint (they have not been processed; drain first
    /// for a checkpoint at a chosen stream position).
    pub fn checkpoint(&self) -> FleetCheckpoint {
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        let mut tenants = Vec::new();
        for id in self.tenant_ids() {
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            if tenant.state.load(Ordering::Acquire) != HEALTH_HEALTHY {
                continue;
            }
            let cp = tenant.shared.with(|s| s.checkpoint_with(exec));
            tenants.push((id, cp));
        }
        FleetCheckpoint::new(tenants)
    }

    /// Captures one healthy tenant's checkpoint (the supervisor's shadow
    /// primitive). Errors with [`SpotError::TenantPoisoned`] when the
    /// tenant is quarantined/failed — a torn detector must never be
    /// checkpointed.
    pub fn checkpoint_tenant(&self, id: &TenantId) -> Result<SpotCheckpoint> {
        let tenant = self.tenant(id)?;
        self.gate(id, &tenant)?;
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        Ok(tenant.shared.with(|s| s.checkpoint_with(exec)))
    }

    /// Replaces a registered tenant's detector with one restored from a
    /// checkpoint, **carrying over** its queued backlog (arrival order
    /// preserved — both queues share one capacity bound, so the backlog
    /// always fits), its overload policy and its overload counters, and
    /// marking it healthy. This is the recovery primitive the
    /// [`crate::Supervisor`] drives for quarantined tenants; it also works
    /// on a healthy tenant (a forced rollback). Returns the number of
    /// backlog points carried over. Errors with
    /// [`SpotError::UnknownTenant`] when `id` is not registered.
    ///
    /// Points a producer ingests during the swap itself may land in the
    /// retiring queue and be dropped with it — drive recovery from the
    /// thread that also services the tenant, or pause its producers.
    pub fn revive_tenant(&self, id: &TenantId, cp: &SpotCheckpoint) -> Result<u64> {
        let mut spot = Spot::from_checkpoint(cp)?;
        spot.set_executor(self.inner.exec.clone());
        let replacement = Tenant::fresh(spot, self.inner.config.queue_capacity);
        // Hold the registry write lock across the backlog transfer so no
        // new `ingest` can resolve the retiring entry mid-swap.
        let mut map = write_lock(&self.inner.tenants);
        let old = map
            .get(id)
            .cloned()
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        let mut carried = 0u64;
        {
            let guard = old.rx.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(old_rx) = guard.as_ref() {
                while let Ok(p) = old_rx.try_recv() {
                    old.queued.fetch_sub(1, Ordering::Relaxed);
                    if replacement.tx.try_send(p).is_ok() {
                        carried += 1;
                    }
                }
            }
        }
        replacement
            .queued
            .store(carried as usize, Ordering::Relaxed);
        replacement.set_policy(old.policy());
        replacement
            .overflow_seen
            .store(old.overflow_seen.load(Ordering::Relaxed), Ordering::Relaxed);
        replacement
            .shed
            .store(old.shed.load(Ordering::Relaxed), Ordering::Relaxed);
        replacement
            .sampled_kept
            .store(old.sampled_kept.load(Ordering::Relaxed), Ordering::Relaxed);
        map.insert(id.clone(), Arc::new(replacement));
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(carried)
    }

    /// Restores one tenant from a fleet checkpoint, **replacing** any
    /// detector currently registered under the id (or registering it
    /// fresh). The restored detector is rewired onto this fleet's shared
    /// executor service — restoring into a fleet with a different worker
    /// count is bit-exact. Errors with [`SpotError::UnknownTenant`] when
    /// the checkpoint holds no such tenant; the tenant's queue restarts
    /// empty (use [`SpotFleet::revive_tenant`] to carry a backlog).
    pub fn restore_tenant(&self, checkpoint: &FleetCheckpoint, id: &TenantId) -> Result<()> {
        let cp = checkpoint
            .get(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        let mut spot = Spot::from_checkpoint(cp)?;
        spot.set_executor(self.inner.exec.clone());
        self.install(id.clone(), spot, true)
    }

    /// Builds a fleet holding every tenant of the checkpoint.
    pub fn from_checkpoint(checkpoint: &FleetCheckpoint, config: FleetConfig) -> Result<Self> {
        Self::from_checkpoint_with(checkpoint, config, ExecutorHandle::default_for_build())
    }

    /// [`SpotFleet::from_checkpoint`] with an explicit executor service.
    pub fn from_checkpoint_with(
        checkpoint: &FleetCheckpoint,
        config: FleetConfig,
        exec: ExecutorHandle,
    ) -> Result<Self> {
        let fleet = Self::with_executor(config, exec);
        for id in checkpoint.tenant_ids() {
            fleet.restore_tenant(checkpoint, &id)?;
        }
        Ok(fleet)
    }
}

// Lock-poisoning policy (audited with the supervision plane): every std
// lock in this module recovers the guard with `into_inner` instead of
// panicking. The compat `parking_lot` Mutex guarding each detector does
// the same, which means a panic inside detector code leaves a *usable
// lock around torn state* — that is exactly why a caught panic
// quarantines the tenant: the health gate, not lock poisoning, is what
// keeps torn state unobservable.
fn read_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}
