//! The multi-tenant fleet: a registry of detectors on one shared executor.

use crate::checkpoint::FleetCheckpoint;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use spot::{LearningReport, SharedSpot, Spot, SpotConfig, SpotStats, SynopsisFootprint, Verdict};
use spot_synopsis::{ExecutorHandle, SerialExecutor, StoreExecutor};
use spot_types::{DataPoint, Result, SpotError, TenantId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Fleet-wide knobs. `Default` gives a 1024-point queue per tenant and
/// 256-point micro-batches (matching `Spot::BATCH_RUN`, so one drain pass
/// is one maintenance-bounded run in the common case).
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Capacity of each tenant's bounded ingestion queue (clamped to at
    /// least 1). A producer ingesting into a full queue blocks — the
    /// streaming model's space bound, enforced per tenant.
    pub queue_capacity: usize,
    /// Maximum points one [`SpotFleet::drain`] pass processes (clamped to
    /// at least 1).
    pub micro_batch: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 1024,
            micro_batch: 256,
        }
    }
}

/// Aggregated logical counters over every tenant, plus queue occupancy.
/// Served entirely from lock-free mirrors (each tenant's stats seqlock and
/// queue counter) — reading it never blocks, or is blocked by, ingestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Points waiting in tenant ingestion queues (not yet processed).
    pub queued: usize,
    /// Sum of [`SpotStats::processed`] over all tenants.
    pub processed: u64,
    /// Sum of [`SpotStats::outliers`] over all tenants.
    pub outliers: u64,
    /// Sum of [`SpotStats::evolutions`] over all tenants.
    pub evolutions: u64,
    /// Sum of [`SpotStats::os_added`] over all tenants.
    pub os_added: u64,
    /// Sum of [`SpotStats::drift_events`] over all tenants.
    pub drift_events: u64,
    /// Sum of [`SpotStats::cells_pruned`] over all tenants.
    pub cells_pruned: u64,
}

/// Aggregated synopsis memory over every tenant — from each tenant's
/// lock-free `LiveCounters` mirror; never touches a detector lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetFootprint {
    /// Registered tenants.
    pub tenants: usize,
    /// Sum of populated base cells.
    pub base_cells: usize,
    /// Sum of populated projected cells.
    pub projected_cells: usize,
    /// Sum of approximate synopsis bytes.
    pub approx_bytes: usize,
}

/// One registered tenant: the detector handle plus its bounded queue.
struct Tenant {
    shared: SharedSpot,
    tx: Sender<DataPoint>,
    /// Drains are exclusive per tenant (points must commit in arrival
    /// order, so the guard is held through processing); concurrent drains
    /// of *different* tenants proceed freely. `None` after eviction — the
    /// dropped receiver is what unblocks producers stuck in a full-queue
    /// `send` (their `SendError` becomes `UnknownTenant`).
    rx: Mutex<Option<Receiver<DataPoint>>>,
    /// Points currently queued: incremented *before* the enqueue (rolled
    /// back on failure), decremented per dequeued point — so the counter
    /// never lags the channel and a concurrent drain cannot wrap it below
    /// zero. May transiently overcount by the producers currently blocked
    /// in `send`. A lock-free occupancy mirror for [`SpotFleet::stats`]
    /// (the channel itself exposes no length).
    queued: AtomicUsize,
}

struct FleetInner {
    exec: ExecutorHandle,
    config: FleetConfig,
    tenants: RwLock<HashMap<TenantId, Arc<Tenant>>>,
}

/// A registry of named SPOT detectors sharing one executor service.
///
/// Cloning the fleet clones a handle (tenants and executor are shared).
/// Every tenant keeps full single-stream semantics — its own
/// configuration, seed, SST, clock and stats — while all synopsis shard
/// phases, verdict sweeps and checkpoint captures fan out over the one
/// worker pool the shared [`ExecutorHandle`] owns. See the crate docs for
/// the determinism guarantee.
#[derive(Clone)]
pub struct SpotFleet {
    inner: Arc<FleetInner>,
}

impl SpotFleet {
    /// A fleet on the build's default executor service: machine-sized pool
    /// engagement with the `parallel` feature, serial otherwise.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_executor(config, ExecutorHandle::default_for_build())
    }

    /// A fleet with an explicit worker budget: `Some(0)` forces serial,
    /// `Some(n)` an `n`-worker pool, `None` machine-sized defaults.
    pub fn with_workers(config: FleetConfig, workers: Option<usize>) -> Self {
        let exec = match workers {
            Some(0) => ExecutorHandle::serial(),
            Some(n) => ExecutorHandle::with_workers(n),
            None => ExecutorHandle::auto(),
        };
        Self::with_executor(config, exec)
    }

    /// A fleet dispatching through a caller-supplied executor service
    /// (e.g. one also shared with detectors outside the fleet).
    pub fn with_executor(config: FleetConfig, exec: ExecutorHandle) -> Self {
        SpotFleet {
            inner: Arc::new(FleetInner {
                exec,
                config: FleetConfig {
                    queue_capacity: config.queue_capacity.max(1),
                    micro_batch: config.micro_batch.max(1),
                },
                tenants: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The shared executor service. All tenants dispatch through it; its
    /// `pools_spawned()` stays at ≤ 1 however many tenants register.
    pub fn executor(&self) -> &ExecutorHandle {
        &self.inner.exec
    }

    /// Retargets the shared worker budget (see [`ExecutorHandle::set_workers`]).
    /// Verdicts are bit-identical for every setting.
    pub fn set_workers(&self, workers: Option<usize>) {
        self.inner.exec.set_workers(workers);
    }

    // ---- registry -------------------------------------------------------

    /// Registers a new tenant with its own detector configuration. The
    /// detector is built on the fleet's shared executor service. Errors
    /// with [`SpotError::DuplicateTenant`] when the name is taken.
    pub fn register(&self, id: TenantId, config: SpotConfig) -> Result<()> {
        let spot = Spot::with_executor(config, self.inner.exec.clone())?;
        self.install(id, spot, false)
    }

    /// Registers a pre-built detector (it is rewired onto the fleet's
    /// shared executor service — bit-identical, see [`Spot::set_executor`]).
    pub fn register_spot(&self, id: TenantId, mut spot: Spot) -> Result<()> {
        spot.set_executor(self.inner.exec.clone());
        self.install(id, spot, false)
    }

    fn install(&self, id: TenantId, spot: Spot, replace: bool) -> Result<()> {
        let (tx, rx) = bounded(self.inner.config.queue_capacity);
        let tenant = Arc::new(Tenant {
            shared: SharedSpot::with_service_executor(spot),
            tx,
            rx: Mutex::new(Some(rx)),
            queued: AtomicUsize::new(0),
        });
        let mut map = write_lock(&self.inner.tenants);
        if !replace && map.contains_key(&id) {
            return Err(SpotError::DuplicateTenant(id.to_string()));
        }
        map.insert(id, tenant);
        Ok(())
    }

    /// Removes a tenant, dropping its detector and discarding any points
    /// still queued. Errors with [`SpotError::UnknownTenant`]. Producers
    /// blocked in [`SpotFleet::ingest`] on the evicted tenant's full
    /// queue unblock with `UnknownTenant` (the queue's receiving half is
    /// dropped here, failing their pending `send`).
    pub fn evict(&self, id: &TenantId) -> Result<()> {
        let tenant = write_lock(&self.inner.tenants)
            .remove(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        // Disconnect the channel even if a blocked producer still holds
        // an `Arc<Tenant>` of its own — dropping the registry's Arc alone
        // would leave the receiver alive inside that clone.
        *tenant.rx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        Ok(())
    }

    /// Registered tenant ids, sorted (a stable order for reports and
    /// checkpoints).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let map = read_lock(&self.inner.tenants);
        let mut ids: Vec<TenantId> = map.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        read_lock(&self.inner.tenants).len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &TenantId) -> bool {
        read_lock(&self.inner.tenants).contains_key(id)
    }

    fn tenant(&self, id: &TenantId) -> Result<Arc<Tenant>> {
        read_lock(&self.inner.tenants)
            .get(id)
            .cloned()
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))
    }

    // ---- the tenant lifecycle: learn → ingest/drain → checkpoint --------

    /// Runs a tenant's learning stage, returning the same
    /// [`LearningReport`] a standalone detector produces.
    pub fn learn(&self, id: &TenantId, training: &[DataPoint]) -> Result<LearningReport> {
        self.tenant(id)?.shared.learn(training)
    }

    /// Processes one point synchronously (bypasses the queue; do not mix
    /// with queued ingestion for the same tenant unless the queue is
    /// drained first — verdict order is arrival order either way).
    pub fn process(&self, id: &TenantId, point: &DataPoint) -> Result<Verdict> {
        self.tenant(id)?.shared.process(point)
    }

    /// Processes a batch synchronously through the shared executor.
    pub fn process_batch(&self, id: &TenantId, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        self.tenant(id)?.shared.process_batch(points)
    }

    /// Enqueues one point onto the tenant's bounded queue, **blocking**
    /// while the queue is full (backpressure: a slow tenant stalls its own
    /// producers, never the co-tenants).
    pub fn ingest(&self, id: &TenantId, point: DataPoint) -> Result<()> {
        let tenant = self.tenant(id)?;
        // Count before the send so a drain that pops the point immediately
        // can never decrement a counter that was not yet incremented.
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        tenant.tx.send(point).map_err(|_| {
            tenant.queued.fetch_sub(1, Ordering::Relaxed);
            SpotError::UnknownTenant(id.to_string())
        })?;
        Ok(())
    }

    /// Non-blocking enqueue: `Ok(false)` when the queue is at capacity.
    pub fn try_ingest(&self, id: &TenantId, point: DataPoint) -> Result<bool> {
        let tenant = self.tenant(id)?;
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        match tenant.tx.try_send(point) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Err(SpotError::UnknownTenant(id.to_string()))
            }
        }
    }

    /// Points currently queued for `id`.
    pub fn queue_len(&self, id: &TenantId) -> Result<usize> {
        Ok(self.tenant(id)?.queued.load(Ordering::Relaxed))
    }

    /// Drains up to one micro-batch (`FleetConfig::micro_batch` points)
    /// from the tenant's queue and processes it through the shared
    /// executor, returning the verdicts in arrival order. An empty queue
    /// returns an empty vector. Call in a loop (or use
    /// [`SpotFleet::drain_fully`]) to exhaust a backlog.
    ///
    /// An error (e.g. a NaN point → [`SpotError::NonFiniteValue`])
    /// discards the dequeued micro-batch: the detector's all-or-nothing
    /// validation rejected it wholesale, and a poisoned batch cannot be
    /// replayed. Validate upstream when inputs are untrusted.
    pub fn drain(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        self.drain_tenant(&tenant)
    }

    /// Drains the tenant's queue to exhaustion (micro-batch at a time).
    pub fn drain_fully(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        let mut verdicts = Vec::new();
        loop {
            let batch = self.drain_tenant(&tenant)?;
            if batch.is_empty() {
                return Ok(verdicts);
            }
            verdicts.extend(batch);
        }
    }

    /// One service pass over the whole fleet: drains up to one micro-batch
    /// from every tenant (sorted id order), returning each tenant's
    /// verdicts. The building block for a fleet service loop. The first
    /// drain error aborts the pass (see [`SpotFleet::drain`] for the
    /// discard semantics of a rejected batch); tenants evicted mid-pass
    /// are skipped.
    pub fn pump(&self) -> Result<Vec<(TenantId, Vec<Verdict>)>> {
        let mut out = Vec::new();
        for id in self.tenant_ids() {
            // A tenant evicted between the listing and the drain is skipped.
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            let verdicts = self.drain_tenant(&tenant)?;
            if !verdicts.is_empty() {
                out.push((id, verdicts));
            }
        }
        Ok(out)
    }

    fn drain_tenant(&self, tenant: &Tenant) -> Result<Vec<Verdict>> {
        // The rx guard is held through processing: it is what serializes
        // concurrent drains of this tenant, and releasing it between the
        // pop and the process_batch would let a second drainer commit a
        // later micro-batch first, breaking arrival order. Producers are
        // unaffected — they block on the channel's capacity, not this
        // lock.
        let rx = tenant.rx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rx) = rx.as_ref() else {
            // Evicted while this caller still held an Arc to the entry.
            return Ok(Vec::new());
        };
        let mut batch: Vec<DataPoint> = Vec::new();
        while batch.len() < self.inner.config.micro_batch {
            match rx.try_recv() {
                Ok(p) => {
                    tenant.queued.fetch_sub(1, Ordering::Relaxed);
                    batch.push(p);
                }
                Err(_) => break,
            }
        }
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        tenant.shared.process_batch(&batch)
    }

    // ---- monitoring (never takes a detector lock) -----------------------

    /// Aggregated logical counters + queue occupancy over every tenant.
    /// Reads each tenant's stats seqlock and queue counter only — never
    /// any detector lock, so dashboards cannot stall (or be stalled by)
    /// ingestion.
    pub fn stats(&self) -> FleetStats {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetStats {
            tenants: tenants.len(),
            ..FleetStats::default()
        };
        for t in &tenants {
            let s = t.shared.stats();
            agg.queued += t.queued.load(Ordering::Relaxed);
            agg.processed += s.processed;
            agg.outliers += s.outliers;
            agg.evolutions += s.evolutions;
            agg.os_added += s.os_added;
            agg.drift_events += s.drift_events;
            agg.cells_pruned += s.cells_pruned;
        }
        agg
    }

    /// One tenant's logical counters (lock-free seqlock read).
    pub fn tenant_stats(&self, id: &TenantId) -> Result<SpotStats> {
        Ok(self.tenant(id)?.shared.stats())
    }

    /// Aggregated synopsis memory over every tenant (lock-free mirrors).
    pub fn footprint(&self) -> FleetFootprint {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetFootprint {
            tenants: tenants.len(),
            ..FleetFootprint::default()
        };
        for t in &tenants {
            let f = t.shared.footprint();
            agg.base_cells += f.base_cells;
            agg.projected_cells += f.projected_cells;
            agg.approx_bytes += f.approx_bytes;
        }
        agg
    }

    /// One tenant's synopsis footprint (lock-free mirror read).
    pub fn tenant_footprint(&self, id: &TenantId) -> Result<SynopsisFootprint> {
        Ok(self.tenant(id)?.shared.footprint())
    }

    /// Runs a closure with exclusive access to one tenant's detector (the
    /// escape hatch for anything the fleet API does not cover).
    pub fn with_tenant<R>(&self, id: &TenantId, f: impl FnOnce(&mut Spot) -> R) -> Result<R> {
        Ok(self.tenant(id)?.shared.with(f))
    }

    // ---- durability -----------------------------------------------------

    /// Captures a versioned checkpoint of every tenant (sorted id order).
    /// Each tenant's capture is the standard v2 `SpotCheckpoint` — one
    /// claim unit per projected store, dispatched over the shared pool
    /// when the service is pooled — so a tenant restored from it is
    /// bit-exact, standalone or in any fleet. Queued-but-undrained points
    /// are *not* part of the checkpoint (they have not been processed;
    /// drain first for a checkpoint at a chosen stream position).
    pub fn checkpoint(&self) -> FleetCheckpoint {
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        let mut tenants = Vec::new();
        for id in self.tenant_ids() {
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            let cp = tenant.shared.with(|s| s.checkpoint_with(exec));
            tenants.push((id, cp));
        }
        FleetCheckpoint::new(tenants)
    }

    /// Restores one tenant from a fleet checkpoint, **replacing** any
    /// detector currently registered under the id (or registering it
    /// fresh). The restored detector is rewired onto this fleet's shared
    /// executor service — restoring into a fleet with a different worker
    /// count is bit-exact. Errors with [`SpotError::UnknownTenant`] when
    /// the checkpoint holds no such tenant; the tenant's queue restarts
    /// empty.
    pub fn restore_tenant(&self, checkpoint: &FleetCheckpoint, id: &TenantId) -> Result<()> {
        let cp = checkpoint
            .get(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        let mut spot = Spot::from_checkpoint(cp)?;
        spot.set_executor(self.inner.exec.clone());
        self.install(id.clone(), spot, true)
    }

    /// Builds a fleet holding every tenant of the checkpoint.
    pub fn from_checkpoint(checkpoint: &FleetCheckpoint, config: FleetConfig) -> Result<Self> {
        Self::from_checkpoint_with(checkpoint, config, ExecutorHandle::default_for_build())
    }

    /// [`SpotFleet::from_checkpoint`] with an explicit executor service.
    pub fn from_checkpoint_with(
        checkpoint: &FleetCheckpoint,
        config: FleetConfig,
        exec: ExecutorHandle,
    ) -> Result<Self> {
        let fleet = Self::with_executor(config, exec);
        for id in checkpoint.tenant_ids() {
            fleet.restore_tenant(checkpoint, &id)?;
        }
        Ok(fleet)
    }
}

fn read_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}
