//! The multi-tenant fleet: a registry of detectors on one shared executor.
//!
//! # Fault containment
//!
//! Every path that runs tenant detector code (`process`, `process_batch`,
//! `drain`, `pump`) executes under a panic guard. A panic — the tenant's
//! own detector code, a worker-pool job re-raised on the dispatching
//! thread, or an injected fault — is caught, converted into a typed
//! [`SpotError::TenantPoisoned`], and **quarantines only that tenant**:
//! co-tenants keep executing on the shared pool, bit-identical to a run
//! where the faulted tenant never existed. A quarantined tenant's
//! in-memory detector is untrusted (the panic may have torn it mid-update
//! behind its non-poisoning lock), so every processing and checkpoint
//! operation fails until the tenant is restored from a checkpoint — see
//! [`SpotFleet::revive_tenant`] and the [`crate::Supervisor`] that
//! automates restoration. Ingestion keeps enqueuing for a quarantined
//! tenant (subject to its [`OverloadPolicy`]) so the backlog survives into
//! recovery.
//!
//! # Durability
//!
//! With [`SpotFleet::enable_wal`] every admitted point is appended to a
//! per-tenant write-ahead log *before* it is enqueued or processed (see
//! [`crate::wal`]). [`SpotFleet::checkpoint_durable`] saves a fleet
//! checkpoint that records each tenant's WAL watermark and prunes sealed
//! segments behind it; [`SpotFleet::recover`] rebuilds the fleet from the
//! newest valid checkpoint and replays the WAL tail, making the post-crash
//! verdict stream bit-identical to an uncrashed run — no admitted point is
//! lost. In-process faults get the same treatment: a WAL-backed
//! [`SpotFleet::revive_tenant`] replays the lost window instead of
//! dropping it.

use crate::checkpoint::{CheckpointStore, FleetCheckpoint, FleetDelta, TenantEntry};
use crate::faults::{FaultInjector, FaultPlan};
use crate::health::{IngestOutcome, OverloadPolicy, QuarantineInfo, TenantHealth};
use crate::wal::{tenant_dir_name, FleetRecovery, TenantWal, WalTuning};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use spot::{
    CaptureMark, DeltaCapture, LearningReport, SharedSpot, Spot, SpotCheckpoint, SpotConfig,
    SpotStats, SynopsisFootprint, Verdict,
};
use spot_stream::wal::read_wal_from;
use spot_synopsis::{panic_message, ExecutorHandle, SerialExecutor, StoreExecutor};
use spot_types::{DataPoint, Result, SpotError, TenantId};
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Fleet-wide knobs. `Default` gives a 1024-point queue per tenant and
/// 256-point micro-batches (matching `Spot::BATCH_RUN`, so one drain pass
/// is one maintenance-bounded run in the common case).
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Capacity of each tenant's bounded ingestion queue (clamped to at
    /// least 1). What happens when the queue is full is the tenant's
    /// [`OverloadPolicy`]: block the producer (default), shed, or sample.
    pub queue_capacity: usize,
    /// Maximum points one [`SpotFleet::drain`] pass processes (clamped to
    /// at least 1).
    pub micro_batch: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 1024,
            micro_batch: 256,
        }
    }
}

/// Aggregated logical counters over every tenant, plus queue occupancy and
/// the supervision plane's fault/overload counters. Served entirely from
/// lock-free mirrors (each tenant's stats seqlock, queue counter, health
/// tag and overload atomics) — reading it never blocks, or is blocked by,
/// ingestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Tenants currently quarantined after a panic.
    pub quarantined: usize,
    /// Tenants marked failed (recovery budget exhausted).
    pub failed: usize,
    /// Points waiting in tenant ingestion queues (not yet processed).
    pub queued: usize,
    /// Sum of [`SpotStats::processed`] over all tenants.
    pub processed: u64,
    /// Sum of [`SpotStats::outliers`] over all tenants.
    pub outliers: u64,
    /// Sum of [`SpotStats::evolutions`] over all tenants.
    pub evolutions: u64,
    /// Sum of [`SpotStats::os_added`] over all tenants.
    pub os_added: u64,
    /// Sum of [`SpotStats::drift_events`] over all tenants.
    pub drift_events: u64,
    /// Sum of [`SpotStats::cells_pruned`] over all tenants.
    pub cells_pruned: u64,
    /// Points dropped by `Shed`/`Sample` overload policies, all tenants.
    pub shed: u64,
    /// Points admitted by the `Sample` policy's 1-in-k survivor slot.
    pub sampled_kept: u64,
    /// Tenant panics caught (each moved one tenant to quarantine).
    pub panics: u64,
    /// Successful tenant restorations ([`SpotFleet::revive_tenant`]).
    pub recoveries: u64,
    /// WAL prune attempts that failed after a durable checkpoint.
    /// Retained segments only cost replay time, so the checkpoint still
    /// succeeds — but a counter that keeps climbing means the log is not
    /// shrinking and disk usage is unbounded, which operators must see.
    pub wal_prune_failures: u64,
}

/// Aggregated synopsis memory over every tenant — from each tenant's
/// lock-free `LiveCounters` mirror; never touches a detector lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetFootprint {
    /// Registered tenants.
    pub tenants: usize,
    /// Sum of populated base cells.
    pub base_cells: usize,
    /// Sum of populated projected cells.
    pub projected_cells: usize,
    /// Sum of approximate synopsis bytes.
    pub approx_bytes: usize,
}

// `Tenant::state` mirror values — a lock-free fast gate so healthy-path
// operations never touch the health mutex.
const HEALTH_HEALTHY: u8 = 0;
const HEALTH_QUARANTINED: u8 = 1;
const HEALTH_FAILED: u8 = 2;

// `Tenant::policy_kind` values (with `policy_k` carrying Sample's k).
const POLICY_BLOCK: u8 = 0;
const POLICY_SHED: u8 = 1;
const POLICY_SAMPLE: u8 = 2;

/// One registered tenant: the detector handle plus its bounded queue and
/// supervision-plane state.
struct Tenant {
    shared: SharedSpot,
    tx: Sender<DataPoint>,
    /// Drains are exclusive per tenant (points must commit in arrival
    /// order, so the guard is held through processing); concurrent drains
    /// of *different* tenants proceed freely. `None` after eviction — the
    /// dropped receiver is what unblocks producers stuck in a full-queue
    /// `send` (their `SendError` becomes `UnknownTenant`).
    rx: Mutex<Option<Receiver<DataPoint>>>,
    /// Points currently queued: incremented *before* the enqueue (rolled
    /// back on failure), decremented per dequeued point — so the counter
    /// never lags the channel and a concurrent drain cannot wrap it below
    /// zero. May transiently overcount by the producers currently blocked
    /// in `send`. A lock-free occupancy mirror for [`SpotFleet::stats`]
    /// (the channel itself exposes no length).
    queued: AtomicUsize,
    /// Full health state (quarantine reason, counters). Taken only on the
    /// unhealthy path and on transitions; `state` is the hot-path mirror.
    health: Mutex<TenantHealth>,
    /// Lock-free mirror of the health discriminant (`HEALTH_*`).
    state: AtomicU8,
    /// Overload policy, packed into atomics so `ingest` never locks:
    /// `policy_kind` is a `POLICY_*` tag, `policy_k` Sample's `keep_one_in`.
    policy_kind: AtomicU8,
    policy_k: AtomicU32,
    /// Full-queue encounters (drives the deterministic 1-in-k sampler).
    overflow_seen: AtomicU64,
    /// Points dropped by `Shed`/`Sample`.
    shed: AtomicU64,
    /// Points admitted through the `Sample` survivor slot.
    sampled_kept: AtomicU64,
    /// The tenant's write-ahead log, when the fleet has one enabled.
    /// `wal_on` is the lock-free hot-path mirror — with no WAL, ingestion
    /// checks one atomic and never touches the mutex.
    wal: Mutex<Option<Arc<TenantWal>>>,
    wal_on: AtomicBool,
    /// The detector's dimensionality (φ), captured at install so
    /// admission-side validators ([`SpotFleet::tenant_dims`]) never touch
    /// the detector lock.
    phi: usize,
}

impl Tenant {
    /// A fresh healthy tenant with default (`Block`) overload policy.
    fn fresh(spot: Spot, capacity: usize) -> Tenant {
        let phi = spot.config().phi();
        let (tx, rx) = bounded(capacity);
        Tenant {
            shared: SharedSpot::with_service_executor(spot),
            tx,
            rx: Mutex::new(Some(rx)),
            queued: AtomicUsize::new(0),
            health: Mutex::new(TenantHealth::Healthy),
            state: AtomicU8::new(HEALTH_HEALTHY),
            policy_kind: AtomicU8::new(POLICY_BLOCK),
            policy_k: AtomicU32::new(1),
            overflow_seen: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sampled_kept: AtomicU64::new(0),
            wal: Mutex::new(None),
            wal_on: AtomicBool::new(false),
            phi,
        }
    }

    /// The tenant's WAL handle, when one is attached (one atomic load on
    /// the common no-WAL path).
    fn wal_handle(&self) -> Option<Arc<TenantWal>> {
        if !self.wal_on.load(Ordering::Acquire) {
            return None;
        }
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn attach_wal(&self, wal: Arc<TenantWal>) {
        *self.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(wal);
        self.wal_on.store(true, Ordering::Release);
    }

    fn policy(&self) -> OverloadPolicy {
        match self.policy_kind.load(Ordering::Relaxed) {
            POLICY_SHED => OverloadPolicy::Shed,
            POLICY_SAMPLE => OverloadPolicy::Sample {
                keep_one_in: self.policy_k.load(Ordering::Relaxed).max(1),
            },
            _ => OverloadPolicy::Block,
        }
    }

    fn set_policy(&self, policy: OverloadPolicy) {
        let (kind, k) = match policy {
            OverloadPolicy::Block => (POLICY_BLOCK, 1),
            OverloadPolicy::Shed => (POLICY_SHED, 1),
            OverloadPolicy::Sample { keep_one_in } => (POLICY_SAMPLE, keep_one_in.max(1)),
        };
        self.policy_k.store(k, Ordering::Relaxed);
        self.policy_kind.store(kind, Ordering::Relaxed);
    }

    fn health_snapshot(&self) -> TenantHealth {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Fleet-wide WAL settings, set once by `enable_wal`/`recover`: tenants
/// registered later get their log attached automatically.
#[derive(Clone)]
struct WalSettings {
    root: PathBuf,
    tuning: WalTuning,
}

/// What one [`SpotFleet::revive_tenant`] actually brought forward — the
/// supervisor uses the split to account `points_lost` correctly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReviveOutcome {
    /// Backlog points moved queue-to-queue (always 0 with a WAL).
    pub(crate) carried: u64,
    /// WAL records replayed past the restored position (0 without a WAL).
    pub(crate) replayed: u64,
    /// Whether the tenant has a WAL (replay-based recovery).
    pub(crate) walled: bool,
}

/// Where the last durable checkpoint left the fleet, for delta capture:
/// the generation it produced, how many deltas extend it already (rebase
/// bookkeeping), and each captured tenant's [`CaptureMark`] — the counters
/// a later [`SpotFleet::checkpoint_durable_delta`] diffs against, taken
/// under the same detector lock hold as the capture itself so the mark is
/// exactly the captured stream position.
#[derive(Clone)]
struct DeltaState {
    generation: u64,
    chain_len: usize,
    marks: HashMap<TenantId, CaptureMark>,
}

struct FleetInner {
    exec: ExecutorHandle,
    config: FleetConfig,
    tenants: RwLock<HashMap<TenantId, Arc<Tenant>>>,
    /// Armed fault plan (tests only). `faults_armed` is the lock-free
    /// fast flag consulted on hot paths; the mutex is touched only when a
    /// plan is actually armed.
    faults: Mutex<Option<Arc<FaultInjector>>>,
    faults_armed: AtomicBool,
    /// WAL root + tuning once the fleet's ingestion WAL is enabled.
    wal: Mutex<Option<WalSettings>>,
    /// Admission gate for graceful shutdown: once set, every
    /// `ingest`/`try_ingest`/`process`/`process_batch` call errors with
    /// [`SpotError::ShuttingDown`] while drains keep working — the drain
    /// phase sees a frozen backlog and loses nothing already admitted.
    shutting_down: AtomicBool,
    /// Tenant panics caught fleet-wide.
    panics: AtomicU64,
    /// Successful tenant restorations fleet-wide.
    recoveries: AtomicU64,
    /// WAL prune attempts that failed after a durable checkpoint
    /// (surfaced as [`FleetStats::wal_prune_failures`]).
    prune_failures: AtomicU64,
    /// Capture marks from the last durable checkpoint, arming
    /// [`SpotFleet::checkpoint_durable_delta`]. `None` until a durable
    /// checkpoint ran in this process.
    delta_state: Mutex<Option<DeltaState>>,
}

/// A registry of named SPOT detectors sharing one executor service.
///
/// Cloning the fleet clones a handle (tenants and executor are shared).
/// Every tenant keeps full single-stream semantics — its own
/// configuration, seed, SST, clock and stats — while all synopsis shard
/// phases, verdict sweeps and checkpoint captures fan out over the one
/// worker pool the shared [`ExecutorHandle`] owns. See the crate docs for
/// the determinism guarantee and the module docs for fault containment.
#[derive(Clone)]
pub struct SpotFleet {
    inner: Arc<FleetInner>,
}

impl SpotFleet {
    /// A fleet on the build's default executor service: machine-sized pool
    /// engagement with the `parallel` feature, serial otherwise.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_executor(config, ExecutorHandle::default_for_build())
    }

    /// A fleet with an explicit worker budget: `Some(0)` forces serial,
    /// `Some(n)` an `n`-worker pool, `None` machine-sized defaults.
    pub fn with_workers(config: FleetConfig, workers: Option<usize>) -> Self {
        let exec = match workers {
            Some(0) => ExecutorHandle::serial(),
            Some(n) => ExecutorHandle::with_workers(n),
            None => ExecutorHandle::auto(),
        };
        Self::with_executor(config, exec)
    }

    /// A fleet dispatching through a caller-supplied executor service
    /// (e.g. one also shared with detectors outside the fleet).
    pub fn with_executor(config: FleetConfig, exec: ExecutorHandle) -> Self {
        SpotFleet {
            inner: Arc::new(FleetInner {
                exec,
                config: FleetConfig {
                    queue_capacity: config.queue_capacity.max(1),
                    micro_batch: config.micro_batch.max(1),
                },
                tenants: RwLock::new(HashMap::new()),
                faults: Mutex::new(None),
                faults_armed: AtomicBool::new(false),
                wal: Mutex::new(None),
                shutting_down: AtomicBool::new(false),
                panics: AtomicU64::new(0),
                recoveries: AtomicU64::new(0),
                prune_failures: AtomicU64::new(0),
                delta_state: Mutex::new(None),
            }),
        }
    }

    /// The shared executor service. All tenants dispatch through it; its
    /// `pools_spawned()` stays at ≤ 1 however many tenants register.
    pub fn executor(&self) -> &ExecutorHandle {
        &self.inner.exec
    }

    /// The fleet's (clamped) configuration.
    pub fn config(&self) -> FleetConfig {
        self.inner.config
    }

    // ---- the shutdown gate ----------------------------------------------

    /// Closes the fleet's admission gates for a graceful shutdown: every
    /// subsequent [`SpotFleet::ingest`]/[`SpotFleet::try_ingest`]/
    /// [`SpotFleet::process`]/[`SpotFleet::process_batch`] call errors
    /// with [`SpotError::ShuttingDown`], while drains (and WAL replay)
    /// keep working so the frozen backlog can be flushed and
    /// checkpointed. Idempotent; [`SpotFleet::end_shutdown`] reopens the
    /// gates (e.g. when an operator aborts the shutdown).
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::Release);
    }

    /// Reopens admission after [`SpotFleet::begin_shutdown`].
    pub fn end_shutdown(&self) {
        self.inner.shutting_down.store(false, Ordering::Release);
    }

    /// `true` while the admission gates are closed.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::Acquire)
    }

    /// The lock-free admission gate every ingestion path checks first.
    fn admission_gate(&self) -> Result<()> {
        if self.is_shutting_down() {
            Err(SpotError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    /// Retargets the shared worker budget (see [`ExecutorHandle::set_workers`]).
    /// Verdicts are bit-identical for every setting.
    pub fn set_workers(&self, workers: Option<usize>) {
        self.inner.exec.set_workers(workers);
    }

    // ---- registry -------------------------------------------------------

    /// Registers a new tenant with its own detector configuration. The
    /// detector is built on the fleet's shared executor service. Errors
    /// with [`SpotError::DuplicateTenant`] when the name is taken.
    pub fn register(&self, id: TenantId, config: SpotConfig) -> Result<()> {
        let spot = Spot::with_executor(config, self.inner.exec.clone())?;
        self.install(id, spot, false)
    }

    /// Registers a pre-built detector (it is rewired onto the fleet's
    /// shared executor service — bit-identical, see [`Spot::set_executor`]).
    pub fn register_spot(&self, id: TenantId, mut spot: Spot) -> Result<()> {
        spot.set_executor(self.inner.exec.clone());
        self.install(id, spot, false)
    }

    fn install(&self, id: TenantId, spot: Spot, replace: bool) -> Result<()> {
        let tenant = Arc::new(Tenant::fresh(spot, self.inner.config.queue_capacity));
        // With a fleet WAL enabled, every tenant gets a log at install
        // time: opened fresh (base = the detector's current stream
        // position) or resumed from an existing directory (restore paths).
        if let Some(settings) = self.wal_settings() {
            let base = tenant.shared.stats().processed;
            let wal = TenantWal::open(
                settings.root.join(tenant_dir_name(&id)),
                base,
                settings.tuning,
            )?;
            tenant.attach_wal(Arc::new(wal));
        }
        let mut map = write_lock(&self.inner.tenants);
        if !replace && map.contains_key(&id) {
            return Err(SpotError::DuplicateTenant(id.to_string()));
        }
        map.insert(id, tenant);
        Ok(())
    }

    /// Removes a tenant, dropping its detector and discarding any points
    /// still queued. Errors with [`SpotError::UnknownTenant`]. Producers
    /// blocked in [`SpotFleet::ingest`] on the evicted tenant's full
    /// queue unblock with `UnknownTenant` (the queue's receiving half is
    /// dropped here, failing their pending `send`).
    pub fn evict(&self, id: &TenantId) -> Result<()> {
        let tenant = write_lock(&self.inner.tenants)
            .remove(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        // Disconnect the channel even if a blocked producer still holds
        // an `Arc<Tenant>` of its own — dropping the registry's Arc alone
        // would leave the receiver alive inside that clone.
        *tenant.rx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        // An evicted tenant's log is dead weight (its detector is gone);
        // delete it so a future registration under the same id starts a
        // fresh log instead of resuming a stranger's.
        if let Some(settings) = self.wal_settings() {
            let _ = std::fs::remove_dir_all(settings.root.join(tenant_dir_name(id)));
        }
        Ok(())
    }

    /// Registered tenant ids, sorted (a stable order for reports and
    /// checkpoints).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let map = read_lock(&self.inner.tenants);
        let mut ids: Vec<TenantId> = map.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        read_lock(&self.inner.tenants).len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &TenantId) -> bool {
        read_lock(&self.inner.tenants).contains_key(id)
    }

    fn tenant(&self, id: &TenantId) -> Result<Arc<Tenant>> {
        read_lock(&self.inner.tenants)
            .get(id)
            .cloned()
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))
    }

    // ---- the supervision plane ------------------------------------------

    /// One tenant's health state (quarantine reason and counters included).
    pub fn health(&self, id: &TenantId) -> Result<TenantHealth> {
        Ok(self.tenant(id)?.health_snapshot())
    }

    /// One tenant's health discriminant as a static label —
    /// `"healthy"`/`"quarantined"`/`"failed"` — read from the lock-free
    /// state mirror. The monitoring-plane variant of
    /// [`SpotFleet::health`]: it can never block on (or be blocked by)
    /// the health mutex or any detector lock.
    pub fn health_tag(&self, id: &TenantId) -> Result<&'static str> {
        Ok(match self.tenant(id)?.state.load(Ordering::Acquire) {
            HEALTH_QUARANTINED => "quarantined",
            HEALTH_FAILED => "failed",
            _ => "healthy",
        })
    }

    /// Sets one tenant's overload policy (effective for subsequent
    /// [`SpotFleet::ingest`] calls; `Sample { keep_one_in: 0 }` is
    /// normalized to `1`). The policy survives [`SpotFleet::revive_tenant`]
    /// but not `restore_tenant`/`register` (those are fresh registrations).
    pub fn set_overload_policy(&self, id: &TenantId, policy: OverloadPolicy) -> Result<()> {
        self.tenant(id)?.set_policy(policy);
        Ok(())
    }

    /// One tenant's current overload policy.
    pub fn overload_policy(&self, id: &TenantId) -> Result<OverloadPolicy> {
        Ok(self.tenant(id)?.policy())
    }

    /// Arms a deterministic [`FaultPlan`] (replacing any previous plan,
    /// ordinal counters reset). Test harness facility: with no plan armed
    /// the hot paths check one atomic flag and nothing else.
    pub fn arm_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Arc::new(FaultInjector::new(plan)));
        self.inner.faults_armed.store(true, Ordering::Release);
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&self) {
        self.inner.faults_armed.store(false, Ordering::Release);
        *self.inner.faults.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn injector(&self) -> Option<Arc<FaultInjector>> {
        if !self.inner.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        self.inner
            .faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn wal_settings(&self) -> Option<WalSettings> {
        self.inner
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    // ---- the ingestion WAL ----------------------------------------------

    /// Enables the durable ingestion write-ahead log for this fleet: every
    /// point admitted from now on — `ingest`, `try_ingest`, `process`,
    /// `process_batch` — is appended to a per-tenant segmented log under
    /// `root` *before* it is enqueued or processed, so
    /// [`SpotFleet::recover`] can replay everything the crash took (see
    /// `crate::wal` and `docs/persistence.md`).
    ///
    /// Every currently registered tenant gets a log based at its current
    /// stream position (resuming an existing directory when one is
    /// present), and tenants registered later are covered automatically.
    /// Call before ingestion starts: enabling errors with
    /// [`SpotError::InvalidConfig`] when the WAL is already enabled or any
    /// tenant has queued-but-undrained points (those would never get log
    /// records).
    pub fn enable_wal(&self, root: impl Into<PathBuf>, tuning: WalTuning) -> Result<()> {
        let root = root.into();
        {
            let mut slot = self.inner.wal.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_some() {
                return Err(SpotError::InvalidConfig(
                    "the ingestion WAL is already enabled for this fleet".to_string(),
                ));
            }
            *slot = Some(WalSettings {
                root: root.clone(),
                tuning,
            });
        }
        for id in self.tenant_ids() {
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            if tenant.queued.load(Ordering::Relaxed) > 0 {
                return Err(SpotError::InvalidConfig(format!(
                    "tenant {id} has queued points; drain the fleet before enabling the WAL"
                )));
            }
            let base = tenant.shared.stats().processed;
            let wal = TenantWal::open(root.join(tenant_dir_name(&id)), base, tuning)?;
            tenant.attach_wal(Arc::new(wal));
        }
        Ok(())
    }

    /// `true` once [`SpotFleet::enable_wal`] (or recovery) armed the
    /// ingestion WAL.
    pub fn wal_enabled(&self) -> bool {
        self.wal_settings().is_some()
    }

    /// One tenant's WAL write position: records ever appended to its log
    /// (`None` when the fleet has no WAL). The replay watermark a
    /// checkpoint would record is `processed - base`, not this.
    pub fn wal_position(&self, id: &TenantId) -> Result<Option<u64>> {
        Ok(self.tenant(id)?.wal_handle().map(|w| w.position()))
    }

    /// One tenant's live WAL segment-file count (`None` without a WAL) —
    /// the observable pruning makes shrink.
    pub fn wal_segment_count(&self, id: &TenantId) -> Result<Option<usize>> {
        Ok(self.tenant(id)?.wal_handle().map(|w| w.segment_count()))
    }

    /// Consults the armed fault plan for one recovery attempt (supervisor
    /// hook; `false` when no plan is armed).
    pub(crate) fn recovery_attempt_must_fail(&self, id: &TenantId) -> bool {
        self.injector().is_some_and(|i| i.take_recovery_failure(id))
    }

    /// Transitions a quarantined tenant to the terminal `Failed` state
    /// (supervisor hook, called when the retry budget is exhausted).
    pub(crate) fn mark_failed(&self, id: &TenantId) -> Result<()> {
        let tenant = self.tenant(id)?;
        let mut health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
        if let TenantHealth::Quarantined(info) = &*health {
            *health = TenantHealth::Failed(info.clone());
            tenant.state.store(HEALTH_FAILED, Ordering::Release);
        }
        Ok(())
    }

    /// The lock-free unhealthy gate: errors with the tenant's quarantine
    /// reason when it is not `Healthy`.
    fn gate(&self, id: &TenantId, tenant: &Tenant) -> Result<()> {
        if tenant.state.load(Ordering::Acquire) == HEALTH_HEALTHY {
            return Ok(());
        }
        let health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
        match &*health {
            TenantHealth::Healthy => Ok(()),
            TenantHealth::Quarantined(info) | TenantHealth::Failed(info) => {
                Err(SpotError::TenantPoisoned {
                    tenant: id.to_string(),
                    panic: info.reason.clone(),
                })
            }
        }
    }

    /// Records a caught panic: quarantines the tenant (first report wins)
    /// and returns the typed error for the caller.
    fn quarantine(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        reason: String,
        failed_batch: u64,
    ) -> SpotError {
        // The stats seqlock still holds the last *stable* publication: the
        // panicked operation never reached its publish step, so this read
        // cannot observe (or spin on) a torn write.
        let processed = tenant.shared.stats().processed;
        {
            let mut health = tenant.health.lock().unwrap_or_else(|e| e.into_inner());
            if health.is_healthy() {
                *health = TenantHealth::Quarantined(QuarantineInfo {
                    reason: reason.clone(),
                    processed,
                    failed_batch,
                });
                tenant.state.store(HEALTH_QUARANTINED, Ordering::Release);
                self.inner.panics.fetch_add(1, Ordering::Relaxed);
            }
        }
        SpotError::TenantPoisoned {
            tenant: id.to_string(),
            panic: reason,
        }
    }

    /// Runs tenant detector work under the panic guard. A panic anywhere
    /// inside — including one caught in a pool worker and re-raised on
    /// this (dispatching) thread — quarantines this tenant only.
    fn run_guarded(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        points: &[DataPoint],
    ) -> Result<Vec<Verdict>> {
        self.gate(id, tenant)?;
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let injected = self
            .injector()
            .and_then(|i| i.take_panic_offset(id, points.len()));
        // AssertUnwindSafe: on panic the tenant is quarantined and its
        // detector is never touched again until replaced from a checkpoint,
        // so the torn state the unwind leaves behind is unobservable.
        let outcome = catch_unwind(AssertUnwindSafe(|| match injected {
            Some(off) => tenant.shared.with(|s| {
                // Apply the pre-fault prefix first so the panic fires with
                // the detector genuinely mid-batch behind its lock — the
                // torn state a real fault produces.
                for p in &points[..off] {
                    s.process(p)?;
                }
                panic_any(format!(
                    "injected fault: panic at offset {off} of a {}-point batch for tenant {id}",
                    points.len()
                ))
            }),
            None if points.len() == 1 => tenant.shared.process(&points[0]).map(|v| vec![v]),
            None => tenant.shared.process_batch(points),
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => Err(self.quarantine(
                id,
                tenant,
                panic_message(payload.as_ref()),
                points.len() as u64,
            )),
        }
    }

    // ---- the tenant lifecycle: learn → ingest/drain → checkpoint --------

    /// Runs a tenant's learning stage, returning the same
    /// [`LearningReport`] a standalone detector produces. Errors with
    /// [`SpotError::TenantPoisoned`] on a quarantined tenant.
    pub fn learn(&self, id: &TenantId, training: &[DataPoint]) -> Result<LearningReport> {
        let tenant = self.tenant(id)?;
        self.gate(id, &tenant)?;
        tenant.shared.learn(training)
    }

    /// Processes one point synchronously (bypasses the queue; do not mix
    /// with queued ingestion for the same tenant unless the queue is
    /// drained first — verdict order is arrival order either way). Runs
    /// under the panic guard: a panic quarantines this tenant only.
    pub fn process(&self, id: &TenantId, point: &DataPoint) -> Result<Verdict> {
        self.admission_gate()?;
        let tenant = self.tenant(id)?;
        let mut verdicts = self.process_guarded(id, &tenant, std::slice::from_ref(point))?;
        Ok(verdicts.pop().expect("one verdict per point"))
    }

    /// Processes a batch synchronously through the shared executor, under
    /// the panic guard.
    pub fn process_batch(&self, id: &TenantId, points: &[DataPoint]) -> Result<Vec<Verdict>> {
        self.admission_gate()?;
        let tenant = self.tenant(id)?;
        self.process_guarded(id, &tenant, points)
    }

    /// The synchronous processing paths' WAL hook: with a log attached the
    /// points are appended *before* the detector runs (still under the
    /// appender lock, so log order is processing order), which means a
    /// panic mid-batch leaves them durable — [`SpotFleet::revive_tenant`]
    /// and [`SpotFleet::recover`] re-derive the lost verdicts from the
    /// log. The health gate runs before the append so a quarantined
    /// tenant's rejected points do not haunt the log.
    fn process_guarded(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        points: &[DataPoint],
    ) -> Result<Vec<Verdict>> {
        let Some(wal) = tenant.wal_handle() else {
            return self.run_guarded(id, tenant, points);
        };
        let faults = self.injector();
        let mut ap = wal.appender();
        self.gate(id, tenant)?;
        for point in points {
            ap.append(id, point, faults.as_deref())?;
        }
        self.run_guarded(id, tenant, points)
    }

    /// Enqueues one point under the tenant's [`OverloadPolicy`]. With the
    /// default `Block` policy this **blocks** while the queue is full
    /// (backpressure: a slow tenant stalls its own producers, never the
    /// co-tenants) and always returns [`IngestOutcome::Enqueued`]; `Shed`
    /// and `Sample` never block and may return [`IngestOutcome::Shed`].
    /// Quarantined tenants still enqueue — the backlog is carried into the
    /// recovered tenant by [`SpotFleet::revive_tenant`].
    pub fn ingest(&self, id: &TenantId, point: DataPoint) -> Result<IngestOutcome> {
        self.admission_gate()?;
        let tenant = self.tenant(id)?;
        let policy = tenant.policy();
        // Scripted queue-full windows apply to the non-blocking policies
        // only: a blocking send on a queue with room returns immediately,
        // so a faked "full" has no observable Block behavior to test.
        let forced_full = !matches!(policy, OverloadPolicy::Block)
            && self.injector().is_some_and(|i| i.ingest_forced_full(id));
        if let Some(wal) = tenant.wal_handle() {
            return self.ingest_walled(id, &tenant, &wal, point, policy, forced_full);
        }
        match policy {
            OverloadPolicy::Block => {
                self.enqueue_blocking(id, &tenant, point)?;
                Ok(IngestOutcome::Enqueued)
            }
            OverloadPolicy::Shed => {
                let rejected = if forced_full {
                    Some(point)
                } else {
                    self.enqueue_nonblocking(id, &tenant, point)?
                };
                match rejected {
                    None => Ok(IngestOutcome::Enqueued),
                    Some(_) => {
                        tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                        tenant.shed.fetch_add(1, Ordering::Relaxed);
                        Ok(IngestOutcome::Shed)
                    }
                }
            }
            OverloadPolicy::Sample { keep_one_in } => {
                let k = u64::from(keep_one_in.max(1));
                let rejected = if forced_full {
                    Some(point)
                } else {
                    self.enqueue_nonblocking(id, &tenant, point)?
                };
                match rejected {
                    None => Ok(IngestOutcome::Enqueued),
                    Some(point) => {
                        // Deterministic 1-in-k: admit full-queue encounters
                        // 0, k, 2k, … — a pure function of the encounter
                        // ordinal, independent of clocks and scheduling.
                        let n = tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                        if n % k == 0 {
                            self.enqueue_blocking(id, &tenant, point)?;
                            tenant.sampled_kept.fetch_add(1, Ordering::Relaxed);
                            Ok(IngestOutcome::Enqueued)
                        } else {
                            tenant.shed.fetch_add(1, Ordering::Relaxed);
                            Ok(IngestOutcome::Shed)
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking enqueue: `Ok(false)` when the queue is at capacity.
    /// Policy-independent (never sheds, never consults the fault plan for
    /// queue windows — injected WAL crashes still fire, as they would on
    /// any append).
    pub fn try_ingest(&self, id: &TenantId, point: DataPoint) -> Result<bool> {
        self.admission_gate()?;
        let tenant = self.tenant(id)?;
        let Some(wal) = tenant.wal_handle() else {
            return Ok(self.enqueue_nonblocking(id, &tenant, point)?.is_none());
        };
        let faults = self.injector();
        let mut ap = wal.appender();
        if tenant.queued.load(Ordering::Relaxed) >= self.inner.config.queue_capacity {
            return Ok(false);
        }
        ap.append(id, &point, faults.as_deref())?;
        self.enqueue_blocking(id, &tenant, point)?;
        Ok(true)
    }

    /// The queued ingestion path with a WAL attached: the point is
    /// appended to the log *before* it is enqueued, and the appender lock
    /// is held across both so the log's sequence order is exactly the
    /// queue's arrival order — the invariant that makes `processed -
    /// base_processed` a valid replay watermark. Shed points are *not*
    /// logged (they are not admitted, so recovery must not resurrect
    /// them). Capacity is pre-checked under the appender lock — producers
    /// are serialized by it, so a positive check cannot be invalidated
    /// before the enqueue (drains only make room) and the blocking send
    /// returns immediately.
    fn ingest_walled(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        wal: &TenantWal,
        point: DataPoint,
        policy: OverloadPolicy,
        forced_full: bool,
    ) -> Result<IngestOutcome> {
        let faults = self.injector();
        let mut ap = wal.appender();
        let full = forced_full
            || tenant.queued.load(Ordering::Relaxed) >= self.inner.config.queue_capacity;
        match policy {
            OverloadPolicy::Block => {
                ap.append(id, &point, faults.as_deref())?;
                self.enqueue_blocking(id, tenant, point)?;
                Ok(IngestOutcome::Enqueued)
            }
            OverloadPolicy::Shed => {
                if full {
                    tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                    tenant.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(IngestOutcome::Shed);
                }
                ap.append(id, &point, faults.as_deref())?;
                self.enqueue_blocking(id, tenant, point)?;
                Ok(IngestOutcome::Enqueued)
            }
            OverloadPolicy::Sample { keep_one_in } => {
                let k = u64::from(keep_one_in.max(1));
                if !full {
                    ap.append(id, &point, faults.as_deref())?;
                    self.enqueue_blocking(id, tenant, point)?;
                    return Ok(IngestOutcome::Enqueued);
                }
                let n = tenant.overflow_seen.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(k) {
                    ap.append(id, &point, faults.as_deref())?;
                    self.enqueue_blocking(id, tenant, point)?;
                    tenant.sampled_kept.fetch_add(1, Ordering::Relaxed);
                    Ok(IngestOutcome::Enqueued)
                } else {
                    tenant.shed.fetch_add(1, Ordering::Relaxed);
                    Ok(IngestOutcome::Shed)
                }
            }
        }
    }

    fn enqueue_blocking(&self, id: &TenantId, tenant: &Tenant, point: DataPoint) -> Result<()> {
        // Count before the send so a drain that pops the point immediately
        // can never decrement a counter that was not yet incremented.
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        tenant.tx.send(point).map_err(|_| {
            tenant.queued.fetch_sub(1, Ordering::Relaxed);
            SpotError::UnknownTenant(id.to_string())
        })
    }

    /// `Ok(None)`: enqueued. `Ok(Some(point))`: queue full, point handed
    /// back to the caller (for the sampler's survivor slot).
    fn enqueue_nonblocking(
        &self,
        id: &TenantId,
        tenant: &Tenant,
        point: DataPoint,
    ) -> Result<Option<DataPoint>> {
        tenant.queued.fetch_add(1, Ordering::Relaxed);
        match tenant.tx.try_send(point) {
            Ok(()) => Ok(None),
            Err(TrySendError::Full(point)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Ok(Some(point))
            }
            Err(TrySendError::Disconnected(_)) => {
                tenant.queued.fetch_sub(1, Ordering::Relaxed);
                Err(SpotError::UnknownTenant(id.to_string()))
            }
        }
    }

    /// Points currently queued for `id`.
    pub fn queue_len(&self, id: &TenantId) -> Result<usize> {
        Ok(self.tenant(id)?.queued.load(Ordering::Relaxed))
    }

    /// The tenant's dimensionality (φ), without touching the detector
    /// lock. Admission-side validators use this to reject malformed
    /// points *before* they are queued — the detector's own validation
    /// runs at drain time, where a bad point discards its whole
    /// micro-batch (see [`SpotFleet::drain`]).
    pub fn tenant_dims(&self, id: &TenantId) -> Result<usize> {
        Ok(self.tenant(id)?.phi)
    }

    /// Drains up to one micro-batch (`FleetConfig::micro_batch` points)
    /// from the tenant's queue and processes it through the shared
    /// executor, returning the verdicts in arrival order. An empty queue
    /// returns an empty vector. Call in a loop (or use
    /// [`SpotFleet::drain_fully`]) to exhaust a backlog.
    ///
    /// An error (e.g. a NaN point → [`SpotError::NonFiniteValue`])
    /// discards the dequeued micro-batch: the detector's all-or-nothing
    /// validation rejected it wholesale, and a poisoned batch cannot be
    /// replayed. Validate upstream when inputs are untrusted. A
    /// quarantined tenant errors with [`SpotError::TenantPoisoned`]
    /// *without* dequeuing — its backlog is preserved for recovery.
    pub fn drain(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        self.drain_tenant(id, &tenant)
    }

    /// Drains the tenant's current backlog (micro-batch at a time). The
    /// queued count is snapshotted **once**, and at most that many points
    /// are drained: a producer that keeps the queue full cannot turn this
    /// into an unbounded loop (the livelock the old drain-until-empty
    /// contract had). Points enqueued while the drain runs are left for
    /// the next call.
    pub fn drain_fully(&self, id: &TenantId) -> Result<Vec<Verdict>> {
        let tenant = self.tenant(id)?;
        // `queued` may transiently overcount by producers mid-`send`; the
        // empty-batch break below keeps that harmless (the drain ends as
        // soon as the channel runs dry).
        let mut remaining = tenant.queued.load(Ordering::Relaxed);
        let mut verdicts = Vec::new();
        while remaining > 0 {
            let batch = self.drain_tenant(id, &tenant)?;
            if batch.is_empty() {
                break;
            }
            remaining = remaining.saturating_sub(batch.len());
            verdicts.extend(batch);
        }
        Ok(verdicts)
    }

    /// One service pass over the whole fleet: drains up to one micro-batch
    /// from every tenant (sorted id order). The building block for a fleet
    /// service loop.
    ///
    /// Faults are **isolated, not propagated**: a tenant whose drain fails
    /// — quarantined after a panic, or a rejected batch — is reported as
    /// its own `(id, Err(..))` entry and the sweep continues; co-tenants
    /// are drained exactly as if the faulted tenant did not exist. Healthy
    /// tenants with nothing queued are omitted; a quarantined tenant is
    /// reported every pass until it recovers (or is evicted). Tenants
    /// evicted mid-pass are skipped.
    pub fn pump(&self) -> Vec<(TenantId, Result<Vec<Verdict>>)> {
        let mut out = Vec::new();
        for id in self.tenant_ids() {
            // A tenant evicted between the listing and the drain is skipped.
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            match self.drain_tenant(&id, &tenant) {
                Ok(verdicts) if verdicts.is_empty() => {}
                result => out.push((id, result)),
            }
        }
        out
    }

    fn drain_tenant(&self, id: &TenantId, tenant: &Tenant) -> Result<Vec<Verdict>> {
        // Gate *before* touching the queue: a quarantined tenant must not
        // consume its backlog — those points are carried into the
        // recovered tenant by `revive_tenant`.
        self.gate(id, tenant)?;
        // The rx guard is held through processing: it is what serializes
        // concurrent drains of this tenant, and releasing it between the
        // pop and the process_batch would let a second drainer commit a
        // later micro-batch first, breaking arrival order. Producers are
        // unaffected — they block on the channel's capacity, not this
        // lock. A panic inside `run_guarded` is caught *inside* this
        // frame, so the guard is released normally and the queue stays
        // drainable after recovery.
        let rx = tenant.rx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rx) = rx.as_ref() else {
            // Evicted while this caller still held an Arc to the entry.
            return Ok(Vec::new());
        };
        let mut batch: Vec<DataPoint> = Vec::new();
        while batch.len() < self.inner.config.micro_batch {
            match rx.try_recv() {
                Ok(p) => {
                    tenant.queued.fetch_sub(1, Ordering::Relaxed);
                    batch.push(p);
                }
                Err(_) => break,
            }
        }
        self.run_guarded(id, tenant, &batch)
    }

    // ---- monitoring (never takes a detector lock) -----------------------

    /// Aggregated logical counters + queue occupancy + supervision
    /// counters over every tenant. Reads each tenant's stats seqlock,
    /// queue counter and health/overload atomics only — never any detector
    /// lock, so dashboards cannot stall (or be stalled by) ingestion.
    pub fn stats(&self) -> FleetStats {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetStats {
            tenants: tenants.len(),
            panics: self.inner.panics.load(Ordering::Relaxed),
            recoveries: self.inner.recoveries.load(Ordering::Relaxed),
            wal_prune_failures: self.inner.prune_failures.load(Ordering::Relaxed),
            ..FleetStats::default()
        };
        for t in &tenants {
            let s = t.shared.stats();
            match t.state.load(Ordering::Acquire) {
                HEALTH_QUARANTINED => agg.quarantined += 1,
                HEALTH_FAILED => agg.failed += 1,
                _ => {}
            }
            agg.queued += t.queued.load(Ordering::Relaxed);
            agg.processed += s.processed;
            agg.outliers += s.outliers;
            agg.evolutions += s.evolutions;
            agg.os_added += s.os_added;
            agg.drift_events += s.drift_events;
            agg.cells_pruned += s.cells_pruned;
            agg.shed += t.shed.load(Ordering::Relaxed);
            agg.sampled_kept += t.sampled_kept.load(Ordering::Relaxed);
        }
        agg
    }

    /// One tenant's logical counters (lock-free seqlock read).
    pub fn tenant_stats(&self, id: &TenantId) -> Result<SpotStats> {
        Ok(self.tenant(id)?.shared.stats())
    }

    /// Aggregated synopsis memory over every tenant (lock-free mirrors).
    pub fn footprint(&self) -> FleetFootprint {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        let mut agg = FleetFootprint {
            tenants: tenants.len(),
            ..FleetFootprint::default()
        };
        for t in &tenants {
            let f = t.shared.footprint();
            agg.base_cells += f.base_cells;
            agg.projected_cells += f.projected_cells;
            agg.approx_bytes += f.approx_bytes;
        }
        agg
    }

    /// One tenant's synopsis footprint (lock-free mirror read).
    pub fn tenant_footprint(&self, id: &TenantId) -> Result<SynopsisFootprint> {
        Ok(self.tenant(id)?.shared.footprint())
    }

    /// Runs a closure with exclusive access to one tenant's detector (the
    /// escape hatch for anything the fleet API does not cover). Not
    /// health-gated and not panic-guarded: the caller sees the detector as
    /// it is, torn state included — check [`SpotFleet::health`] first when
    /// that matters.
    pub fn with_tenant<R>(&self, id: &TenantId, f: impl FnOnce(&mut Spot) -> R) -> Result<R> {
        Ok(self.tenant(id)?.shared.with(f))
    }

    // ---- durability -----------------------------------------------------

    /// Captures a versioned checkpoint of every **healthy** tenant (sorted
    /// id order). Each tenant's capture is the standard v2
    /// `SpotCheckpoint` — one claim unit per projected store, dispatched
    /// over the shared pool when the service is pooled — so a tenant
    /// restored from it is bit-exact, standalone or in any fleet.
    /// Quarantined/failed tenants are skipped: their in-memory state is
    /// untrusted and must not contaminate a checkpoint (restore them from
    /// a pre-fault shadow instead). Queued-but-undrained points are *not*
    /// part of the checkpoint (they have not been processed; drain first
    /// for a checkpoint at a chosen stream position).
    pub fn checkpoint(&self) -> FleetCheckpoint {
        self.checkpoint_marked().0
    }

    /// [`SpotFleet::checkpoint`] plus each captured tenant's
    /// [`CaptureMark`], taken under the same detector lock hold as the
    /// capture — the diff base a later delta checkpoint works from.
    fn checkpoint_marked(&self) -> (FleetCheckpoint, HashMap<TenantId, CaptureMark>) {
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        let mut tenants = Vec::new();
        let mut wal_positions = Vec::new();
        let mut marks = HashMap::new();
        for id in self.tenant_ids() {
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            if tenant.state.load(Ordering::Acquire) != HEALTH_HEALTHY {
                continue;
            }
            // Capture + position read under one detector lock hold: the
            // recorded WAL watermark must be the stream position of *this*
            // capture, not of whatever processed concurrently after it.
            let (cp, processed, mark) = tenant.shared.with(|s| {
                let cp = s.checkpoint_with(exec);
                let processed = s.stats().processed;
                let mark = s.capture_mark();
                (cp, processed, mark)
            });
            if let Some(wal) = tenant.wal_handle() {
                wal_positions.push((id.clone(), processed.saturating_sub(wal.base_processed())));
            }
            marks.insert(id.clone(), mark);
            tenants.push((id, cp));
        }
        (FleetCheckpoint::with_wal(tenants, wal_positions), marks)
    }

    /// [`SpotFleet::checkpoint`] made durable: saves the capture into a
    /// [`CheckpointStore`] and then prunes every tenant's WAL behind the
    /// watermark the checkpoint recorded — sealed segments whose records
    /// are all covered by the saved state are deleted, which is what keeps
    /// log growth bounded by checkpoint cadence. A pruning failure does
    /// not fail the checkpoint (retained segments only cost replay time)
    /// but is counted in [`FleetStats::wal_prune_failures`]; the save
    /// itself is the durability point and its errors propagate. Returns
    /// the new checkpoint generation.
    ///
    /// A successful save also re-arms the delta machinery: subsequent
    /// [`SpotFleet::checkpoint_durable_delta`] calls diff against this
    /// generation.
    pub fn checkpoint_durable(&self, store: &CheckpointStore) -> Result<u64> {
        let (cp, marks) = self.checkpoint_marked();
        let generation = store.save(&cp)?;
        self.set_delta_state(DeltaState {
            generation,
            chain_len: 0,
            marks,
        });
        if self.injector().is_some_and(|i| i.take_prune_crash()) {
            // The crash lands after the rename made the checkpoint
            // reachable but before any pruning: recovery must tolerate a
            // WAL that still holds records from *before* the watermark.
            self.kill_wals("injected crash between checkpoint save and WAL prune");
            return Ok(generation);
        }
        self.prune_wals(cp.wal_positions());
        Ok(generation)
    }

    /// How many deltas may extend one full checkpoint before
    /// [`SpotFleet::checkpoint_durable_delta`] rebases (writes a full
    /// checkpoint again). Bounds both recovery's chain-resolution work
    /// and the window a damaged anchor can poison.
    const REBASE_EVERY: usize = 8;

    /// A durable **delta** checkpoint: captures only what each tenant
    /// dirtied since the last durable capture (per-store synopsis diffs
    /// keyed by registration ordinal) and appends it to the store as a
    /// chain extension of that generation. Falls back to a full
    /// [`SpotFleet::checkpoint_durable`] whenever a delta would be
    /// unsound or unprofitable: no durable capture has run yet, the
    /// store's latest generation is not the one the marks describe
    /// (someone else checkpointed in between), or the chain has reached
    /// [`SpotFleet::REBASE_EVERY`] links. WAL pruning behaves exactly as
    /// in the full path. Returns the new generation.
    pub fn checkpoint_durable_delta(&self, store: &CheckpointStore) -> Result<u64> {
        let Some(ds) = self.get_delta_state() else {
            return self.checkpoint_durable(store);
        };
        if ds.chain_len + 1 >= Self::REBASE_EVERY
            || store.generations()?.last().copied() != Some(ds.generation)
        {
            return self.checkpoint_durable(store);
        }
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        let mut entries = Vec::new();
        let mut wal_positions = Vec::new();
        let mut marks = HashMap::new();
        for id in self.tenant_ids() {
            let Ok(tenant) = self.tenant(&id) else {
                continue;
            };
            if tenant.state.load(Ordering::Acquire) != HEALTH_HEALTHY {
                continue;
            }
            let prev_mark = ds.marks.get(&id);
            let (entry, processed, mark) = tenant.shared.with(|s| {
                let entry = match prev_mark {
                    Some(prev) => match s.delta_capture_with(exec, prev) {
                        DeltaCapture::Unchanged => TenantEntry::Unchanged,
                        DeltaCapture::Delta(d) => TenantEntry::Delta(d),
                        DeltaCapture::Full => TenantEntry::Full(s.checkpoint_with(exec)),
                    },
                    // New tenant since the parent generation: full capture.
                    None => TenantEntry::Full(s.checkpoint_with(exec)),
                };
                let processed = s.stats().processed;
                let mark = s.capture_mark();
                (entry, processed, mark)
            });
            if let Some(wal) = tenant.wal_handle() {
                wal_positions.push((id.clone(), processed.saturating_sub(wal.base_processed())));
            }
            marks.insert(id.clone(), mark);
            entries.push((id, entry));
        }
        let removed: Vec<TenantId> = ds
            .marks
            .keys()
            .filter(|prev| !entries.iter().any(|(id, _)| id == *prev))
            .cloned()
            .collect();
        let delta = FleetDelta::new(ds.generation, entries, removed, wal_positions.clone());
        let generation = match store.save_delta(&delta) {
            Ok(g) => g,
            // Lost the race to another save between the eligibility check
            // and the append: rebase with a full checkpoint.
            Err(SpotError::InvalidConfig(_)) => return self.checkpoint_durable(store),
            Err(e) => return Err(e),
        };
        self.set_delta_state(DeltaState {
            generation,
            chain_len: ds.chain_len + 1,
            marks,
        });
        if self.injector().is_some_and(|i| i.take_prune_crash()) {
            self.kill_wals("injected crash between checkpoint save and WAL prune");
            return Ok(generation);
        }
        self.prune_wals(&wal_positions);
        Ok(generation)
    }

    fn get_delta_state(&self) -> Option<DeltaState> {
        self.inner
            .delta_state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn set_delta_state(&self, state: DeltaState) {
        *self
            .inner
            .delta_state
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(state);
    }

    /// Prunes each listed tenant's WAL behind its checkpoint watermark,
    /// counting (not swallowing) failures.
    fn prune_wals(&self, positions: &[(TenantId, u64)]) {
        for (id, watermark) in positions {
            let Ok(tenant) = self.tenant(id) else {
                continue;
            };
            if let Some(wal) = tenant.wal_handle() {
                if wal.prune_to(*watermark).is_err() {
                    self.inner.prune_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Marks every tenant's WAL writer dead (crash simulation support).
    fn kill_wals(&self, reason: &str) {
        let tenants: Vec<Arc<Tenant>> = read_lock(&self.inner.tenants).values().cloned().collect();
        for t in &tenants {
            if let Some(wal) = t.wal_handle() {
                wal.kill(reason);
            }
        }
    }

    /// Captures one healthy tenant's checkpoint (the supervisor's shadow
    /// primitive). Errors with [`SpotError::TenantPoisoned`] when the
    /// tenant is quarantined/failed — a torn detector must never be
    /// checkpointed.
    pub fn checkpoint_tenant(&self, id: &TenantId) -> Result<SpotCheckpoint> {
        let tenant = self.tenant(id)?;
        self.gate(id, &tenant)?;
        let pool = self.inner.exec.pool_for_capture();
        let exec: &dyn StoreExecutor = match &pool {
            Some(pool) => &**pool,
            None => &SerialExecutor,
        };
        Ok(tenant.shared.with(|s| s.checkpoint_with(exec)))
    }

    /// Replaces a registered tenant's detector with one restored from a
    /// checkpoint, **carrying forward** everything the fault did not
    /// destroy, and marking it healthy. This is the recovery primitive the
    /// [`crate::Supervisor`] drives for quarantined tenants; it also works
    /// on a healthy tenant (a forced rollback). Errors with
    /// [`SpotError::UnknownTenant`] when `id` is not registered.
    ///
    /// Without a WAL the queued backlog is moved into the new queue
    /// (arrival order preserved — both queues share one capacity bound, so
    /// it always fits) and the returned count is the backlog carried; the
    /// window between the checkpoint's stream position and the fault is
    /// gone. **With a WAL** the log *is* the backlog: the retiring queue
    /// is discarded (every point in it is also in the log) and the log
    /// tail past the restored position — lost window, failed batch and
    /// backlog alike — is replayed through the normal processing path,
    /// re-deriving bit-identical verdicts; the returned count is the
    /// records replayed. Either way the overload policy and counters
    /// survive. The appender lock is held from the swap through the
    /// replay, so producers blocked on it resume only once the log and
    /// queue agree again.
    ///
    /// Without a WAL, points a producer ingests during the swap itself may
    /// land in the retiring queue and be dropped with it — drive recovery
    /// from the thread that also services the tenant, or pause its
    /// producers.
    pub fn revive_tenant(&self, id: &TenantId, cp: &SpotCheckpoint) -> Result<u64> {
        let outcome = self.revive_tenant_inner(id, cp)?;
        Ok(if outcome.walled {
            outcome.replayed
        } else {
            outcome.carried
        })
    }

    pub(crate) fn revive_tenant_inner(
        &self,
        id: &TenantId,
        cp: &SpotCheckpoint,
    ) -> Result<ReviveOutcome> {
        let mut spot = Spot::from_checkpoint(cp)?;
        spot.set_executor(self.inner.exec.clone());
        let replacement = Arc::new(Tenant::fresh(spot, self.inner.config.queue_capacity));
        let mut carried = 0u64;
        // Hold the registry write lock across the backlog transfer so no
        // new `ingest` can resolve the retiring entry mid-swap.
        let mut map = write_lock(&self.inner.tenants);
        let old = map
            .get(id)
            .cloned()
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        let wal = old.wal_handle();
        {
            let guard = old.rx.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(old_rx) = guard.as_ref() {
                while let Ok(p) = old_rx.try_recv() {
                    old.queued.fetch_sub(1, Ordering::Relaxed);
                    // Walled: the point is in the log at a sequence past
                    // the restored position — the replay below re-admits
                    // it; copying it into the new queue too would process
                    // it twice.
                    if wal.is_none() && replacement.tx.try_send(p).is_ok() {
                        carried += 1;
                    }
                }
            }
        }
        replacement
            .queued
            .store(carried as usize, Ordering::Relaxed);
        replacement.set_policy(old.policy());
        replacement
            .overflow_seen
            .store(old.overflow_seen.load(Ordering::Relaxed), Ordering::Relaxed);
        replacement
            .shed
            .store(old.shed.load(Ordering::Relaxed), Ordering::Relaxed);
        replacement
            .sampled_kept
            .store(old.sampled_kept.load(Ordering::Relaxed), Ordering::Relaxed);
        if let Some(w) = &wal {
            replacement.attach_wal(w.clone());
        }
        map.insert(id.clone(), replacement.clone());
        // Take the appender *before* releasing the registry lock: it
        // serializes the replay against producers, so anything admitted
        // after it releases is past the replayed tail and nothing is
        // processed twice. (A producer already blocked in
        // `enqueue_blocking` against the *retiring* queue is the
        // pre-existing swap caveat documented above.)
        let ap = wal.as_ref().map(|w| w.appender());
        drop(map);
        let mut replayed = 0u64;
        if let Some(w) = &wal {
            replayed = self.replay_wal_tail(id, &replacement, w)?;
        }
        drop(ap);
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(ReviveOutcome {
            carried,
            replayed,
            walled: wal.is_some(),
        })
    }

    /// Replays a tenant's WAL records past its detector's current stream
    /// position through the guarded processing path, returning how many
    /// were replayed. The re-derived verdicts are dropped — replay exists
    /// to rebuild detector state; determinism guarantees they are
    /// bit-identical to what the original stream produced (or would have).
    fn replay_wal_tail(&self, id: &TenantId, tenant: &Tenant, wal: &TenantWal) -> Result<u64> {
        let processed = tenant.shared.stats().processed;
        let watermark = processed.checked_sub(wal.base_processed()).ok_or_else(|| {
            SpotError::WalCorrupt(format!(
                "tenant {id}: restored stream position {processed} precedes the log base {}",
                wal.base_processed()
            ))
        })?;
        let tail = read_wal_from(wal.dir(), watermark)?;
        let mut replayed = 0u64;
        for chunk in tail.chunks(self.inner.config.micro_batch) {
            let points: Vec<DataPoint> = chunk.iter().map(|(_, p)| p.clone()).collect();
            self.run_guarded(id, tenant, &points)?;
            replayed += points.len() as u64;
        }
        Ok(replayed)
    }

    /// Restores one tenant from a fleet checkpoint, **replacing** any
    /// detector currently registered under the id (or registering it
    /// fresh). The restored detector is rewired onto this fleet's shared
    /// executor service — restoring into a fleet with a different worker
    /// count is bit-exact. Errors with [`SpotError::UnknownTenant`] when
    /// the checkpoint holds no such tenant; the tenant's queue restarts
    /// empty (use [`SpotFleet::revive_tenant`] to carry a backlog).
    pub fn restore_tenant(&self, checkpoint: &FleetCheckpoint, id: &TenantId) -> Result<()> {
        let cp = checkpoint
            .get(id)
            .ok_or_else(|| SpotError::UnknownTenant(id.to_string()))?;
        let mut spot = Spot::from_checkpoint(cp)?;
        spot.set_executor(self.inner.exec.clone());
        self.install(id.clone(), spot, true)
    }

    /// Builds a fleet holding every tenant of the checkpoint.
    pub fn from_checkpoint(checkpoint: &FleetCheckpoint, config: FleetConfig) -> Result<Self> {
        Self::from_checkpoint_with(checkpoint, config, ExecutorHandle::default_for_build())
    }

    /// [`SpotFleet::from_checkpoint`] with an explicit executor service.
    pub fn from_checkpoint_with(
        checkpoint: &FleetCheckpoint,
        config: FleetConfig,
        exec: ExecutorHandle,
    ) -> Result<Self> {
        let fleet = Self::with_executor(config, exec);
        for id in checkpoint.tenant_ids() {
            fleet.restore_tenant(checkpoint, &id)?;
        }
        Ok(fleet)
    }

    // ---- crash recovery -------------------------------------------------

    /// Rebuilds a fleet from a durable state directory after a crash:
    /// restores the newest valid checkpoint from `dir` (the
    /// [`CheckpointStore`] layout, sweeping stray `.tmp` files), then
    /// replays each tenant's WAL tail — everything admitted after that
    /// checkpoint — through the normal enqueue/drain path. Because replay
    /// re-derives state from the same points in the same order, the
    /// recovered fleet's subsequent verdict stream is **bit-identical** to
    /// an uncrashed run's: with the WAL enabled, a crash loses no admitted
    /// point.
    ///
    /// Works on every on-disk shape a crash can leave: no checkpoint at
    /// all (empty fleet, WAL dirs reported unclaimed), a torn newest
    /// checkpoint (falls back a generation and replays the longer tail),
    /// a torn WAL tail (truncated at the last valid record — those final
    /// unsynced points are the only possible loss, bounded by the
    /// [`FsyncPolicy`]), and a crash between checkpoint save and WAL prune
    /// (the stale log prefix behind the watermark is simply not replayed,
    /// then pruned at the next checkpoint). Errors with
    /// [`SpotError::WalCorrupt`] on real damage — a checksum-valid log
    /// that contradicts the checkpoint, or corruption *before* the tail.
    pub fn recover(dir: impl AsRef<Path>, config: FleetConfig) -> Result<(Self, FleetRecovery)> {
        Self::recover_with(
            dir,
            config,
            WalTuning::default(),
            ExecutorHandle::default_for_build(),
            DEFAULT_CHECKPOINT_RETAIN,
        )
    }

    /// [`SpotFleet::recover`] with explicit WAL tuning, executor service
    /// and checkpoint retention (the recovered fleet keeps writing to the
    /// same directory with these settings).
    pub fn recover_with(
        dir: impl AsRef<Path>,
        config: FleetConfig,
        tuning: WalTuning,
        exec: ExecutorHandle,
        retain: usize,
    ) -> Result<(Self, FleetRecovery)> {
        let dir = dir.as_ref();
        let store = CheckpointStore::open(dir, retain)?;
        let swept_tmp = store.swept_tmp();
        let scan = store.load_latest()?;
        let (generation, checkpoint) = match scan.recovered {
            Some((g, cp)) => (Some(g), cp),
            None => (None, FleetCheckpoint::new(Vec::new())),
        };
        let fleet = Self::from_checkpoint_with(&checkpoint, config, exec)?;
        let wal_root = dir.join("wal");
        *fleet.inner.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(WalSettings {
            root: wal_root.clone(),
            tuning,
        });
        let mut recovery = FleetRecovery {
            generation,
            rejected: scan.rejected,
            replayed: Vec::new(),
            unclaimed: Vec::new(),
            swept_tmp,
        };
        let chunk = fleet
            .inner
            .config
            .micro_batch
            .min(fleet.inner.config.queue_capacity)
            .max(1);
        for id in fleet.tenant_ids() {
            let tenant = fleet.tenant(&id)?;
            let processed = tenant.shared.stats().processed;
            let wal = Arc::new(TenantWal::open(
                wal_root.join(tenant_dir_name(&id)),
                processed,
                tuning,
            )?);
            let watermark = processed.checked_sub(wal.base_processed()).ok_or_else(|| {
                SpotError::WalCorrupt(format!(
                    "tenant {id}: checkpointed stream position {processed} precedes the log \
                     base {}",
                    wal.base_processed()
                ))
            })?;
            // Cross-check against the position the checkpoint recorded: a
            // mismatch means the log and the checkpoint are not from the
            // same run (an operator mixed directories) — replaying would
            // silently corrupt the detector.
            if let Some(recorded) = checkpoint.wal_position(&id) {
                if recorded != watermark {
                    return Err(SpotError::WalCorrupt(format!(
                        "tenant {id}: checkpoint generation {:?} records WAL position \
                         {recorded} but the log on disk implies {watermark}",
                        generation
                    )));
                }
            }
            let tail = read_wal_from(wal.dir(), watermark)?;
            tenant.attach_wal(wal);
            if tail.is_empty() {
                continue;
            }
            // Replay through the normal enqueue → drain path — the same
            // micro-batched guarded processing a live stream gets.
            let mut replayed = 0u64;
            for batch in tail.chunks(chunk) {
                for (_, point) in batch {
                    fleet.enqueue_blocking(&id, &tenant, point.clone())?;
                }
                fleet.drain_fully(&id)?;
                replayed += batch.len() as u64;
            }
            recovery.replayed.push((id.clone(), replayed));
        }
        // WAL directories with no tenant in the restored checkpoint:
        // surfaced, never silently deleted (the log may be the only
        // surviving copy of that tenant's data).
        let claimed: Vec<String> = fleet.tenant_ids().iter().map(tenant_dir_name).collect();
        if let Ok(entries) = std::fs::read_dir(&wal_root) {
            for entry in entries.flatten() {
                if !entry.path().is_dir() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().into_owned();
                if !claimed.contains(&name) {
                    recovery.unclaimed.push(name);
                }
            }
        }
        recovery.unclaimed.sort();
        Ok((fleet, recovery))
    }
}

/// Checkpoint generations [`SpotFleet::recover`] keeps by default.
const DEFAULT_CHECKPOINT_RETAIN: usize = 4;

// Lock-poisoning policy (audited with the supervision plane): every std
// lock in this module recovers the guard with `into_inner` instead of
// panicking. The compat `parking_lot` Mutex guarding each detector does
// the same, which means a panic inside detector code leaves a *usable
// lock around torn state* — that is exactly why a caught panic
// quarantines the tenant: the health gate, not lock poisoning, is what
// keeps torn state unobservable.
fn read_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<'a, K, V>(
    lock: &'a RwLock<HashMap<K, V>>,
) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}
