//! Fleet-level durable state: a versioned container of per-tenant v2
//! checkpoints.
//!
//! A [`FleetCheckpoint`] composes, per tenant, exactly the
//! [`SpotCheckpoint`] a standalone detector captures — the same
//! column-oriented `DurableState` trees, the same bit-exactness contract
//! (see `docs/persistence.md`). The fleet layer adds only an envelope:
//! its own format version, the tenant ids, and (since envelope v2) each
//! tenant's WAL replay watermark, all sorted so capture → restore →
//! capture is a byte-level fixed point.
//!
//! Versioning follows the detector loader's policy: unknown envelope
//! versions yield [`SpotError::UnsupportedSnapshotVersion`], structurally
//! broken payloads yield [`SpotError::SnapshotCorrupt`] — never a panic.
//! The per-tenant payloads version independently (they carry the v2
//! `SpotCheckpoint` version field), so a future v3 detector format slots
//! in without changing the envelope.
//!
//! The envelope additionally seals its payload with an FNV-1a 64 checksum
//! (`checksum` field, over the canonical rendering of the `tenants`
//! array): a torn or bit-flipped file that still parses as JSON is
//! rejected as [`SpotError::SnapshotCorrupt`] instead of silently
//! restoring a subtly wrong engine. Envelopes without the field (written
//! before it existed) are still accepted. [`CheckpointStore`] layers
//! crash-safe *files* on top: atomic tmp + fsync + rename writes, a
//! bounded window of retained generations, and recovery that scans for
//! the newest valid file.

use serde::{DeError, Deserialize, Serialize, Value};
use spot::SpotCheckpoint;
use spot_types::{fnv1a64, Result, SpotError, TenantId};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Fleet checkpoint envelope version. Version 2 added the per-tenant WAL
/// replay watermarks (`wal` + `wal_checksum` fields); version-1 envelopes
/// are still accepted and read back with no positions.
pub const FLEET_CHECKPOINT_VERSION: u32 = 2;

/// The oldest envelope version the loader still accepts.
pub const FLEET_CHECKPOINT_MIN_VERSION: u32 = 1;

/// Durable state of a whole fleet: one v2 [`SpotCheckpoint`] per tenant,
/// sorted by tenant id, plus (when the ingestion WAL is enabled) each
/// tenant's WAL replay watermark — the log sequence number recovery
/// resumes replay from, equal to the tenant's `processed` counter minus
/// the log's `base_processed`.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    tenants: Vec<(TenantId, SpotCheckpoint)>,
    wal: Vec<(TenantId, u64)>,
}

impl FleetCheckpoint {
    /// Wraps per-tenant checkpoints (sorted by id; later duplicates of an
    /// id are dropped — the fleet registry cannot produce any), with no
    /// WAL positions.
    pub fn new(tenants: Vec<(TenantId, SpotCheckpoint)>) -> Self {
        Self::with_wal(tenants, Vec::new())
    }

    /// Wraps per-tenant checkpoints together with per-tenant WAL replay
    /// watermarks (both sorted by id, duplicates dropped).
    pub fn with_wal(
        mut tenants: Vec<(TenantId, SpotCheckpoint)>,
        mut wal: Vec<(TenantId, u64)>,
    ) -> Self {
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        tenants.dedup_by(|a, b| a.0 == b.0);
        wal.sort_by(|a, b| a.0.cmp(&b.0));
        wal.dedup_by(|a, b| a.0 == b.0);
        FleetCheckpoint { tenants, wal }
    }

    /// Per-tenant WAL replay watermarks, sorted by id (empty when the
    /// fleet had no WAL at capture time).
    pub fn wal_positions(&self) -> &[(TenantId, u64)] {
        &self.wal
    }

    /// One tenant's WAL replay watermark, if recorded.
    pub fn wal_position(&self, id: &TenantId) -> Option<u64> {
        self.wal
            .binary_search_by(|(t, _)| t.cmp(id))
            .ok()
            .map(|i| self.wal[i].1)
    }

    /// Tenant ids held by this checkpoint, sorted.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|(id, _)| id.clone()).collect()
    }

    /// The checkpoint of one tenant, if present.
    pub fn get(&self, id: &TenantId) -> Option<&SpotCheckpoint> {
        self.tenants
            .binary_search_by(|(t, _)| t.cmp(id))
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// Number of tenants captured.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant was captured.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Renders the checkpoint to JSON text (the expensive part of
    /// persistence; do it off any ingestion path).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet checkpoint serialization is infallible")
    }

    /// Parses JSON text into a fleet checkpoint with typed errors:
    /// unknown envelope versions yield
    /// [`SpotError::UnsupportedSnapshotVersion`], anything structurally
    /// broken (including duplicate or invalid tenant ids) yields
    /// [`SpotError::SnapshotCorrupt`].
    pub fn from_json(text: &str) -> Result<Self> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        let version = match value.get_field("version") {
            Some(&Value::U64(n)) => u32::try_from(n).unwrap_or(u32::MAX),
            Some(other) => {
                return Err(SpotError::SnapshotCorrupt(format!(
                    "version field is not an integer: {other:?}"
                )))
            }
            None => {
                return Err(SpotError::SnapshotCorrupt(
                    "missing version field".to_string(),
                ))
            }
        };
        if !(FLEET_CHECKPOINT_MIN_VERSION..=FLEET_CHECKPOINT_VERSION).contains(&version) {
            return Err(SpotError::UnsupportedSnapshotVersion(version));
        }
        Self::from_value(&value).map_err(|e| SpotError::SnapshotCorrupt(e.0))
    }
}

/// FNV-1a 64 of the canonical (compact-JSON) rendering of a payload
/// subtree — the quantity the envelope's `checksum` (tenants array) and
/// `wal_checksum` (wal array) fields seal. Both sides of the trip hash a
/// *rendering of a `Value`*, and capture → restore → capture being a
/// byte-level fixed point guarantees a re-parsed tree renders
/// identically, so a clean round trip always verifies.
fn payload_checksum(payload: &Value) -> u64 {
    let text = serde_json::to_string(payload)
        .expect("fleet checkpoint payload serialization is infallible");
    fnv1a64(text.as_bytes())
}

impl Serialize for FleetCheckpoint {
    fn to_value(&self) -> Value {
        let tenants = Value::Array(
            self.tenants
                .iter()
                .map(|(id, cp)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("checkpoint".to_string(), cp.to_value()),
                    ])
                })
                .collect(),
        );
        let wal = Value::Array(
            self.wal
                .iter()
                .map(|(id, seq)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("seq".to_string(), Value::U64(*seq)),
                    ])
                })
                .collect(),
        );
        let checksum = payload_checksum(&tenants);
        let wal_checksum = payload_checksum(&wal);
        Value::Object(vec![
            (
                "version".to_string(),
                Value::U64(FLEET_CHECKPOINT_VERSION as u64),
            ),
            ("checksum".to_string(), Value::U64(checksum)),
            ("wal_checksum".to_string(), Value::U64(wal_checksum)),
            ("tenants".to_string(), tenants),
            ("wal".to_string(), wal),
        ])
    }
}

impl Deserialize for FleetCheckpoint {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let version = u32::from_value(v.get_field("version").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("version"))?;
        if !(FLEET_CHECKPOINT_MIN_VERSION..=FLEET_CHECKPOINT_VERSION).contains(&version) {
            return Err(DeError::custom(format!(
                "expected fleet checkpoint version {FLEET_CHECKPOINT_MIN_VERSION}..={FLEET_CHECKPOINT_VERSION}, found {version}"
            )));
        }
        let tenants_value = v.get_field("tenants");
        let Some(tenants_field @ Value::Array(entries)) = tenants_value else {
            return Err(DeError::custom("missing or non-array field `tenants`"));
        };
        // Verify the checksum seal when present (older envelopes lack it).
        match v.get_field("checksum") {
            Some(&Value::U64(stored)) => {
                let computed = payload_checksum(tenants_field);
                if stored != computed {
                    return Err(DeError::custom(format!(
                        "checksum mismatch: envelope declares {stored:#018x}, \
                         payload hashes to {computed:#018x}"
                    )));
                }
            }
            Some(other) => {
                return Err(DeError::custom(format!(
                    "checksum field is not an integer: {other:?}"
                )))
            }
            None => {}
        }
        let mut tenants: Vec<(TenantId, SpotCheckpoint)> = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let id = match entry.get_field("id") {
                Some(Value::Str(name)) => TenantId::new(name)
                    .map_err(|e| DeError::custom(format!("tenant {i}: invalid id: {e}")))?,
                _ => return Err(DeError::custom(format!("tenant {i}: missing string id"))),
            };
            if tenants.iter().any(|(t, _)| *t == id) {
                return Err(DeError::custom(format!("duplicate tenant id {id:?}")));
            }
            let cp =
                SpotCheckpoint::from_value(entry.get_field("checkpoint").unwrap_or(&Value::Null))
                    .map_err(|e| e.in_field("checkpoint"))?;
            tenants.push((id, cp));
        }
        // WAL watermarks arrived with version 2; a v1 envelope reads back
        // with none. The same read policy as the tenants seal applies:
        // a present `wal` must be an array and a present `wal_checksum`
        // must verify, but both are optional on read (always written on
        // save) so hand-stripped/legacy envelopes keep loading.
        let mut wal: Vec<(TenantId, u64)> = Vec::new();
        if let Some(wal_field) = v.get_field("wal") {
            let Value::Array(positions) = wal_field else {
                return Err(DeError::custom("field `wal` is not an array"));
            };
            match v.get_field("wal_checksum") {
                Some(&Value::U64(stored)) => {
                    let computed = payload_checksum(wal_field);
                    if stored != computed {
                        return Err(DeError::custom(format!(
                            "wal_checksum mismatch: envelope declares {stored:#018x}, \
                             payload hashes to {computed:#018x}"
                        )));
                    }
                }
                Some(other) => {
                    return Err(DeError::custom(format!(
                        "wal_checksum field is not an integer: {other:?}"
                    )))
                }
                None => {}
            }
            for (i, entry) in positions.iter().enumerate() {
                let id = match entry.get_field("id") {
                    Some(Value::Str(name)) => TenantId::new(name).map_err(|e| {
                        DeError::custom(format!("wal position {i}: invalid id: {e}"))
                    })?,
                    _ => {
                        return Err(DeError::custom(format!(
                            "wal position {i}: missing string id"
                        )))
                    }
                };
                let seq = match entry.get_field("seq") {
                    Some(&Value::U64(seq)) => seq,
                    _ => {
                        return Err(DeError::custom(format!(
                            "wal position {i}: missing integer seq"
                        )))
                    }
                };
                if wal.iter().any(|(t, _)| *t == id) {
                    return Err(DeError::custom(format!("duplicate wal position {id:?}")));
                }
                wal.push((id, seq));
            }
        }
        Ok(FleetCheckpoint::with_wal(tenants, wal))
    }
}

// ---- crash-safe checkpoint files ---------------------------------------

const CKPT_PREFIX: &str = "fleet-";
const CKPT_SUFFIX: &str = ".ckpt";

/// Result of [`CheckpointStore::load_latest`]: the newest generation that
/// parsed and verified, plus every newer generation that had to be
/// rejected on the way there (and why).
#[derive(Debug)]
pub struct RecoveryScan {
    /// The newest valid retained checkpoint, or `None` when every
    /// retained generation is invalid (or none exist).
    pub recovered: Option<(u64, FleetCheckpoint)>,
    /// Generations rejected during the scan, newest first, with the typed
    /// error each produced (torn writes, bit flips, bad versions — never
    /// a panic).
    pub rejected: Vec<(u64, SpotError)>,
}

/// A directory of crash-safe fleet checkpoint files with bounded
/// retention.
///
/// * **Atomic writes** — [`CheckpointStore::save`] writes
///   `fleet-<generation>.ckpt.tmp`, fsyncs it, then renames it into place
///   (and best-effort fsyncs the directory): a crash at any instant
///   leaves either the complete previous state or the complete new one,
///   never a half-written `.ckpt` file. Stray `.tmp` files from a crash
///   are ignored by every read path and swept (deleted) the next time the
///   store is opened ([`CheckpointStore::swept_tmp`] reports how many).
/// * **Generations** — each save gets the next number; the oldest files
///   beyond the retention window are pruned after a successful rename, so
///   a corrupt newest generation never strands the fleet (recovery falls
///   back to an older one).
/// * **Typed recovery** — [`CheckpointStore::load_latest`] scans newest →
///   oldest, returning the first checkpoint that parses *and* passes the
///   envelope checksum; everything rejected is reported, not panicked on.
/// * **Fault harness** — [`CheckpointStore::corrupt`] and
///   [`CheckpointStore::truncate`] deterministically damage a retained
///   file so tests can drive the recovery path (see `docs/robustness.md`).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    swept: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory retaining the
    /// newest `retain` generations (clamped to at least 1). Stray
    /// `fleet-*.ckpt.tmp` files left by a crash mid-save are deleted here
    /// — they are, by construction, incomplete (a completed save renames
    /// its tmp away) and would otherwise accumulate forever.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        let mut swept = 0;
        let entries = std::fs::read_dir(&dir).map_err(|e| io_err("list", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(CKPT_PREFIX) && name.ends_with(".ckpt.tmp") {
                std::fs::remove_file(entry.path())
                    .map_err(|e| io_err("remove", &entry.path(), &e))?;
                swept += 1;
            }
        }
        Ok(CheckpointStore {
            dir,
            retain: retain.max(1),
            swept,
        })
    }

    /// Stray `.ckpt.tmp` files this store deleted when it was opened.
    pub fn swept_tmp(&self) -> usize {
        self.swept
    }

    /// The directory holding the checkpoint files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The retention window (newest generations kept).
    pub fn retain(&self) -> usize {
        self.retain
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir
            .join(format!("{CKPT_PREFIX}{generation:08}{CKPT_SUFFIX}"))
    }

    /// Retained generation numbers, oldest first.
    pub fn generations(&self) -> Result<Vec<u64>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err("list", &self.dir, &e))?;
        let mut gens = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &self.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(digits) = name
                .strip_prefix(CKPT_PREFIX)
                .and_then(|rest| rest.strip_suffix(CKPT_SUFFIX))
            else {
                continue;
            };
            if let Ok(g) = digits.parse::<u64>() {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Atomically persists a checkpoint as the next generation, prunes
    /// generations beyond the retention window, and returns the new
    /// generation number.
    pub fn save(&self, checkpoint: &FleetCheckpoint) -> Result<u64> {
        let generation = self.generations()?.last().copied().unwrap_or(0) + 1;
        let final_path = self.path_for(generation);
        let tmp_path = final_path.with_extension("ckpt.tmp");
        {
            let mut file =
                std::fs::File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
            file.write_all(checkpoint.to_json().as_bytes())
                .map_err(|e| io_err("write", &tmp_path, &e))?;
            // The data must be on stable storage *before* the rename makes
            // it reachable, or a crash could publish an empty file.
            file.sync_all().map_err(|e| io_err("sync", &tmp_path, &e))?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename", &tmp_path, &e))?;
        // Best effort: make the rename itself durable. Not all platforms
        // support fsync on a directory handle; recovery tolerates a
        // missing newest generation either way.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let gens = self.generations()?;
        if gens.len() > self.retain {
            for g in &gens[..gens.len() - self.retain] {
                let _ = std::fs::remove_file(self.path_for(*g));
            }
        }
        Ok(generation)
    }

    /// Loads one retained generation, with the envelope's typed errors
    /// ([`SpotError::SnapshotCorrupt`] / `UnsupportedSnapshotVersion`) for
    /// damaged files and [`SpotError::Io`] for missing ones.
    pub fn load(&self, generation: u64) -> Result<FleetCheckpoint> {
        let path = self.path_for(generation);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        let text = String::from_utf8(bytes).map_err(|e| {
            SpotError::SnapshotCorrupt(format!("{}: not valid UTF-8: {e}", path.display()))
        })?;
        FleetCheckpoint::from_json(&text)
    }

    /// Scans retained generations newest → oldest and returns the first
    /// that parses and verifies, together with every rejected newer
    /// generation. Never panics on damaged files.
    pub fn load_latest(&self) -> Result<RecoveryScan> {
        let mut rejected = Vec::new();
        for g in self.generations()?.into_iter().rev() {
            match self.load(g) {
                Ok(cp) => {
                    return Ok(RecoveryScan {
                        recovered: Some((g, cp)),
                        rejected,
                    })
                }
                Err(e) => rejected.push((g, e)),
            }
        }
        Ok(RecoveryScan {
            recovered: None,
            rejected,
        })
    }

    /// Fault harness: XORs `mask` into the byte at `offset` (taken modulo
    /// the file length) of a retained generation. A zero mask leaves the
    /// file intact.
    pub fn corrupt(&self, generation: u64, offset: usize, mask: u8) -> Result<()> {
        let path = self.path_for(generation);
        let mut bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        if bytes.is_empty() {
            return Err(SpotError::Io(format!("{}: empty file", path.display())));
        }
        let at = offset % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&path, &bytes).map_err(|e| io_err("write", &path, &e))?;
        Ok(())
    }

    /// Fault harness: truncates a retained generation to its first `len`
    /// bytes (a simulated torn write from a crash mid-`write` without the
    /// atomic rename protocol).
    pub fn truncate(&self, generation: u64, len: usize) -> Result<()> {
        let path = self.path_for(generation);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        let keep = len.min(bytes.len());
        std::fs::write(&path, &bytes[..keep]).map_err(|e| io_err("write", &path, &e))?;
        Ok(())
    }
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> SpotError {
    SpotError::Io(format!("{action} {}: {e}", path.display()))
}
