//! Fleet-level durable state: a versioned container of per-tenant v2
//! checkpoints.
//!
//! A [`FleetCheckpoint`] composes, per tenant, exactly the
//! [`SpotCheckpoint`] a standalone detector captures — the same
//! column-oriented `DurableState` trees, the same bit-exactness contract
//! (see `docs/persistence.md`). The fleet layer adds only an envelope:
//! its own format version and the tenant ids, sorted so capture →
//! restore → capture is a byte-level fixed point.
//!
//! Versioning follows the detector loader's policy: unknown envelope
//! versions yield [`SpotError::UnsupportedSnapshotVersion`], structurally
//! broken payloads yield [`SpotError::SnapshotCorrupt`] — never a panic.
//! The per-tenant payloads version independently (they carry the v2
//! `SpotCheckpoint` version field), so a future v3 detector format slots
//! in without changing the envelope.

use serde::{DeError, Deserialize, Serialize, Value};
use spot::SpotCheckpoint;
use spot_types::{Result, SpotError, TenantId};

/// Fleet checkpoint envelope version.
pub const FLEET_CHECKPOINT_VERSION: u32 = 1;

/// Durable state of a whole fleet: one v2 [`SpotCheckpoint`] per tenant,
/// sorted by tenant id.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    tenants: Vec<(TenantId, SpotCheckpoint)>,
}

impl FleetCheckpoint {
    /// Wraps per-tenant checkpoints (sorted by id; later duplicates of an
    /// id are dropped — the fleet registry cannot produce any).
    pub fn new(mut tenants: Vec<(TenantId, SpotCheckpoint)>) -> Self {
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        tenants.dedup_by(|a, b| a.0 == b.0);
        FleetCheckpoint { tenants }
    }

    /// Tenant ids held by this checkpoint, sorted.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|(id, _)| id.clone()).collect()
    }

    /// The checkpoint of one tenant, if present.
    pub fn get(&self, id: &TenantId) -> Option<&SpotCheckpoint> {
        self.tenants
            .binary_search_by(|(t, _)| t.cmp(id))
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// Number of tenants captured.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant was captured.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Renders the checkpoint to JSON text (the expensive part of
    /// persistence; do it off any ingestion path).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet checkpoint serialization is infallible")
    }

    /// Parses JSON text into a fleet checkpoint with typed errors:
    /// unknown envelope versions yield
    /// [`SpotError::UnsupportedSnapshotVersion`], anything structurally
    /// broken (including duplicate or invalid tenant ids) yields
    /// [`SpotError::SnapshotCorrupt`].
    pub fn from_json(text: &str) -> Result<Self> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        let version = match value.get_field("version") {
            Some(&Value::U64(n)) => u32::try_from(n).unwrap_or(u32::MAX),
            Some(other) => {
                return Err(SpotError::SnapshotCorrupt(format!(
                    "version field is not an integer: {other:?}"
                )))
            }
            None => {
                return Err(SpotError::SnapshotCorrupt(
                    "missing version field".to_string(),
                ))
            }
        };
        if version != FLEET_CHECKPOINT_VERSION {
            return Err(SpotError::UnsupportedSnapshotVersion(version));
        }
        Self::from_value(&value).map_err(|e| SpotError::SnapshotCorrupt(e.0))
    }
}

impl Serialize for FleetCheckpoint {
    fn to_value(&self) -> Value {
        let tenants = self
            .tenants
            .iter()
            .map(|(id, cp)| {
                Value::Object(vec![
                    ("id".to_string(), Value::Str(id.to_string())),
                    ("checkpoint".to_string(), cp.to_value()),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "version".to_string(),
                Value::U64(FLEET_CHECKPOINT_VERSION as u64),
            ),
            ("tenants".to_string(), Value::Array(tenants)),
        ])
    }
}

impl Deserialize for FleetCheckpoint {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let version = u32::from_value(v.get_field("version").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("version"))?;
        if version != FLEET_CHECKPOINT_VERSION {
            return Err(DeError::custom(format!(
                "expected fleet checkpoint version {FLEET_CHECKPOINT_VERSION}, found {version}"
            )));
        }
        let Some(Value::Array(entries)) = v.get_field("tenants") else {
            return Err(DeError::custom("missing or non-array field `tenants`"));
        };
        let mut tenants: Vec<(TenantId, SpotCheckpoint)> = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let id = match entry.get_field("id") {
                Some(Value::Str(name)) => TenantId::new(name)
                    .map_err(|e| DeError::custom(format!("tenant {i}: invalid id: {e}")))?,
                _ => return Err(DeError::custom(format!("tenant {i}: missing string id"))),
            };
            if tenants.iter().any(|(t, _)| *t == id) {
                return Err(DeError::custom(format!("duplicate tenant id {id:?}")));
            }
            let cp =
                SpotCheckpoint::from_value(entry.get_field("checkpoint").unwrap_or(&Value::Null))
                    .map_err(|e| e.in_field("checkpoint"))?;
            tenants.push((id, cp));
        }
        Ok(FleetCheckpoint::new(tenants))
    }
}
