//! Fleet-level durable state: a versioned container of per-tenant v2
//! checkpoints.
//!
//! A [`FleetCheckpoint`] composes, per tenant, exactly the
//! [`SpotCheckpoint`] a standalone detector captures — the same
//! column-oriented `DurableState` trees, the same bit-exactness contract
//! (see `docs/persistence.md`). The fleet layer adds only an envelope:
//! its own format version, the tenant ids, and (since envelope v2) each
//! tenant's WAL replay watermark, all sorted so capture → restore →
//! capture is a byte-level fixed point.
//!
//! Versioning follows the detector loader's policy: unknown envelope
//! versions yield [`SpotError::UnsupportedSnapshotVersion`], structurally
//! broken payloads yield [`SpotError::SnapshotCorrupt`] — never a panic.
//! The per-tenant payloads version independently (they carry the v2
//! `SpotCheckpoint` version field), so a future v3 detector format slots
//! in without changing the envelope.
//!
//! The envelope additionally seals its payload with an FNV-1a 64 checksum
//! (`checksum` field, over the canonical rendering of the `tenants`
//! array): a torn or bit-flipped file that still parses as JSON is
//! rejected as [`SpotError::SnapshotCorrupt`] instead of silently
//! restoring a subtly wrong engine. Envelopes without the field (written
//! before it existed) are still accepted. [`CheckpointStore`] layers
//! crash-safe *files* on top: atomic tmp + fsync + rename writes, a
//! bounded window of retained generations, and recovery that scans for
//! the newest valid file.

use serde::{DeError, Deserialize, Serialize, Value};
use spot::SpotCheckpoint;
use spot_types::persist::binary;
use spot_types::{Result, SpotError, TenantId};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Fleet checkpoint envelope version. Version 2 added the per-tenant WAL
/// replay watermarks (`wal` + `wal_checksum` fields); version-1 envelopes
/// are still accepted and read back with no positions.
pub const FLEET_CHECKPOINT_VERSION: u32 = 2;

/// Fleet envelope version stamped on the binary column carrier and on
/// delta envelopes. The tree shape matches v2 minus the JSON payload
/// checksums — a binary container seals the whole file with its own
/// trailer, so re-rendering the payload to JSON just to hash it would be
/// pure waste.
pub const FLEET_CHECKPOINT_BINARY_VERSION: u32 = 3;

/// The oldest envelope version the loader still accepts.
pub const FLEET_CHECKPOINT_MIN_VERSION: u32 = 1;

/// Longest base→delta chain [`CheckpointStore::load`] will resolve. With
/// rebases every few deltas real chains stay single digits; the cap only
/// exists so a corrupt `parent` pointer cannot recurse unboundedly.
pub const MAX_DELTA_CHAIN: usize = 64;

/// On-disk serialization carrier for checkpoint files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Carrier {
    /// Human-inspectable JSON text (the v1/v2 format). Roughly 10× the
    /// bytes and render time of the binary carrier; kept for debugging
    /// and for readers that predate the binary format.
    Json,
    /// The `SPOTBIN1` binary column container (envelope version 3):
    /// packed `u64` columns, varint/delta compression, one word-wise
    /// checksum trailer sealing the file.
    #[default]
    Binary,
}

/// Durable state of a whole fleet: one v2 [`SpotCheckpoint`] per tenant,
/// sorted by tenant id, plus (when the ingestion WAL is enabled) each
/// tenant's WAL replay watermark — the log sequence number recovery
/// resumes replay from, equal to the tenant's `processed` counter minus
/// the log's `base_processed`.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    tenants: Vec<(TenantId, SpotCheckpoint)>,
    wal: Vec<(TenantId, u64)>,
}

impl FleetCheckpoint {
    /// Wraps per-tenant checkpoints (sorted by id; later duplicates of an
    /// id are dropped — the fleet registry cannot produce any), with no
    /// WAL positions.
    pub fn new(tenants: Vec<(TenantId, SpotCheckpoint)>) -> Self {
        Self::with_wal(tenants, Vec::new())
    }

    /// Wraps per-tenant checkpoints together with per-tenant WAL replay
    /// watermarks (both sorted by id, duplicates dropped).
    pub fn with_wal(
        mut tenants: Vec<(TenantId, SpotCheckpoint)>,
        mut wal: Vec<(TenantId, u64)>,
    ) -> Self {
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        tenants.dedup_by(|a, b| a.0 == b.0);
        wal.sort_by(|a, b| a.0.cmp(&b.0));
        wal.dedup_by(|a, b| a.0 == b.0);
        FleetCheckpoint { tenants, wal }
    }

    /// Per-tenant WAL replay watermarks, sorted by id (empty when the
    /// fleet had no WAL at capture time).
    pub fn wal_positions(&self) -> &[(TenantId, u64)] {
        &self.wal
    }

    /// One tenant's WAL replay watermark, if recorded.
    pub fn wal_position(&self, id: &TenantId) -> Option<u64> {
        self.wal
            .binary_search_by(|(t, _)| t.cmp(id))
            .ok()
            .map(|i| self.wal[i].1)
    }

    /// Tenant ids held by this checkpoint, sorted.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|(id, _)| id.clone()).collect()
    }

    /// The checkpoint of one tenant, if present.
    pub fn get(&self, id: &TenantId) -> Option<&SpotCheckpoint> {
        self.tenants
            .binary_search_by(|(t, _)| t.cmp(id))
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// Number of tenants captured.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant was captured.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Renders the checkpoint to JSON text (the expensive part of
    /// persistence; do it off any ingestion path).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet checkpoint serialization is infallible")
    }

    /// Parses JSON text into a fleet checkpoint with typed errors:
    /// unknown envelope versions yield
    /// [`SpotError::UnsupportedSnapshotVersion`], anything structurally
    /// broken (including duplicate or invalid tenant ids) yields
    /// [`SpotError::SnapshotCorrupt`].
    pub fn from_json(text: &str) -> Result<Self> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        envelope_version(&value)?;
        Self::from_value(&value).map_err(|e| SpotError::SnapshotCorrupt(e.0))
    }

    /// The checkpoint's value tree with the v3 (binary-carrier) version
    /// stamp — same shape as v2 minus the JSON payload checksums, which
    /// the binary container's own trailer supersedes.
    pub fn to_value_binary(&self) -> Value {
        Value::Object(vec![
            (
                "version".to_string(),
                Value::U64(FLEET_CHECKPOINT_BINARY_VERSION as u64),
            ),
            ("tenants".to_string(), self.tenants_value()),
            ("wal".to_string(), self.wal_value()),
        ])
    }

    /// Renders the checkpoint into a sealed `SPOTBIN1` binary container.
    pub fn to_bytes(&self) -> Vec<u8> {
        binary::encode_container(&self.to_value_binary())
    }

    /// Parses a sealed binary container (the v3 carrier) back into a
    /// fleet checkpoint with the same typed-error policy as
    /// [`FleetCheckpoint::from_json`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let value =
            binary::read_container(bytes).map_err(|e| SpotError::SnapshotCorrupt(e.to_string()))?;
        envelope_version(&value)?;
        Self::from_value(&value).map_err(|e| SpotError::SnapshotCorrupt(e.0))
    }

    fn tenants_value(&self) -> Value {
        Value::Array(
            self.tenants
                .iter()
                .map(|(id, cp)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("checkpoint".to_string(), cp.to_value()),
                    ])
                })
                .collect(),
        )
    }

    fn wal_value(&self) -> Value {
        Value::Array(
            self.wal
                .iter()
                .map(|(id, seq)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("seq".to_string(), Value::U64(*seq)),
                    ])
                })
                .collect(),
        )
    }
}

/// Extracts and range-checks the envelope `version` field with the typed
/// errors every loader shares.
fn envelope_version(value: &Value) -> Result<u32> {
    let version = match value.get_field("version") {
        Some(&Value::U64(n)) => u32::try_from(n).unwrap_or(u32::MAX),
        Some(other) => {
            return Err(SpotError::SnapshotCorrupt(format!(
                "version field is not an integer: {other:?}"
            )))
        }
        None => {
            return Err(SpotError::SnapshotCorrupt(
                "missing version field".to_string(),
            ))
        }
    };
    if !(FLEET_CHECKPOINT_MIN_VERSION..=FLEET_CHECKPOINT_BINARY_VERSION).contains(&version) {
        return Err(SpotError::UnsupportedSnapshotVersion(version));
    }
    Ok(version)
}

/// FNV-1a 64 of the canonical (compact-JSON) rendering of a payload
/// subtree — the quantity the envelope's `checksum` (tenants array) and
/// `wal_checksum` (wal array) fields seal. Both sides of the trip hash a
/// *rendering of a `Value`*, and capture → restore → capture being a
/// byte-level fixed point guarantees a re-parsed tree renders
/// identically, so a clean round trip always verifies.
fn payload_checksum(payload: &Value) -> u64 {
    let mut sink = FnvWriter::new();
    serde_json::to_writer(&mut sink, payload)
        .expect("fleet checkpoint payload serialization is infallible");
    sink.finish()
}

/// An `io::Write` that folds every byte into a running FNV-1a 64 hash —
/// the streaming equivalent of `fnv1a64(rendered_text.as_bytes())`,
/// without ever materializing the multi-megabyte rendering.
struct FnvWriter {
    hash: u64,
}

impl FnvWriter {
    fn new() -> Self {
        FnvWriter {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.hash = (self.hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Serialize for FleetCheckpoint {
    fn to_value(&self) -> Value {
        let tenants = self.tenants_value();
        let wal = self.wal_value();
        let checksum = payload_checksum(&tenants);
        let wal_checksum = payload_checksum(&wal);
        Value::Object(vec![
            (
                "version".to_string(),
                Value::U64(FLEET_CHECKPOINT_VERSION as u64),
            ),
            ("checksum".to_string(), Value::U64(checksum)),
            ("wal_checksum".to_string(), Value::U64(wal_checksum)),
            ("tenants".to_string(), tenants),
            ("wal".to_string(), wal),
        ])
    }
}

impl Deserialize for FleetCheckpoint {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let version = u32::from_value(v.get_field("version").unwrap_or(&Value::Null))
            .map_err(|e| e.in_field("version"))?;
        if !(FLEET_CHECKPOINT_MIN_VERSION..=FLEET_CHECKPOINT_BINARY_VERSION).contains(&version) {
            return Err(DeError::custom(format!(
                "expected fleet checkpoint version {FLEET_CHECKPOINT_MIN_VERSION}..={FLEET_CHECKPOINT_BINARY_VERSION}, found {version}"
            )));
        }
        let tenants_value = v.get_field("tenants");
        let Some(tenants_field @ Value::Array(entries)) = tenants_value else {
            return Err(DeError::custom("missing or non-array field `tenants`"));
        };
        // Verify the checksum seal when present (older envelopes lack it).
        match v.get_field("checksum") {
            Some(&Value::U64(stored)) => {
                let computed = payload_checksum(tenants_field);
                if stored != computed {
                    return Err(DeError::custom(format!(
                        "checksum mismatch: envelope declares {stored:#018x}, \
                         payload hashes to {computed:#018x}"
                    )));
                }
            }
            Some(other) => {
                return Err(DeError::custom(format!(
                    "checksum field is not an integer: {other:?}"
                )))
            }
            None => {}
        }
        let mut tenants: Vec<(TenantId, SpotCheckpoint)> = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let id = match entry.get_field("id") {
                Some(Value::Str(name)) => TenantId::new(name)
                    .map_err(|e| DeError::custom(format!("tenant {i}: invalid id: {e}")))?,
                _ => return Err(DeError::custom(format!("tenant {i}: missing string id"))),
            };
            if tenants.iter().any(|(t, _)| *t == id) {
                return Err(DeError::custom(format!("duplicate tenant id {id:?}")));
            }
            let cp =
                SpotCheckpoint::from_value(entry.get_field("checkpoint").unwrap_or(&Value::Null))
                    .map_err(|e| e.in_field("checkpoint"))?;
            tenants.push((id, cp));
        }
        // WAL watermarks arrived with version 2; a v1 envelope reads back
        // with none. The same read policy as the tenants seal applies:
        // a present `wal` must be an array and a present `wal_checksum`
        // must verify, but both are optional on read (always written on
        // save) so hand-stripped/legacy envelopes keep loading.
        let mut wal: Vec<(TenantId, u64)> = Vec::new();
        if let Some(wal_field) = v.get_field("wal") {
            let Value::Array(positions) = wal_field else {
                return Err(DeError::custom("field `wal` is not an array"));
            };
            match v.get_field("wal_checksum") {
                Some(&Value::U64(stored)) => {
                    let computed = payload_checksum(wal_field);
                    if stored != computed {
                        return Err(DeError::custom(format!(
                            "wal_checksum mismatch: envelope declares {stored:#018x}, \
                             payload hashes to {computed:#018x}"
                        )));
                    }
                }
                Some(other) => {
                    return Err(DeError::custom(format!(
                        "wal_checksum field is not an integer: {other:?}"
                    )))
                }
                None => {}
            }
            for (i, entry) in positions.iter().enumerate() {
                let id = match entry.get_field("id") {
                    Some(Value::Str(name)) => TenantId::new(name).map_err(|e| {
                        DeError::custom(format!("wal position {i}: invalid id: {e}"))
                    })?,
                    _ => {
                        return Err(DeError::custom(format!(
                            "wal position {i}: missing string id"
                        )))
                    }
                };
                let seq = match entry.get_field("seq") {
                    Some(&Value::U64(seq)) => seq,
                    _ => {
                        return Err(DeError::custom(format!(
                            "wal position {i}: missing integer seq"
                        )))
                    }
                };
                if wal.iter().any(|(t, _)| *t == id) {
                    return Err(DeError::custom(format!("duplicate wal position {id:?}")));
                }
                wal.push((id, seq));
            }
        }
        Ok(FleetCheckpoint::with_wal(tenants, wal))
    }
}

// ---- delta envelopes ----------------------------------------------------

/// One tenant's contribution to a [`FleetDelta`].
///
/// `Full` dwarfs the other variants inline, but entries only live in
/// short per-capture vectors where `Unchanged` dominates; boxing the
/// checkpoint would cost an allocation on exactly the path that already
/// pays a full capture.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum TenantEntry {
    /// Nothing moved since the parent generation — the parent's
    /// checkpoint carries forward as-is.
    Unchanged,
    /// Only runtime state moved: the tree produced by
    /// `Spot::delta_capture_with`, applied onto the parent's checkpoint
    /// with `SpotCheckpoint::apply_state_delta`.
    Delta(Value),
    /// Structure moved (or the tenant is new): a complete checkpoint.
    Full(SpotCheckpoint),
}

/// A delta checkpoint: the difference between the fleet now and the
/// immediately previous generation (`parent`). The tenant list is
/// complete — every live tenant appears exactly once, as `Unchanged`,
/// `Delta`, or `Full` — and so is the WAL watermark table, so resolving a
/// chain needs no merging of WAL state across generations. `removed`
/// records tenants the parent held that are gone, for audit; resolution
/// derives the tenant set from the entries alone.
#[derive(Debug, Clone)]
pub struct FleetDelta {
    parent: u64,
    entries: Vec<(TenantId, TenantEntry)>,
    removed: Vec<TenantId>,
    wal: Vec<(TenantId, u64)>,
}

impl FleetDelta {
    /// Wraps per-tenant delta entries against generation `parent` (all
    /// lists sorted by id, later duplicates dropped).
    pub fn new(
        parent: u64,
        mut entries: Vec<(TenantId, TenantEntry)>,
        mut removed: Vec<TenantId>,
        mut wal: Vec<(TenantId, u64)>,
    ) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        removed.sort();
        removed.dedup();
        wal.sort_by(|a, b| a.0.cmp(&b.0));
        wal.dedup_by(|a, b| a.0 == b.0);
        FleetDelta {
            parent,
            entries,
            removed,
            wal,
        }
    }

    /// The generation this delta extends.
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// How many tenants are carried as `Unchanged` / `Delta` / `Full`.
    pub fn shape(&self) -> (usize, usize, usize) {
        let mut shape = (0, 0, 0);
        for (_, e) in &self.entries {
            match e {
                TenantEntry::Unchanged => shape.0 += 1,
                TenantEntry::Delta(_) => shape.1 += 1,
                TenantEntry::Full(_) => shape.2 += 1,
            }
        }
        shape
    }

    /// The envelope tree. `sealed` adds the JSON payload checksums (used
    /// on the JSON carrier; the binary container seals itself).
    fn to_value(&self, sealed: bool) -> Value {
        let tenants = Value::Array(
            self.entries
                .iter()
                .map(|(id, entry)| {
                    let mut fields = vec![("id".to_string(), Value::Str(id.to_string()))];
                    match entry {
                        TenantEntry::Unchanged => {}
                        TenantEntry::Delta(d) => fields.push(("delta".to_string(), d.clone())),
                        TenantEntry::Full(cp) => {
                            fields.push(("checkpoint".to_string(), cp.to_value()))
                        }
                    }
                    Value::Object(fields)
                })
                .collect(),
        );
        let removed = Value::Array(
            self.removed
                .iter()
                .map(|id| Value::Str(id.to_string()))
                .collect(),
        );
        let wal = Value::Array(
            self.wal
                .iter()
                .map(|(id, seq)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("seq".to_string(), Value::U64(*seq)),
                    ])
                })
                .collect(),
        );
        let mut fields = vec![
            (
                "version".to_string(),
                Value::U64(FLEET_CHECKPOINT_BINARY_VERSION as u64),
            ),
            ("delta".to_string(), Value::Bool(true)),
            ("parent".to_string(), Value::U64(self.parent)),
        ];
        if sealed {
            fields.push((
                "checksum".to_string(),
                Value::U64(payload_checksum(&tenants)),
            ));
            fields.push((
                "wal_checksum".to_string(),
                Value::U64(payload_checksum(&wal)),
            ));
        }
        fields.push(("tenants".to_string(), tenants));
        fields.push(("removed".to_string(), removed));
        fields.push(("wal".to_string(), wal));
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self> {
        let corrupt = |msg: String| SpotError::SnapshotCorrupt(msg);
        let parent = match v.get_field("parent") {
            Some(&Value::U64(p)) => p,
            _ => return Err(corrupt("delta envelope: missing integer parent".into())),
        };
        let Some(tenants_field @ Value::Array(entries_v)) = v.get_field("tenants") else {
            return Err(corrupt("delta envelope: missing tenants array".into()));
        };
        if let Some(&Value::U64(stored)) = v.get_field("checksum") {
            let computed = payload_checksum(tenants_field);
            if stored != computed {
                return Err(corrupt(format!(
                    "delta checksum mismatch: envelope declares {stored:#018x}, \
                     payload hashes to {computed:#018x}"
                )));
            }
        }
        let mut entries: Vec<(TenantId, TenantEntry)> = Vec::with_capacity(entries_v.len());
        for (i, entry) in entries_v.iter().enumerate() {
            let id = match entry.get_field("id") {
                Some(Value::Str(name)) => TenantId::new(name)
                    .map_err(|e| corrupt(format!("delta tenant {i}: invalid id: {e}")))?,
                _ => return Err(corrupt(format!("delta tenant {i}: missing string id"))),
            };
            if entries.iter().any(|(t, _)| *t == id) {
                return Err(corrupt(format!("duplicate delta tenant id {id:?}")));
            }
            let te = if let Some(d) = entry.get_field("delta") {
                TenantEntry::Delta(d.clone())
            } else if let Some(cp) = entry.get_field("checkpoint") {
                TenantEntry::Full(
                    SpotCheckpoint::from_value(cp)
                        .map_err(|e| corrupt(format!("delta tenant {id:?}: {}", e.0)))?,
                )
            } else {
                TenantEntry::Unchanged
            };
            entries.push((id, te));
        }
        let mut removed = Vec::new();
        if let Some(Value::Array(ids)) = v.get_field("removed") {
            for (i, id) in ids.iter().enumerate() {
                let Value::Str(name) = id else {
                    return Err(corrupt(format!("delta removed {i}: not a string")));
                };
                removed.push(
                    TenantId::new(name)
                        .map_err(|e| corrupt(format!("delta removed {i}: invalid id: {e}")))?,
                );
            }
        }
        let Some(wal_field @ Value::Array(positions)) = v.get_field("wal") else {
            return Err(corrupt("delta envelope: missing wal array".into()));
        };
        if let Some(&Value::U64(stored)) = v.get_field("wal_checksum") {
            let computed = payload_checksum(wal_field);
            if stored != computed {
                return Err(corrupt(format!(
                    "delta wal_checksum mismatch: envelope declares {stored:#018x}, \
                     payload hashes to {computed:#018x}"
                )));
            }
        }
        let mut wal: Vec<(TenantId, u64)> = Vec::new();
        for (i, entry) in positions.iter().enumerate() {
            let id = match entry.get_field("id") {
                Some(Value::Str(name)) => TenantId::new(name)
                    .map_err(|e| corrupt(format!("delta wal position {i}: invalid id: {e}")))?,
                _ => {
                    return Err(corrupt(format!(
                        "delta wal position {i}: missing string id"
                    )))
                }
            };
            let seq = match entry.get_field("seq") {
                Some(&Value::U64(seq)) => seq,
                _ => {
                    return Err(corrupt(format!(
                        "delta wal position {i}: missing integer seq"
                    )))
                }
            };
            wal.push((id, seq));
        }
        Ok(FleetDelta::new(parent, entries, removed, wal))
    }

    /// Materializes the checkpoint this delta describes on top of its
    /// resolved parent. A tenant carried as `Unchanged` or `Delta` that
    /// the parent does not hold is corruption — the chain was pruned or
    /// damaged out from under the delta.
    pub fn apply(&self, base: &FleetCheckpoint) -> Result<FleetCheckpoint> {
        let mut tenants = Vec::with_capacity(self.entries.len());
        for (id, entry) in &self.entries {
            let cp = match entry {
                TenantEntry::Unchanged => base
                    .get(id)
                    .ok_or_else(|| {
                        SpotError::SnapshotCorrupt(format!(
                            "delta carries tenant {id:?} as unchanged, \
                             but the parent generation does not hold it"
                        ))
                    })?
                    .clone(),
                TenantEntry::Delta(d) => base
                    .get(id)
                    .ok_or_else(|| {
                        SpotError::SnapshotCorrupt(format!(
                            "delta carries a state delta for tenant {id:?}, \
                             but the parent generation does not hold it"
                        ))
                    })?
                    .apply_state_delta(d)?,
                TenantEntry::Full(cp) => cp.clone(),
            };
            tenants.push((id.clone(), cp));
        }
        Ok(FleetCheckpoint::with_wal(tenants, self.wal.clone()))
    }
}

// ---- crash-safe checkpoint files ---------------------------------------

const CKPT_PREFIX: &str = "fleet-";
const CKPT_SUFFIX: &str = ".ckpt";
const DELTA_SUFFIX: &str = ".dck";

/// Result of [`CheckpointStore::load_latest`]: the newest generation that
/// parsed and verified, plus every newer generation that had to be
/// rejected on the way there (and why).
#[derive(Debug)]
pub struct RecoveryScan {
    /// The newest valid retained checkpoint, or `None` when every
    /// retained generation is invalid (or none exist).
    pub recovered: Option<(u64, FleetCheckpoint)>,
    /// Generations rejected during the scan, newest first, with the typed
    /// error each produced (torn writes, bit flips, bad versions — never
    /// a panic).
    pub rejected: Vec<(u64, SpotError)>,
}

/// A directory of crash-safe fleet checkpoint files with bounded
/// retention.
///
/// * **Atomic writes** — [`CheckpointStore::save`] writes
///   `fleet-<generation>.ckpt.tmp`, fsyncs it, then renames it into place
///   (and best-effort fsyncs the directory): a crash at any instant
///   leaves either the complete previous state or the complete new one,
///   never a half-written `.ckpt` file. Stray `.tmp` files from a crash
///   are ignored by every read path and swept (deleted) the next time the
///   store is opened ([`CheckpointStore::swept_tmp`] reports how many).
/// * **Generations** — each save gets the next number; the oldest files
///   beyond the retention window are pruned after a successful rename, so
///   a corrupt newest generation never strands the fleet (recovery falls
///   back to an older one).
/// * **Typed recovery** — [`CheckpointStore::load_latest`] scans newest →
///   oldest, returning the first checkpoint that parses *and* passes the
///   envelope checksum; everything rejected is reported, not panicked on.
/// * **Fault harness** — [`CheckpointStore::corrupt`] and
///   [`CheckpointStore::truncate`] deterministically damage a retained
///   file so tests can drive the recovery path (see `docs/robustness.md`).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    swept: usize,
    carrier: Carrier,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory retaining the
    /// newest `retain` generations (clamped to at least 1), writing new
    /// files on the default [`Carrier::Binary`]. Stray `fleet-*.tmp`
    /// files left by a crash mid-save are deleted here — they are, by
    /// construction, incomplete (a completed save renames its tmp away)
    /// and would otherwise accumulate forever.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        let mut swept = 0;
        let entries = std::fs::read_dir(&dir).map_err(|e| io_err("list", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(CKPT_PREFIX)
                && (name.ends_with(".ckpt.tmp") || name.ends_with(".dck.tmp"))
            {
                std::fs::remove_file(entry.path())
                    .map_err(|e| io_err("remove", &entry.path(), &e))?;
                swept += 1;
            }
        }
        Ok(CheckpointStore {
            dir,
            retain: retain.max(1),
            swept,
            carrier: Carrier::default(),
        })
    }

    /// Stray `.tmp` files this store deleted when it was opened.
    pub fn swept_tmp(&self) -> usize {
        self.swept
    }

    /// The directory holding the checkpoint files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The retention window (newest generations kept).
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// The carrier new saves are written on. Loading auto-detects per
    /// file, so a directory may mix carriers across generations (as it
    /// will after an upgrade).
    pub fn carrier(&self) -> Carrier {
        self.carrier
    }

    /// Selects the carrier for subsequent saves.
    pub fn set_carrier(&mut self, carrier: Carrier) {
        self.carrier = carrier;
    }

    fn path_of(&self, generation: u64, delta: bool) -> PathBuf {
        let suffix = if delta { DELTA_SUFFIX } else { CKPT_SUFFIX };
        self.dir
            .join(format!("{CKPT_PREFIX}{generation:08}{suffix}"))
    }

    /// Locates a retained generation on disk; full checkpoints and delta
    /// extensions share one generation sequence but distinct suffixes.
    fn find(&self, generation: u64) -> Result<(PathBuf, bool)> {
        for delta in [false, true] {
            let path = self.path_of(generation, delta);
            if path.exists() {
                return Ok((path, delta));
            }
        }
        Err(SpotError::Io(format!(
            "generation {generation} not found in {}",
            self.dir.display()
        )))
    }

    /// Retained entries as `(generation, is_delta)`, oldest first.
    fn scan(&self) -> Result<Vec<(u64, bool)>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err("list", &self.dir, &e))?;
        let mut gens = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &self.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(CKPT_PREFIX) else {
                continue;
            };
            let (digits, is_delta) = if let Some(d) = rest.strip_suffix(CKPT_SUFFIX) {
                (d, false)
            } else if let Some(d) = rest.strip_suffix(DELTA_SUFFIX) {
                (d, true)
            } else {
                continue;
            };
            if let Ok(g) = digits.parse::<u64>() {
                gens.push((g, is_delta));
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Retained generation numbers, oldest first (full checkpoints and
    /// delta extensions alike).
    pub fn generations(&self) -> Result<Vec<u64>> {
        Ok(self.scan()?.into_iter().map(|(g, _)| g).collect())
    }

    /// `true` when the retained generation is a delta extension.
    pub fn is_delta(&self, generation: u64) -> Result<bool> {
        self.find(generation).map(|(_, d)| d)
    }

    /// Writes `render` into `fleet-<generation><suffix>` via the atomic
    /// tmp + fsync + rename protocol.
    fn write_atomic(
        &self,
        final_path: &Path,
        render: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
    ) -> Result<()> {
        let mut tmp_name = final_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        tmp_name.push_str(".tmp");
        let tmp_path = final_path.with_file_name(tmp_name);
        {
            let file =
                std::fs::File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
            let mut out = std::io::BufWriter::new(file);
            render(&mut out).map_err(|e| io_err("write", &tmp_path, &e))?;
            let file = out
                .into_inner()
                .map_err(|e| io_err("write", &tmp_path, &e.into_error()))?;
            // The data must be on stable storage *before* the rename makes
            // it reachable, or a crash could publish an empty file.
            file.sync_all().map_err(|e| io_err("sync", &tmp_path, &e))?;
        }
        std::fs::rename(&tmp_path, final_path).map_err(|e| io_err("rename", &tmp_path, &e))?;
        // Best effort: make the rename itself durable. Not all platforms
        // support fsync on a directory handle; recovery tolerates a
        // missing newest generation either way.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn render_envelope(
        &self,
        path: &Path,
        json_tree: impl FnOnce() -> Value,
        binary_tree: impl FnOnce() -> Value,
    ) -> Result<()> {
        match self.carrier {
            Carrier::Json => {
                let tree = json_tree();
                self.write_atomic(path, |out| {
                    serde_json::to_writer(out, &tree)
                        .map_err(|e| std::io::Error::other(e.to_string()))
                })
            }
            Carrier::Binary => {
                let mut payload = Vec::new();
                binary::encode(&binary_tree(), &mut payload);
                self.write_atomic(path, |out| binary::write_container(out, &payload))
            }
        }
    }

    /// Atomically persists a full checkpoint as the next generation on
    /// the store's carrier, prunes generations beyond the retention
    /// window, and returns the new generation number.
    pub fn save(&self, checkpoint: &FleetCheckpoint) -> Result<u64> {
        let generation = self.generations()?.last().copied().unwrap_or(0) + 1;
        let final_path = self.path_of(generation, false);
        self.render_envelope(
            &final_path,
            || checkpoint.to_value(),
            || checkpoint.to_value_binary(),
        )?;
        self.prune_retained()?;
        Ok(generation)
    }

    /// Atomically persists a delta extension as the next generation. The
    /// delta must extend the current latest generation — a delta built
    /// against anything older would silently drop the generations in
    /// between, so it is rejected ([`SpotError::InvalidConfig`]) and the
    /// caller falls back to a full save.
    pub fn save_delta(&self, delta: &FleetDelta) -> Result<u64> {
        let last = self.generations()?.last().copied().unwrap_or(0);
        if last == 0 || delta.parent() != last {
            return Err(SpotError::InvalidConfig(format!(
                "delta extends generation {}, but the latest retained generation is {last}",
                delta.parent()
            )));
        }
        let generation = last + 1;
        let final_path = self.path_of(generation, true);
        self.render_envelope(
            &final_path,
            || delta.to_value(true),
            || delta.to_value(false),
        )?;
        self.prune_retained()?;
        Ok(generation)
    }

    /// Prunes generations beyond the retention window, never cutting a
    /// retained delta loose from its chain: the window extends backwards
    /// over consecutive deltas until it reaches the full checkpoint that
    /// anchors them. Removal is best-effort (a locked file stays; the
    /// next save retries).
    fn prune_retained(&self) -> Result<()> {
        let entries = self.scan()?;
        if entries.len() <= self.retain {
            return Ok(());
        }
        let mut keep_from = entries.len() - self.retain;
        // A delta resolves against the immediately previous generation;
        // keep walking back until the window starts at a full checkpoint.
        while keep_from > 0 && entries[keep_from].1 {
            keep_from -= 1;
        }
        for (g, is_delta) in &entries[..keep_from] {
            let _ = std::fs::remove_file(self.path_of(*g, *is_delta));
        }
        Ok(())
    }

    /// Loads one retained generation, resolving delta chains back to
    /// their full-checkpoint anchor, with the envelope's typed errors
    /// ([`SpotError::SnapshotCorrupt`] / `UnsupportedSnapshotVersion`)
    /// for damaged files and [`SpotError::Io`] for missing ones. The
    /// carrier is auto-detected per file, so mixed directories load.
    pub fn load(&self, generation: u64) -> Result<FleetCheckpoint> {
        self.load_resolving(generation, 0)
    }

    fn load_resolving(&self, generation: u64, depth: usize) -> Result<FleetCheckpoint> {
        if depth > MAX_DELTA_CHAIN {
            return Err(SpotError::SnapshotCorrupt(format!(
                "delta chain at generation {generation} exceeds {MAX_DELTA_CHAIN} links"
            )));
        }
        let (path, is_delta) = self.find(generation)?;
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        let tree = if binary::is_container(&bytes) {
            binary::read_container(&bytes)
                .map_err(|e| SpotError::SnapshotCorrupt(format!("{}: {e}", path.display())))?
        } else {
            let text = String::from_utf8(bytes).map_err(|e| {
                SpotError::SnapshotCorrupt(format!("{}: not valid UTF-8: {e}", path.display()))
            })?;
            serde_json::from_str(&text)
                .map_err(|e| SpotError::SnapshotCorrupt(format!("{}: {e}", path.display())))?
        };
        let declares_delta = matches!(tree.get_field("delta"), Some(&Value::Bool(true)));
        if declares_delta != is_delta {
            return Err(SpotError::SnapshotCorrupt(format!(
                "{}: envelope kind does not match its file extension",
                path.display()
            )));
        }
        if is_delta {
            envelope_version(&tree)?;
            let delta = FleetDelta::from_value(&tree)?;
            if delta.parent() + 1 != generation {
                return Err(SpotError::SnapshotCorrupt(format!(
                    "{}: delta declares parent {}, expected {}",
                    path.display(),
                    delta.parent(),
                    generation - 1
                )));
            }
            let base = self.load_resolving(delta.parent(), depth + 1)?;
            delta.apply(&base)
        } else {
            envelope_version(&tree)?;
            FleetCheckpoint::from_value(&tree).map_err(|e| SpotError::SnapshotCorrupt(e.0))
        }
    }

    /// Scans retained generations newest → oldest and returns the first
    /// that parses and verifies, together with every rejected newer
    /// generation. Never panics on damaged files.
    pub fn load_latest(&self) -> Result<RecoveryScan> {
        let mut rejected = Vec::new();
        for g in self.generations()?.into_iter().rev() {
            match self.load(g) {
                Ok(cp) => {
                    return Ok(RecoveryScan {
                        recovered: Some((g, cp)),
                        rejected,
                    })
                }
                Err(e) => rejected.push((g, e)),
            }
        }
        Ok(RecoveryScan {
            recovered: None,
            rejected,
        })
    }

    /// Fault harness: XORs `mask` into the byte at `offset` (taken modulo
    /// the file length) of a retained generation. A zero mask leaves the
    /// file intact.
    pub fn corrupt(&self, generation: u64, offset: usize, mask: u8) -> Result<()> {
        let (path, _) = self.find(generation)?;
        let mut bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        if bytes.is_empty() {
            return Err(SpotError::Io(format!("{}: empty file", path.display())));
        }
        let at = offset % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&path, &bytes).map_err(|e| io_err("write", &path, &e))?;
        Ok(())
    }

    /// Fault harness: truncates a retained generation to its first `len`
    /// bytes (a simulated torn write from a crash mid-`write` without the
    /// atomic rename protocol).
    pub fn truncate(&self, generation: u64, len: usize) -> Result<()> {
        let (path, _) = self.find(generation)?;
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        let keep = len.min(bytes.len());
        std::fs::write(&path, &bytes[..keep]).map_err(|e| io_err("write", &path, &e))?;
        Ok(())
    }
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> SpotError {
    SpotError::Io(format!("{action} {}: {e}", path.display()))
}
