//! Columnar append-only verdict archive.
//!
//! Checkpoints preserve *engine state*; the verdict stream itself — what
//! was flagged, when, in which subspaces — is gone unless something
//! records it. [`VerdictArchive`] is that something: an append-only
//! directory of segment files in the ingestion WAL's codec style
//! (checksummed length-prefixed frames, torn-tail-tolerant tail segment)
//! holding verdicts in a packed columnar layout, and a reader
//! ([`VerdictArchive::replay`]) that reproduces the archived stream
//! bit-exactly ([`Verdict::bitwise_eq`] over every record).
//!
//! # File format
//!
//! Each segment `arc-<n:08>.seg` opens with the 8-byte magic `SPOTARC1`
//! and a `u32` little-endian format version (currently 1), followed by
//! frames:
//!
//! ```text
//! | len: u32 LE | payload: len bytes | fnv1a64(payload): u64 LE |
//! ```
//!
//! A frame's payload is one batch of verdicts in column order, every lane
//! a `u64` little-endian word (floats by their IEEE-754 bit patterns, so
//! the round trip is bit-exact by construction):
//!
//! ```text
//! n | total_findings
//! ticks[n] | flags[n] | score_bits[n] | finding_counts[n]
//! masks[total] | rd_bits[total] | irsd_bits[total]
//! ```
//!
//! `flags` packs `outlier` in bit 0 and `drift` in bit 1. The findings of
//! record `i` are the next `finding_counts[i]` entries of the flattened
//! finding columns, preserving each verdict's sparsest-first order.
//!
//! # Failure policy (the WAL's, verbatim)
//!
//! A damaged *final* segment is a crash artifact: replay keeps every
//! frame up to the damage, reports `torn_tail = true`, and the next
//! append seals a fresh segment. Damage in a *sealed* segment (or a bad
//! magic/version header anywhere) is real corruption and fails replay
//! with [`SpotError::SnapshotCorrupt`] — never a panic. The archive is
//! deliberately **not** consulted by fleet recovery: recovery replays the
//! ingestion WAL through live detectors, which regenerates these same
//! verdicts; the archive exists for consumers *outside* the engine
//! (audit, backtesting, alert forensics).

use spot::subspace::Subspace;
use spot::{SubspaceFinding, Verdict};
use spot_types::{fnv1a64, Result, SpotError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every archive segment.
pub const ARCHIVE_MAGIC: &[u8; 8] = b"SPOTARC1";

/// Archive segment format version.
pub const ARCHIVE_VERSION: u32 = 1;

const SEG_PREFIX: &str = "arc-";
const SEG_SUFFIX: &str = ".seg";
const HEADER_LEN: u64 = 12; // magic + version

/// Default segment rotation threshold (bytes). Appends that push the
/// current segment past this start a new one.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// An append-only columnar verdict log over a directory of segment
/// files. One writer at a time; readers ([`VerdictArchive::replay`])
/// operate on the directory independently.
#[derive(Debug)]
pub struct VerdictArchive {
    dir: PathBuf,
    segment_bytes: u64,
    /// Current tail segment number and its size in bytes.
    current: u64,
    current_len: u64,
    file: File,
}

/// Everything [`VerdictArchive::replay`] reconstructed.
#[derive(Debug)]
pub struct ArchiveReplay {
    /// The archived verdict stream, in append order.
    pub verdicts: Vec<Verdict>,
    /// Segment files read.
    pub segments: usize,
    /// Complete frames decoded.
    pub frames: usize,
    /// `true` when the final segment ended in a torn (incomplete or
    /// checksum-failing) tail that was dropped — a crash artifact, not
    /// corruption.
    pub torn_tail: bool,
}

impl VerdictArchive {
    /// Opens (creating if needed) an archive directory for appending with
    /// the default rotation threshold. Appends continue the highest
    /// existing segment, or start `arc-00000001.seg`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`VerdictArchive::open`] with an explicit rotation threshold
    /// (clamped to at least the segment header).
    pub fn open_with(dir: impl Into<PathBuf>, segment_bytes: u64) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        let current = segment_numbers(&dir)?.last().copied().unwrap_or(0).max(1);
        let path = segment_path(&dir, current);
        let exists = path.exists();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        let mut current_len = file
            .metadata()
            .map_err(|e| io_err("stat", &path, &e))?
            .len();
        if !exists || current_len == 0 {
            write_header(&mut file, &path)?;
            current_len = HEADER_LEN;
        }
        Ok(VerdictArchive {
            dir,
            segment_bytes: segment_bytes.max(HEADER_LEN + 1),
            current,
            current_len,
            file,
        })
    }

    /// The archive directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The tail segment number appends currently land in.
    pub fn current_segment(&self) -> u64 {
        self.current
    }

    /// Appends one batch of verdicts as a single frame, rotating to a new
    /// segment first when the current one has reached the threshold. An
    /// empty batch is a no-op. Data is buffered by the OS until
    /// [`VerdictArchive::sync`].
    pub fn append(&mut self, verdicts: &[Verdict]) -> Result<()> {
        if verdicts.is_empty() {
            return Ok(());
        }
        if self.current_len >= self.segment_bytes {
            self.rotate()?;
        }
        let payload = encode_frame(verdicts);
        let path = segment_path(&self.dir, self.current);
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &path, &e))?;
        self.current_len += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs the tail segment — after this returns, every appended frame
    /// survives a crash.
    pub fn sync(&mut self) -> Result<()> {
        let path = segment_path(&self.dir, self.current);
        self.file.sync_all().map_err(|e| io_err("sync", &path, &e))
    }

    fn rotate(&mut self) -> Result<()> {
        self.sync()?;
        self.current += 1;
        let path = segment_path(&self.dir, self.current);
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, &e))?;
        write_header(&mut file, &path)?;
        self.file = file;
        self.current_len = HEADER_LEN;
        Ok(())
    }

    /// Reads an archive directory back into the verdict stream it
    /// recorded. Requires no open writer; see the module docs for the
    /// torn-tail vs corruption policy.
    pub fn replay(dir: impl AsRef<Path>) -> Result<ArchiveReplay> {
        let dir = dir.as_ref();
        let numbers = segment_numbers(dir)?;
        let mut replay = ArchiveReplay {
            verdicts: Vec::new(),
            segments: 0,
            frames: 0,
            torn_tail: false,
        };
        for (i, n) in numbers.iter().enumerate() {
            let is_final = i + 1 == numbers.len();
            let path = segment_path(dir, *n);
            let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
            replay.segments += 1;
            read_segment(&path, &bytes, is_final, &mut replay)?;
        }
        Ok(replay)
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("{SEG_PREFIX}{n:08}{SEG_SUFFIX}"))
}

fn segment_numbers(dir: &Path) -> Result<Vec<u64>> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("list", dir, &e))?;
    let mut numbers = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name
            .strip_prefix(SEG_PREFIX)
            .and_then(|rest| rest.strip_suffix(SEG_SUFFIX))
        else {
            continue;
        };
        if let Ok(n) = digits.parse::<u64>() {
            numbers.push(n);
        }
    }
    numbers.sort_unstable();
    Ok(numbers)
}

fn write_header(file: &mut File, path: &Path) -> Result<()> {
    file.write_all(ARCHIVE_MAGIC)
        .and_then(|_| file.write_all(&ARCHIVE_VERSION.to_le_bytes()))
        .map_err(|e| io_err("write", path, &e))
}

fn encode_frame(verdicts: &[Verdict]) -> Vec<u8> {
    let total: usize = verdicts.iter().map(|v| v.findings.len()).sum();
    let mut out = Vec::with_capacity(16 + 8 * (4 * verdicts.len() + 3 * total));
    let mut put = |w: u64| out.extend_from_slice(&w.to_le_bytes());
    put(verdicts.len() as u64);
    put(total as u64);
    for v in verdicts {
        put(v.tick);
    }
    for v in verdicts {
        put(u64::from(v.outlier) | u64::from(v.drift) << 1);
    }
    for v in verdicts {
        put(v.score.to_bits());
    }
    for v in verdicts {
        put(v.findings.len() as u64);
    }
    for v in verdicts {
        for f in &v.findings {
            put(f.subspace.mask());
        }
    }
    for v in verdicts {
        for f in &v.findings {
            put(f.rd.to_bits());
        }
    }
    for v in verdicts {
        for f in &v.findings {
            put(f.irsd.to_bits());
        }
    }
    out
}

fn decode_frame(payload: &[u8], out: &mut Vec<Verdict>) -> Result<()> {
    let corrupt = |msg: &str| SpotError::SnapshotCorrupt(format!("archive frame: {msg}"));
    if !payload.len().is_multiple_of(8) || payload.len() < 16 {
        return Err(corrupt("payload is not a whole number of column words"));
    }
    let words: Vec<u64> = payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect();
    let n = words[0] as usize;
    let total = words[1] as usize;
    let expect = 2usize
        .checked_add(n.checked_mul(4).ok_or_else(|| corrupt("count overflow"))?)
        .and_then(|x| x.checked_add(total.checked_mul(3)?))
        .ok_or_else(|| corrupt("count overflow"))?;
    if words.len() != expect {
        return Err(corrupt("column lengths do not match declared counts"));
    }
    let (ticks, rest) = words[2..].split_at(n);
    let (flags, rest) = rest.split_at(n);
    let (scores, rest) = rest.split_at(n);
    let (counts, rest) = rest.split_at(n);
    let (masks, rest) = rest.split_at(total);
    let (rds, irsds) = rest.split_at(total);
    if counts.iter().sum::<u64>() != total as u64 {
        return Err(corrupt("finding counts do not sum to the flattened total"));
    }
    let mut at = 0usize;
    for i in 0..n {
        let k = counts[i] as usize;
        let mut findings = Vec::with_capacity(k);
        for j in at..at + k {
            findings.push(SubspaceFinding {
                subspace: Subspace::from_mask(masks[j])
                    .map_err(|e| corrupt(&format!("finding mask: {e}")))?,
                rd: f64::from_bits(rds[j]),
                irsd: f64::from_bits(irsds[j]),
            });
        }
        at += k;
        if flags[i] > 0b11 {
            return Err(corrupt("unknown flag bits set"));
        }
        out.push(Verdict {
            tick: ticks[i],
            outlier: flags[i] & 1 != 0,
            score: f64::from_bits(scores[i]),
            findings,
            drift: flags[i] & 2 != 0,
        });
    }
    Ok(())
}

fn read_segment(
    path: &Path,
    bytes: &[u8],
    is_final: bool,
    replay: &mut ArchiveReplay,
) -> Result<()> {
    let corrupt = |msg: String| SpotError::SnapshotCorrupt(format!("{}: {msg}", path.display()));
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != ARCHIVE_MAGIC
        || bytes[8..12] != ARCHIVE_VERSION.to_le_bytes()
    {
        // A header can only be torn on the final segment (rotation writes
        // it before any frame is acknowledged).
        if is_final && bytes.len() < HEADER_LEN as usize {
            replay.torn_tail = true;
            return Ok(());
        }
        return Err(corrupt("bad segment header".into()));
    }
    let mut at = HEADER_LEN as usize;
    while at < bytes.len() {
        // Frame = len(4) + payload + checksum(8). Anything that does not
        // verify is a torn tail on the final segment, corruption on a
        // sealed one.
        let whole = (|| {
            let len = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
            let payload = bytes.get(at + 4..at + 4 + len)?;
            let stored =
                u64::from_le_bytes(bytes.get(at + 4 + len..at + 12 + len)?.try_into().ok()?);
            (fnv1a64(payload) == stored).then_some((payload, at + 12 + len))
        })();
        let Some((payload, next)) = whole else {
            if is_final {
                replay.torn_tail = true;
                return Ok(());
            }
            return Err(corrupt(format!("damaged frame at offset {at}")));
        };
        // A frame that checksums but does not decode was *written* wrong:
        // that is corruption everywhere, tail included.
        decode_frame(payload, &mut replay.verdicts)
            .map_err(|e| corrupt(format!("offset {at}: {e}")))?;
        replay.frames += 1;
        at = next;
    }
    Ok(())
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> SpotError {
    SpotError::Io(format!("{action} {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spot-arc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(tick: u64, findings: usize) -> Verdict {
        Verdict {
            tick,
            outlier: findings > 0,
            score: 1.0 / (1.0 + tick as f64 * 0.125),
            findings: (0..findings)
                .map(|i| SubspaceFinding {
                    subspace: Subspace::from_mask(1 << (i % 7) | 1 << 9).unwrap(),
                    rd: 0.25 + i as f64 * 0.5,
                    irsd: f64::from_bits(0x3FF0_0000_0000_0001 + i as u64),
                })
                .collect(),
            drift: tick.is_multiple_of(5),
        }
    }

    fn assert_stream_eq(want: &[Verdict], got: &[Verdict]) {
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(got) {
            assert!(w.bitwise_eq(g), "verdict at tick {} diverged", w.tick);
        }
    }

    #[test]
    fn replay_reproduces_the_appended_stream_bit_exactly() {
        let dir = temp_dir("roundtrip");
        let want: Vec<Verdict> = (1..=257).map(|t| sample(t, (t % 4) as usize)).collect();
        {
            let mut arc = VerdictArchive::open(&dir).unwrap();
            for chunk in want.chunks(17) {
                arc.append(chunk).unwrap();
            }
            arc.append(&[]).unwrap(); // no-op
            arc.sync().unwrap();
        }
        let replay = VerdictArchive::replay(&dir).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.segments, 1);
        assert_eq!(replay.frames, want.len().div_ceil(17));
        assert_stream_eq(&want, &replay.verdicts);
    }

    #[test]
    fn appends_rotate_segments_and_survive_reopen() {
        let dir = temp_dir("rotate");
        let want: Vec<Verdict> = (1..=64).map(|t| sample(t, 2)).collect();
        {
            // Tiny threshold: every append lands in a fresh segment.
            let mut arc = VerdictArchive::open_with(&dir, 64).unwrap();
            for chunk in want[..32].chunks(8) {
                arc.append(chunk).unwrap();
            }
            arc.sync().unwrap();
        }
        {
            // Reopen continues the tail segment.
            let mut arc = VerdictArchive::open_with(&dir, 64).unwrap();
            for chunk in want[32..].chunks(8) {
                arc.append(chunk).unwrap();
            }
            arc.sync().unwrap();
        }
        let replay = VerdictArchive::replay(&dir).unwrap();
        assert!(replay.segments > 1, "rotation never happened");
        assert!(!replay.torn_tail);
        assert_stream_eq(&want, &replay.verdicts);
    }

    #[test]
    fn torn_tail_is_tolerated_sealed_corruption_is_not() {
        let dir = temp_dir("torn");
        let want: Vec<Verdict> = (1..=40).map(|t| sample(t, 1)).collect();
        {
            let mut arc = VerdictArchive::open_with(&dir, 128).unwrap();
            for chunk in want.chunks(10) {
                arc.append(chunk).unwrap();
            }
            arc.sync().unwrap();
        }
        let segments = segment_numbers(&dir).unwrap();
        assert!(segments.len() >= 2);

        // Tear the final segment: every frame before the tear survives.
        let tail = segment_path(&dir, *segments.last().unwrap());
        let bytes = std::fs::read(&tail).unwrap();
        std::fs::write(&tail, &bytes[..bytes.len() - 5]).unwrap();
        let replay = VerdictArchive::replay(&dir).unwrap();
        assert!(replay.torn_tail);
        assert!(replay.verdicts.len() < want.len());
        assert_stream_eq(&want[..replay.verdicts.len()], &replay.verdicts);

        // Flip a payload byte in a sealed segment: typed error, no panic.
        std::fs::write(&tail, &bytes).unwrap();
        let sealed = segment_path(&dir, segments[0]);
        let mut sealed_bytes = std::fs::read(&sealed).unwrap();
        let at = HEADER_LEN as usize + 20;
        sealed_bytes[at] ^= 0x10;
        std::fs::write(&sealed, &sealed_bytes).unwrap();
        assert!(matches!(
            VerdictArchive::replay(&dir).unwrap_err(),
            SpotError::SnapshotCorrupt(_)
        ));
    }
}
