//! Deterministic fault injection for the fleet supervision plane.
//!
//! Robustness code is only trustworthy if its failure paths are exercised,
//! and failure paths are only testable if faults fire at *reproducible*
//! points. A [`FaultPlan`] scripts faults against deterministic per-tenant
//! ordinals — "panic while processing tenant A's 37th detection-stage
//! point", "report tenant B's queue as full for ingest attempts 10..20",
//! "fail tenant A's next 2 recovery attempts", "crash the WAL writer
//! mid-`write` of record 12, keeping 5 bytes" — in the same spirit as the
//! repo's `CounterRng`: no wall clock, no thread identity, no randomness
//! at fire time. Armed via `SpotFleet::arm_faults`, the plan produces the
//! same quarantine/shed/recovery trace on the serial executor and on any
//! worker pool.
//!
//! Checkpoint *file* corruption is not injected here: it is a property of
//! bytes at rest, not of execution order, so the store exposes it directly
//! as `CheckpointStore::corrupt`.

use std::collections::HashMap;
use std::sync::Mutex;

use spot_types::TenantId;

/// A scripted panic: fires while processing the tenant's detection-stage
/// point with this 0-based ordinal (counted across all `process` /
/// `process_batch` / drain work since the plan was armed).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PanicFault {
    ordinal: u64,
    fired: bool,
}

/// A scripted queue-full window: ingest attempts with 0-based ordinals in
/// `[from, from + len)` see the tenant's queue as full even if it has room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FullWindow {
    from: u64,
    len: u64,
}

/// How an injected crash damages a WAL append (see `docs/robustness.md`
/// for the file state each leaves behind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalFault {
    /// The record reaches stable storage; the process dies before the
    /// point is enqueued/acknowledged. Recovery must replay it.
    KillAfterAppend,
    /// The crash lands mid-`write`: only the frame's first `keep_bytes`
    /// bytes reach the file — the torn tail recovery truncates away.
    TornWrite {
        /// Frame prefix length that survives (clamped to the frame).
        keep_bytes: usize,
    },
    /// The fsync fails and the process dies with it: everything since the
    /// last successful sync is lost from the file.
    FailFsync,
}

/// A scripted WAL crash: fires when the writer appends the record with
/// this sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WalFaultAt {
    seq: u64,
    fault: WalFault,
    fired: bool,
}

#[derive(Debug, Clone, Default)]
struct TenantFaults {
    panics: Vec<PanicFault>,
    full_windows: Vec<FullWindow>,
    /// Remaining recovery attempts to fail.
    recovery_failures: u32,
    /// Scripted WAL append crashes, keyed by record sequence number.
    wal_faults: Vec<WalFaultAt>,
    /// 0-based segment-rotation ordinals at which the writer crashes
    /// mid-rotation.
    rotation_crashes: Vec<u64>,
    /// Detection-stage points handed to the guarded runner so far.
    points_seen: u64,
    /// Ingest attempts observed so far.
    ingest_attempts: u64,
    /// Segment rotations observed so far.
    rotations_seen: u64,
}

/// A deterministic script of faults to inject into a `SpotFleet`.
///
/// Build with the chainable constructors, then arm with
/// `SpotFleet::arm_faults`. All ordinals are 0-based and count from the
/// moment the plan is armed. An empty plan injects nothing.
///
/// ```
/// use spot_runtime::FaultPlan;
/// use spot_types::TenantId;
///
/// let a = TenantId::new("tenant-a").expect("valid tenant id");
/// let plan = FaultPlan::new()
///     .panic_at(a.clone(), 37)
///     .queue_full(a.clone(), 10, 5)
///     .fail_recovery(a, 2);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    tenants: HashMap<TenantId, TenantFaults>,
    /// Pending crash-between-checkpoint-and-prune injections (fleet-wide:
    /// the prune pass is one operation over every tenant).
    prune_crashes: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic while processing `tenant`'s detection-stage point number
    /// `ordinal` (0-based, counted across batches since arming). The panic
    /// fires *inside* the detector lock, after every earlier point of the
    /// batch has been applied — the realistic torn-state scenario.
    pub fn panic_at(mut self, tenant: TenantId, ordinal: u64) -> Self {
        self.tenants
            .entry(tenant)
            .or_default()
            .panics
            .push(PanicFault {
                ordinal,
                fired: false,
            });
        self
    }

    /// Report `tenant`'s queue as full for `len` consecutive ingest
    /// attempts starting at 0-based attempt ordinal `from`, letting tests
    /// exercise `Shed`/`Sample` policies without actually saturating the
    /// queue. `Block` ignores injected fullness (a blocking send on a
    /// queue with room would return immediately anyway).
    pub fn queue_full(mut self, tenant: TenantId, from: u64, len: u64) -> Self {
        if len > 0 {
            self.tenants
                .entry(tenant)
                .or_default()
                .full_windows
                .push(FullWindow { from, len });
        }
        self
    }

    /// Fail `tenant`'s next `times` recovery attempts (the supervisor sees
    /// the restore fail and applies its backoff/retry budget).
    pub fn fail_recovery(mut self, tenant: TenantId, times: u32) -> Self {
        self.tenants.entry(tenant).or_default().recovery_failures += times;
        self
    }

    /// Crash the WAL writer right after the record with sequence number
    /// `seq` reaches stable storage, before the point is enqueued: the
    /// narrowest kill window — the point is durable but unacknowledged,
    /// and recovery must replay it.
    pub fn wal_kill_after_append(self, tenant: TenantId, seq: u64) -> Self {
        self.push_wal_fault(tenant, seq, WalFault::KillAfterAppend)
    }

    /// Crash the WAL writer mid-`write` of record `seq`: only the frame's
    /// first `keep_bytes` bytes reach the file (a torn tail recovery
    /// truncates away silently).
    pub fn wal_torn_write(self, tenant: TenantId, seq: u64, keep_bytes: usize) -> Self {
        self.push_wal_fault(tenant, seq, WalFault::TornWrite { keep_bytes })
    }

    /// Fail the fsync covering record `seq` and crash: everything
    /// appended since the last successful sync is lost from the file
    /// (the page cache never made it to stable storage).
    pub fn wal_fail_fsync(self, tenant: TenantId, seq: u64) -> Self {
        self.push_wal_fault(tenant, seq, WalFault::FailFsync)
    }

    /// Crash the WAL writer during its `nth` segment rotation (0-based):
    /// the old segment is sealed but the new segment's header is left
    /// half-written — the residue recovery drops whole.
    pub fn wal_crash_on_rotation(mut self, tenant: TenantId, nth: u64) -> Self {
        self.tenants
            .entry(tenant)
            .or_default()
            .rotation_crashes
            .push(nth);
        self
    }

    /// Crash the process between the next durable checkpoint's save and
    /// its WAL segment prune: the checkpoint is on disk, the behind-the-
    /// watermark segments are not yet deleted. Recovery must tolerate a
    /// log that reaches back before the watermark.
    pub fn crash_before_wal_prune(mut self) -> Self {
        self.prune_crashes += 1;
        self
    }

    fn push_wal_fault(mut self, tenant: TenantId, seq: u64, fault: WalFault) -> Self {
        self.tenants
            .entry(tenant)
            .or_default()
            .wal_faults
            .push(WalFaultAt {
                seq,
                fault,
                fired: false,
            });
        self
    }

    /// `true` when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.prune_crashes == 0
            && self.tenants.values().all(|t| {
                t.panics.is_empty()
                    && t.full_windows.is_empty()
                    && t.recovery_failures == 0
                    && t.wal_faults.is_empty()
                    && t.rotation_crashes.is_empty()
            })
    }
}

/// The armed, stateful form of a [`FaultPlan`], owned by the fleet.
///
/// All consultation goes through a single mutex — fault injection is a
/// test-only facility, and the fleet checks an atomic "armed" flag before
/// touching it, so the production hot path stays lock-free.
#[derive(Debug, Default)]
pub(crate) struct FaultInjector {
    tenants: Mutex<HashMap<TenantId, TenantFaults>>,
    prune_crashes: Mutex<u32>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            tenants: Mutex::new(plan.tenants),
            prune_crashes: Mutex::new(plan.prune_crashes),
        }
    }

    /// Consult the plan for a batch of `len` detection-stage points about
    /// to be processed for `tenant`. Advances the tenant's point cursor by
    /// `len` and returns the offset *within this batch* of the first
    /// scheduled panic, if any (consumed: it will not fire again).
    pub(crate) fn take_panic_offset(&self, tenant: &TenantId, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let faults = tenants.get_mut(tenant)?;
        let start = faults.points_seen;
        faults.points_seen += len as u64;
        let end = start + len as u64;
        let mut hit: Option<u64> = None;
        for p in faults.panics.iter_mut() {
            if !p.fired && p.ordinal >= start && p.ordinal < end {
                if hit.is_none_or(|h| p.ordinal < h) {
                    hit = Some(p.ordinal);
                }
                p.fired = true;
            }
        }
        hit.map(|ordinal| (ordinal - start) as usize)
    }

    /// Consult the plan for one ingest attempt on `tenant`; returns `true`
    /// when the attempt falls inside a scripted queue-full window.
    pub(crate) fn ingest_forced_full(&self, tenant: &TenantId) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let Some(faults) = tenants.get_mut(tenant) else {
            return false;
        };
        let attempt = faults.ingest_attempts;
        faults.ingest_attempts += 1;
        faults
            .full_windows
            .iter()
            .any(|w| attempt >= w.from && attempt < w.from + w.len)
    }

    /// Consult the plan for the WAL append of record `seq` on `tenant`;
    /// a scripted crash is consumed (it fires once).
    pub(crate) fn take_wal_fault(&self, tenant: &TenantId, seq: u64) -> Option<WalFault> {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let faults = tenants.get_mut(tenant)?;
        faults
            .wal_faults
            .iter_mut()
            .find(|f| !f.fired && f.seq == seq)
            .map(|f| {
                f.fired = true;
                f.fault
            })
    }

    /// Consult the plan for one segment rotation on `tenant` (advances
    /// the tenant's rotation ordinal); returns `true` when the writer
    /// must crash mid-rotation.
    pub(crate) fn take_rotation_crash(&self, tenant: &TenantId) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let Some(faults) = tenants.get_mut(tenant) else {
            return false;
        };
        let ordinal = faults.rotations_seen;
        faults.rotations_seen += 1;
        faults.rotation_crashes.contains(&ordinal)
    }

    /// Consult the plan for one checkpoint-then-prune pass; returns
    /// `true` (and consumes one scripted crash) when the process dies
    /// between the checkpoint save and the WAL prune.
    pub(crate) fn take_prune_crash(&self) -> bool {
        let mut left = self.prune_crashes.lock().unwrap_or_else(|e| e.into_inner());
        if *left > 0 {
            *left -= 1;
            true
        } else {
            false
        }
    }

    /// Consult the plan for one recovery attempt on `tenant`; returns
    /// `true` (and consumes one scripted failure) when the attempt must
    /// fail.
    pub(crate) fn take_recovery_failure(&self, tenant: &TenantId) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let Some(faults) = tenants.get_mut(tenant) else {
            return false;
        };
        if faults.recovery_failures > 0 {
            faults.recovery_failures -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(s: &str) -> TenantId {
        TenantId::new(s).expect("valid tenant id")
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().panic_at(tid("a"), 0).is_empty());
        assert!(!FaultPlan::new().queue_full(tid("a"), 0, 1).is_empty());
        // A zero-length window schedules nothing.
        assert!(FaultPlan::new().queue_full(tid("a"), 0, 0).is_empty());
        assert!(!FaultPlan::new().fail_recovery(tid("a"), 1).is_empty());
    }

    #[test]
    fn panic_offset_is_batch_relative_and_consumed_once() {
        let inj = FaultInjector::new(FaultPlan::new().panic_at(tid("a"), 7));
        // Points 0..5: no fault.
        assert_eq!(inj.take_panic_offset(&tid("a"), 5), None);
        // Points 5..10: ordinal 7 is offset 2.
        assert_eq!(inj.take_panic_offset(&tid("a"), 5), Some(2));
        // Consumed: later batches see nothing.
        assert_eq!(inj.take_panic_offset(&tid("a"), 100), None);
        // Other tenants are unaffected.
        assert_eq!(inj.take_panic_offset(&tid("b"), 100), None);
    }

    #[test]
    fn earliest_panic_in_batch_wins_and_later_one_still_consumed() {
        let inj = FaultInjector::new(FaultPlan::new().panic_at(tid("a"), 3).panic_at(tid("a"), 1));
        // Both ordinals fall in the first batch; the earliest fires and
        // both are consumed (the batch aborts at offset 1, so ordinal 3
        // never gets a chance to fire on a later replay of the cursor).
        assert_eq!(inj.take_panic_offset(&tid("a"), 10), Some(1));
        assert_eq!(inj.take_panic_offset(&tid("a"), 10), None);
    }

    #[test]
    fn full_windows_cover_attempt_ordinals() {
        let inj = FaultInjector::new(FaultPlan::new().queue_full(tid("a"), 2, 3));
        let hits: Vec<bool> = (0..7).map(|_| inj.ingest_forced_full(&tid("a"))).collect();
        assert_eq!(hits, vec![false, false, true, true, true, false, false]);
        assert!(!inj.ingest_forced_full(&tid("b")));
    }

    #[test]
    fn wal_faults_fire_once_at_their_seq() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .wal_kill_after_append(tid("a"), 3)
                .wal_torn_write(tid("a"), 5, 7)
                .wal_fail_fsync(tid("b"), 0),
        );
        assert_eq!(inj.take_wal_fault(&tid("a"), 0), None);
        assert_eq!(
            inj.take_wal_fault(&tid("a"), 3),
            Some(WalFault::KillAfterAppend)
        );
        // Consumed: a resumed writer appending seq 3 again is clean.
        assert_eq!(inj.take_wal_fault(&tid("a"), 3), None);
        assert_eq!(
            inj.take_wal_fault(&tid("a"), 5),
            Some(WalFault::TornWrite { keep_bytes: 7 })
        );
        assert_eq!(inj.take_wal_fault(&tid("b"), 0), Some(WalFault::FailFsync));
        assert_eq!(inj.take_wal_fault(&tid("c"), 0), None);
    }

    #[test]
    fn rotation_and_prune_crashes_consult_ordinals() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .wal_crash_on_rotation(tid("a"), 1)
                .crash_before_wal_prune(),
        );
        assert!(!inj.take_rotation_crash(&tid("a"))); // rotation 0
        assert!(inj.take_rotation_crash(&tid("a"))); // rotation 1
        assert!(!inj.take_rotation_crash(&tid("a")));
        assert!(!inj.take_rotation_crash(&tid("b")));
        assert!(inj.take_prune_crash());
        assert!(!inj.take_prune_crash());
    }

    #[test]
    fn wal_plans_are_not_empty() {
        assert!(!FaultPlan::new()
            .wal_kill_after_append(tid("a"), 0)
            .is_empty());
        assert!(!FaultPlan::new().wal_torn_write(tid("a"), 0, 1).is_empty());
        assert!(!FaultPlan::new().wal_fail_fsync(tid("a"), 0).is_empty());
        assert!(!FaultPlan::new()
            .wal_crash_on_rotation(tid("a"), 0)
            .is_empty());
        assert!(!FaultPlan::new().crash_before_wal_prune().is_empty());
    }

    #[test]
    fn recovery_failures_are_consumed() {
        let inj = FaultInjector::new(FaultPlan::new().fail_recovery(tid("a"), 2));
        assert!(inj.take_recovery_failure(&tid("a")));
        assert!(inj.take_recovery_failure(&tid("a")));
        assert!(!inj.take_recovery_failure(&tid("a")));
        assert!(!inj.take_recovery_failure(&tid("b")));
    }
}
