//! Deterministic fault injection for the fleet supervision plane.
//!
//! Robustness code is only trustworthy if its failure paths are exercised,
//! and failure paths are only testable if faults fire at *reproducible*
//! points. A [`FaultPlan`] scripts faults against deterministic per-tenant
//! ordinals — "panic while processing tenant A's 37th detection-stage
//! point", "report tenant B's queue as full for ingest attempts 10..20",
//! "fail tenant A's next 2 recovery attempts" — in the same spirit as the
//! repo's `CounterRng`: no wall clock, no thread identity, no randomness
//! at fire time. Armed via `SpotFleet::arm_faults`, the plan produces the
//! same quarantine/shed/recovery trace on the serial executor and on any
//! worker pool.
//!
//! Checkpoint *file* corruption is not injected here: it is a property of
//! bytes at rest, not of execution order, so the store exposes it directly
//! as `CheckpointStore::corrupt`.

use std::collections::HashMap;
use std::sync::Mutex;

use spot_types::TenantId;

/// A scripted panic: fires while processing the tenant's detection-stage
/// point with this 0-based ordinal (counted across all `process` /
/// `process_batch` / drain work since the plan was armed).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PanicFault {
    ordinal: u64,
    fired: bool,
}

/// A scripted queue-full window: ingest attempts with 0-based ordinals in
/// `[from, from + len)` see the tenant's queue as full even if it has room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FullWindow {
    from: u64,
    len: u64,
}

#[derive(Debug, Clone, Default)]
struct TenantFaults {
    panics: Vec<PanicFault>,
    full_windows: Vec<FullWindow>,
    /// Remaining recovery attempts to fail.
    recovery_failures: u32,
    /// Detection-stage points handed to the guarded runner so far.
    points_seen: u64,
    /// Ingest attempts observed so far.
    ingest_attempts: u64,
}

/// A deterministic script of faults to inject into a `SpotFleet`.
///
/// Build with the chainable constructors, then arm with
/// `SpotFleet::arm_faults`. All ordinals are 0-based and count from the
/// moment the plan is armed. An empty plan injects nothing.
///
/// ```
/// use spot_runtime::FaultPlan;
/// use spot_types::TenantId;
///
/// let a = TenantId::new("tenant-a").unwrap();
/// let plan = FaultPlan::new()
///     .panic_at(a.clone(), 37)
///     .queue_full(a.clone(), 10, 5)
///     .fail_recovery(a, 2);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    tenants: HashMap<TenantId, TenantFaults>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic while processing `tenant`'s detection-stage point number
    /// `ordinal` (0-based, counted across batches since arming). The panic
    /// fires *inside* the detector lock, after every earlier point of the
    /// batch has been applied — the realistic torn-state scenario.
    pub fn panic_at(mut self, tenant: TenantId, ordinal: u64) -> Self {
        self.tenants
            .entry(tenant)
            .or_default()
            .panics
            .push(PanicFault {
                ordinal,
                fired: false,
            });
        self
    }

    /// Report `tenant`'s queue as full for `len` consecutive ingest
    /// attempts starting at 0-based attempt ordinal `from`, letting tests
    /// exercise `Shed`/`Sample` policies without actually saturating the
    /// queue. `Block` ignores injected fullness (a blocking send on a
    /// queue with room would return immediately anyway).
    pub fn queue_full(mut self, tenant: TenantId, from: u64, len: u64) -> Self {
        if len > 0 {
            self.tenants
                .entry(tenant)
                .or_default()
                .full_windows
                .push(FullWindow { from, len });
        }
        self
    }

    /// Fail `tenant`'s next `times` recovery attempts (the supervisor sees
    /// the restore fail and applies its backoff/retry budget).
    pub fn fail_recovery(mut self, tenant: TenantId, times: u32) -> Self {
        self.tenants.entry(tenant).or_default().recovery_failures += times;
        self
    }

    /// `true` when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.tenants
            .values()
            .all(|t| t.panics.is_empty() && t.full_windows.is_empty() && t.recovery_failures == 0)
    }
}

/// The armed, stateful form of a [`FaultPlan`], owned by the fleet.
///
/// All consultation goes through a single mutex — fault injection is a
/// test-only facility, and the fleet checks an atomic "armed" flag before
/// touching it, so the production hot path stays lock-free.
#[derive(Debug, Default)]
pub(crate) struct FaultInjector {
    tenants: Mutex<HashMap<TenantId, TenantFaults>>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            tenants: Mutex::new(plan.tenants),
        }
    }

    /// Consult the plan for a batch of `len` detection-stage points about
    /// to be processed for `tenant`. Advances the tenant's point cursor by
    /// `len` and returns the offset *within this batch* of the first
    /// scheduled panic, if any (consumed: it will not fire again).
    pub(crate) fn take_panic_offset(&self, tenant: &TenantId, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let faults = tenants.get_mut(tenant)?;
        let start = faults.points_seen;
        faults.points_seen += len as u64;
        let end = start + len as u64;
        let mut hit: Option<u64> = None;
        for p in faults.panics.iter_mut() {
            if !p.fired && p.ordinal >= start && p.ordinal < end {
                if hit.is_none_or(|h| p.ordinal < h) {
                    hit = Some(p.ordinal);
                }
                p.fired = true;
            }
        }
        hit.map(|ordinal| (ordinal - start) as usize)
    }

    /// Consult the plan for one ingest attempt on `tenant`; returns `true`
    /// when the attempt falls inside a scripted queue-full window.
    pub(crate) fn ingest_forced_full(&self, tenant: &TenantId) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let Some(faults) = tenants.get_mut(tenant) else {
            return false;
        };
        let attempt = faults.ingest_attempts;
        faults.ingest_attempts += 1;
        faults
            .full_windows
            .iter()
            .any(|w| attempt >= w.from && attempt < w.from + w.len)
    }

    /// Consult the plan for one recovery attempt on `tenant`; returns
    /// `true` (and consumes one scripted failure) when the attempt must
    /// fail.
    pub(crate) fn take_recovery_failure(&self, tenant: &TenantId) -> bool {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let Some(faults) = tenants.get_mut(tenant) else {
            return false;
        };
        if faults.recovery_failures > 0 {
            faults.recovery_failures -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(s: &str) -> TenantId {
        TenantId::new(s).unwrap()
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().panic_at(tid("a"), 0).is_empty());
        assert!(!FaultPlan::new().queue_full(tid("a"), 0, 1).is_empty());
        // A zero-length window schedules nothing.
        assert!(FaultPlan::new().queue_full(tid("a"), 0, 0).is_empty());
        assert!(!FaultPlan::new().fail_recovery(tid("a"), 1).is_empty());
    }

    #[test]
    fn panic_offset_is_batch_relative_and_consumed_once() {
        let inj = FaultInjector::new(FaultPlan::new().panic_at(tid("a"), 7));
        // Points 0..5: no fault.
        assert_eq!(inj.take_panic_offset(&tid("a"), 5), None);
        // Points 5..10: ordinal 7 is offset 2.
        assert_eq!(inj.take_panic_offset(&tid("a"), 5), Some(2));
        // Consumed: later batches see nothing.
        assert_eq!(inj.take_panic_offset(&tid("a"), 100), None);
        // Other tenants are unaffected.
        assert_eq!(inj.take_panic_offset(&tid("b"), 100), None);
    }

    #[test]
    fn earliest_panic_in_batch_wins_and_later_one_still_consumed() {
        let inj = FaultInjector::new(FaultPlan::new().panic_at(tid("a"), 3).panic_at(tid("a"), 1));
        // Both ordinals fall in the first batch; the earliest fires and
        // both are consumed (the batch aborts at offset 1, so ordinal 3
        // never gets a chance to fire on a later replay of the cursor).
        assert_eq!(inj.take_panic_offset(&tid("a"), 10), Some(1));
        assert_eq!(inj.take_panic_offset(&tid("a"), 10), None);
    }

    #[test]
    fn full_windows_cover_attempt_ordinals() {
        let inj = FaultInjector::new(FaultPlan::new().queue_full(tid("a"), 2, 3));
        let hits: Vec<bool> = (0..7).map(|_| inj.ingest_forced_full(&tid("a"))).collect();
        assert_eq!(hits, vec![false, false, true, true, true, false, false]);
        assert!(!inj.ingest_forced_full(&tid("b")));
    }

    #[test]
    fn recovery_failures_are_consumed() {
        let inj = FaultInjector::new(FaultPlan::new().fail_recovery(tid("a"), 2));
        assert!(inj.take_recovery_failure(&tid("a")));
        assert!(inj.take_recovery_failure(&tid("a")));
        assert!(!inj.take_recovery_failure(&tid("a")));
        assert!(!inj.take_recovery_failure(&tid("b")));
    }
}
