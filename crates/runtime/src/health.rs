//! Tenant health states, overload policies, and recovery reporting — the
//! vocabulary of the fleet's supervision plane.
//!
//! A long-lived multi-tenant engine has to survive faults a single-stream
//! process never meets: one tenant's detector panicking mid-batch, one
//! tenant's producers outrunning its drain loop, a checkpoint file torn by
//! a crash. The types here describe how the fleet degrades — *per tenant*,
//! never fleet-wide:
//!
//! * [`TenantHealth`] — the per-tenant state machine
//!   (`Healthy → Quarantined → Healthy|Failed`): a panic quarantines only
//!   the tenant that panicked; co-tenants keep executing on the shared
//!   pool.
//! * [`OverloadPolicy`] — what `SpotFleet::ingest` does when the tenant's
//!   bounded queue is full: block (backpressure), shed, or deterministic
//!   1-in-k sampling.
//! * [`RecoveryReport`] — what the [`crate::Supervisor`] did to bring a
//!   quarantined tenant back: attempts, the backoff schedule, and the
//!   window of points lost between the shadow checkpoint and the fault.
//!
//! See `docs/robustness.md` for the full protocol.

use spot_types::TenantId;

/// Why a tenant is quarantined: the captured panic context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineInfo {
    /// The panic payload, rendered to text (`&str`/`String` payloads
    /// verbatim).
    pub reason: String,
    /// The tenant's `processed` counter at quarantine time (last stable
    /// seqlock publication — the in-flight batch is *not* included; it
    /// never completed).
    pub processed: u64,
    /// Points in the batch whose processing panicked. The caller received
    /// an error for them, not verdicts; they are part of the lost window.
    pub failed_batch: u64,
}

/// Per-tenant health state. Transitions:
///
/// ```text
///   Healthy ──panic──▶ Quarantined ──recovery──▶ Healthy
///                          │  ▲
///                  retry   │  │ backoff
///                  budget  ▼  │
///                        Failed   (terminal; evict or restore manually)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantHealth {
    /// Serving normally.
    Healthy,
    /// The tenant's detector panicked; its in-memory state is untrusted
    /// and every processing operation fails with
    /// [`spot_types::SpotError::TenantPoisoned`] until it is restored from
    /// a checkpoint. Ingestion still enqueues (subject to the overload
    /// policy) so the backlog survives into recovery.
    Quarantined(QuarantineInfo),
    /// The supervisor exhausted its retry budget (or had no shadow
    /// checkpoint to restore from). Terminal: the tenant stays registered
    /// for inspection but serves nothing; evict it or restore it manually
    /// via `SpotFleet::revive_tenant`.
    Failed(QuarantineInfo),
}

impl TenantHealth {
    /// `true` for [`TenantHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, TenantHealth::Healthy)
    }

    /// `true` for [`TenantHealth::Quarantined`].
    pub fn is_quarantined(&self) -> bool {
        matches!(self, TenantHealth::Quarantined(_))
    }

    /// `true` for [`TenantHealth::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, TenantHealth::Failed(_))
    }
}

/// What `SpotFleet::ingest` does with a point when the tenant's bounded
/// queue is full. The policy is per tenant
/// (`SpotFleet::set_overload_policy`); the default is
/// [`OverloadPolicy::Block`] — the pre-supervision behavior.
///
/// Shedding decisions are deterministic: they depend only on the sequence
/// of full-queue encounters (a per-tenant counter), never on wall-clock
/// time or thread scheduling, so a replayed ingest sequence sheds exactly
/// the same points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the producer until the queue has room — backpressure. No
    /// point is ever lost; a slow tenant stalls its own producers (never
    /// co-tenants).
    #[default]
    Block,
    /// Drop the point and count it in the tenant's `shed` counter. The
    /// producer never blocks; the verdict stream has gaps under overload.
    Shed,
    /// Deterministic 1-in-k sampling under overload: every `keep_one_in`-th
    /// full-queue encounter is admitted (blocking for its slot), the rest
    /// are shed. `Sample { keep_one_in: 1 }` degrades to `Block`,
    /// `keep_one_in: 0` is normalized to `1` at set time.
    Sample {
        /// Admit one point per this many full-queue encounters.
        keep_one_in: u32,
    },
}

/// Outcome of one [`crate::SpotFleet::ingest`] call under the tenant's
/// overload policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The point is in the tenant's queue (possibly after blocking).
    Enqueued,
    /// The point was dropped by the `Shed`/`Sample` policy; it will never
    /// produce a verdict. Counted in the tenant's `shed` counter.
    Shed,
}

/// What the supervisor did to bring one quarantined tenant back to
/// [`TenantHealth::Healthy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered tenant.
    pub tenant: TenantId,
    /// Recovery attempts made, including the successful one.
    pub attempts: u32,
    /// The backoff schedule actually applied: supervision passes skipped
    /// before each retry (empty when the first attempt succeeded).
    pub backoff: Vec<u64>,
    /// The tenant's `processed` counter inside the restored shadow
    /// checkpoint — the stream position the tenant resumed from.
    pub processed_at_shadow: u64,
    /// The tenant's `processed` counter when it was quarantined (last
    /// stable publication before the panic).
    pub processed_at_failure: u64,
    /// Points whose verdicts are lost to the fault. Without a WAL this is
    /// `processed_at_failure - processed_at_shadow` plus the batch that
    /// panicked — re-feed this window (the caller still holds it; the
    /// failed batch erred, it was never acknowledged) to converge with
    /// the uninterrupted stream. **With the ingestion WAL enabled the
    /// recovery replays that window from the log and this is `0`.**
    pub points_lost: u64,
    /// Queued-but-undrained points carried over from the quarantined
    /// entry's queue into the recovered tenant's queue (arrival order
    /// preserved). `0` with a WAL — the backlog is replayed from the log
    /// instead (counted in `replayed`).
    pub backlog_carried: u64,
    /// WAL records replayed to rebuild the lost window and backlog (`0`
    /// without a WAL).
    pub replayed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_predicates() {
        let info = QuarantineInfo {
            reason: "boom".to_string(),
            processed: 7,
            failed_batch: 3,
        };
        assert!(TenantHealth::Healthy.is_healthy());
        assert!(!TenantHealth::Healthy.is_quarantined());
        let q = TenantHealth::Quarantined(info.clone());
        assert!(q.is_quarantined() && !q.is_healthy() && !q.is_failed());
        let f = TenantHealth::Failed(info);
        assert!(f.is_failed() && !f.is_quarantined());
    }

    #[test]
    fn default_policy_is_block() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Block);
    }
}
