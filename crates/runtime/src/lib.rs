//! # spot-runtime — many detectors, one shared executor
//!
//! SPOT (ICDE 2008) frames detection as a per-stream engine; a production
//! deployment serves *thousands* of independent streams — one detector per
//! tenant/sensor/model. This crate multiplexes those detectors over shared
//! compute:
//!
//! * [`SpotFleet`] — a registry of named, independently configured
//!   detectors ([`spot_types::TenantId`] keys) that all dispatch their
//!   synopsis shard phases and verdict sweeps through **one shared
//!   [`spot_synopsis::ExecutorHandle`]** — at most one worker pool for the
//!   whole fleet, however many tenants register.
//! * **Per-tenant bounded ingestion queues** — [`SpotFleet::ingest`]
//!   enqueues into a bounded channel (blocking once full: natural
//!   backpressure), [`SpotFleet::drain`] processes queued points in
//!   micro-batches through the shared executor.
//! * **Off-lock monitoring** — [`SpotFleet::stats`] and
//!   [`SpotFleet::footprint`] aggregate every tenant's seqlock counters
//!   and lock-free footprint mirror; they never take any tenant's
//!   detector lock.
//! * [`FleetCheckpoint`] — a versioned, per-tenant durable snapshot riding
//!   the v2 `DurableState` substrate: each tenant's capture is the same
//!   bit-exact `SpotCheckpoint` a standalone detector produces (one claim
//!   unit per store on the shared pool), and restores are per-tenant with
//!   typed errors for unknown tenants and unknown versions.
//!
//! **Determinism.** A tenant processed through the fleet emits bit-identical
//! verdicts, stats and footprint to a standalone `Spot` with the same
//! configuration and input, regardless of co-tenant load or worker count —
//! pinned by the proptest suite in `tests/fleet_determinism.rs`. See
//! `docs/runtime.md` for the ownership model and tenant lifecycle.
//!
//! **Supervision.** The fleet carries a fault-containment plane on top of
//! the registry:
//!
//! * **Panic isolation** — tenant detector work runs under a panic guard;
//!   a panic quarantines *only* that tenant
//!   ([`spot_types::SpotError::TenantPoisoned`]) while co-tenants stay
//!   bit-identical to a fault-free run ([`TenantHealth`]).
//! * **Self-healing** — a [`Supervisor`] keeps rolling per-tenant shadow
//!   checkpoints and auto-restores quarantined tenants with bounded
//!   retries and deterministic exponential backoff, reporting each
//!   recovery as a [`RecoveryReport`].
//! * **Graceful degradation** — per-tenant [`OverloadPolicy`] (block /
//!   shed / deterministic 1-in-k sampling) when a bounded queue fills.
//! * **Crash-safe checkpoint files** — [`CheckpointStore`] writes
//!   atomically (tmp + fsync + rename), seals envelopes with a checksum,
//!   and recovers from the newest *valid* retained generation.
//! * **Deterministic fault injection** — a [`FaultPlan`] scripts panics,
//!   queue-full windows, recovery failures and WAL crashes (kill after
//!   append, torn write, failed fsync, mid-rotation, between checkpoint
//!   and prune) at exact ordinals, so chaos tests replay bit-identically.
//!   See `docs/robustness.md`.
//!
//! **Durability.** [`SpotFleet::enable_wal`] arms a per-tenant segmented
//! write-ahead log: every admitted point is appended (checksummed,
//! fsync-policy-bounded) *before* it is enqueued, checkpoints record each
//! tenant's replay watermark and prune sealed segments behind it, and
//! [`SpotFleet::recover`] restores the newest valid checkpoint then
//! replays the WAL tail through the normal drain path — the post-crash
//! verdict stream is bit-identical to an uncrashed run and no admitted
//! point is lost. See [`wal`] and `docs/persistence.md`.

pub mod archive;
pub mod checkpoint;
pub mod faults;
pub mod fleet;
pub mod health;
pub mod supervisor;
pub mod wal;

pub use archive::{ArchiveReplay, VerdictArchive};
pub use checkpoint::{
    Carrier, CheckpointStore, FleetCheckpoint, FleetDelta, TenantEntry,
    FLEET_CHECKPOINT_BINARY_VERSION, FLEET_CHECKPOINT_VERSION,
};
pub use faults::FaultPlan;
pub use fleet::{FleetConfig, FleetFootprint, FleetStats, SpotFleet};
pub use health::{IngestOutcome, OverloadPolicy, QuarantineInfo, RecoveryReport, TenantHealth};
pub use spot_types::TenantId;
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorPass};
pub use wal::{FleetRecovery, FsyncPolicy, WalTuning};
