//! Self-healing for the fleet: rolling shadow checkpoints and automatic
//! restoration of quarantined tenants.
//!
//! The [`Supervisor`] wraps a [`SpotFleet`] and runs a *supervision pass*
//! ([`Supervisor::tick`]) alongside the normal service loop:
//!
//! 1. **Shadowing.** Every healthy tenant gets a rolling in-memory shadow
//!    checkpoint (the bit-exact v2 `SpotCheckpoint`), refreshed once the
//!    tenant has processed [`SupervisorConfig::shadow_every`] more points
//!    since the last shadow. Captures ride the existing checkpoint path —
//!    one claim unit per projected store on the shared pool — and happen
//!    only inside the supervision pass, never on the per-point hot path.
//! 2. **Recovery.** A quarantined tenant (see the fleet's panic isolation)
//!    is restored from its shadow via [`SpotFleet::revive_tenant`] with a
//!    bounded retry budget and deterministic exponential backoff counted
//!    in *passes*, not wall-clock time (attempt `n` failing skips
//!    `backoff_base << (n-1)` passes). Success yields a
//!    [`RecoveryReport`]; an exhausted budget (or a tenant that was never
//!    shadowed) transitions the tenant to the terminal
//!    [`TenantHealth::Failed`] state.
//!
//! The recovered tenant resumes from the shadow's stream position with
//! its queued backlog carried over; the verdicts between the shadow and
//! the fault are lost (the report's `points_lost` window) — replaying
//! exactly that window reconverges with the uninterrupted stream, which
//! the chaos suite pins bit-for-bit. **With the ingestion WAL enabled**
//! (see [`crate::SpotFleet::enable_wal`]) the revive replays that window
//! from the log itself: the report's `replayed` counts the re-derived
//! records and `points_lost` is `0`. Durable (on-disk) retention of
//! checkpoints is the separate [`crate::CheckpointStore`].

use crate::fleet::SpotFleet;
use crate::health::{QuarantineInfo, RecoveryReport, TenantHealth};
use spot::{SpotCheckpoint, Verdict};
use spot_types::{Result, SpotError, TenantId};
use std::collections::HashMap;
use std::sync::Mutex;

/// Supervision knobs. `Default`: re-shadow every 2048 processed points,
/// 3 recovery attempts, backoff 1-2-4 passes.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Refresh a tenant's shadow once it has processed this many points
    /// since the previous shadow (clamped to at least 1). Smaller values
    /// shrink the `points_lost` window at the cost of more captures.
    pub shadow_every: u64,
    /// Recovery attempts before a quarantined tenant is marked
    /// [`TenantHealth::Failed`] (clamped to at least 1).
    pub max_retries: u32,
    /// Base of the exponential backoff: after failed attempt `n` the
    /// supervisor skips `backoff_base << (n-1)` passes before retrying.
    pub backoff_base: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shadow_every: 2048,
            max_retries: 3,
            backoff_base: 1,
        }
    }
}

/// What one [`Supervisor::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct SupervisorPass {
    /// Shadow checkpoints captured or refreshed this pass.
    pub shadows_taken: usize,
    /// Tenants restored to [`TenantHealth::Healthy`] this pass.
    pub recovered: Vec<RecoveryReport>,
    /// Tenants newly marked [`TenantHealth::Failed`] this pass.
    pub failed: Vec<TenantId>,
}

/// Per-tenant supervision ledger.
#[derive(Default)]
struct Guard {
    /// Last shadow: the tenant's `processed` counter at capture time and
    /// the checkpoint itself.
    shadow: Option<(u64, SpotCheckpoint)>,
    /// Recovery attempts made for the current quarantine.
    attempts: u32,
    /// Passes left to skip before the next recovery attempt.
    cooldown: u64,
    /// Backoff schedule applied so far for the current quarantine.
    backoff_log: Vec<u64>,
    /// Most recent successful recovery.
    last_recovery: Option<RecoveryReport>,
}

/// Shadow-checkpoint keeper and automatic restorer for one fleet. Clone
/// the fleet handle in; the supervisor holds its own ledger and is safe to
/// drive from any single thread (internal state is mutex-guarded; run one
/// supervision loop — concurrent ticks would race their retry budgets).
pub struct Supervisor {
    fleet: SpotFleet,
    config: SupervisorConfig,
    guards: Mutex<HashMap<TenantId, Guard>>,
}

impl Supervisor {
    /// Wraps a fleet handle. Run [`Supervisor::tick`] periodically (e.g.
    /// after each `pump`, or use [`Supervisor::pump`]); the first tick
    /// takes every healthy tenant's initial shadow — tick once right
    /// after learning so a tenant is never quarantined unshadowed.
    pub fn new(fleet: SpotFleet, config: SupervisorConfig) -> Self {
        Supervisor {
            fleet,
            config: SupervisorConfig {
                shadow_every: config.shadow_every.max(1),
                max_retries: config.max_retries.max(1),
                backoff_base: config.backoff_base,
            },
            guards: Mutex::new(HashMap::new()),
        }
    }

    /// The supervised fleet.
    pub fn fleet(&self) -> &SpotFleet {
        &self.fleet
    }

    /// The effective (clamped) configuration.
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// One service pass: [`SpotFleet::pump`] followed by a supervision
    /// [`Supervisor::tick`].
    #[allow(clippy::type_complexity)]
    pub fn pump(&self) -> (Vec<(TenantId, Result<Vec<Verdict>>)>, SupervisorPass) {
        let drained = self.fleet.pump();
        (drained, self.tick())
    }

    /// One supervision pass over every registered tenant: refresh shadows
    /// of healthy tenants, advance backoff cooldowns, attempt recovery of
    /// quarantined tenants, and mark budget-exhausted ones failed.
    pub fn tick(&self) -> SupervisorPass {
        let mut pass = SupervisorPass::default();
        let ids = self.fleet.tenant_ids();
        let mut guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        // Drop ledger entries of evicted tenants.
        guards.retain(|id, _| ids.binary_search(id).is_ok());
        for id in ids {
            let guard = guards.entry(id.clone()).or_default();
            let Ok(health) = self.fleet.health(&id) else {
                continue; // evicted mid-pass
            };
            match health {
                TenantHealth::Healthy => {
                    // A healthy sighting ends any quarantine bookkeeping
                    // (e.g. after a manual revive_tenant).
                    guard.attempts = 0;
                    guard.cooldown = 0;
                    guard.backoff_log.clear();
                    let processed = match self.fleet.tenant_stats(&id) {
                        Ok(s) => s.processed,
                        Err(_) => continue,
                    };
                    let due = match &guard.shadow {
                        None => true,
                        Some((at, _)) => processed.saturating_sub(*at) >= self.config.shadow_every,
                    };
                    // The capture can race a concurrent panic
                    // (checkpoint_tenant re-checks the gate); a lost race
                    // just means this pass takes no shadow.
                    if due {
                        if let Ok(cp) = self.fleet.checkpoint_tenant(&id) {
                            guard.shadow = Some((processed, cp));
                            pass.shadows_taken += 1;
                        }
                    }
                }
                TenantHealth::Quarantined(info) => {
                    if guard.cooldown > 0 {
                        guard.cooldown -= 1;
                        continue;
                    }
                    self.attempt_recovery(&id, &info, guard, &mut pass);
                }
                TenantHealth::Failed(_) => {}
            }
        }
        pass
    }

    /// One recovery attempt for a quarantined tenant, updating the ledger
    /// and the pass summary.
    fn attempt_recovery(
        &self,
        id: &TenantId,
        info: &QuarantineInfo,
        guard: &mut Guard,
        pass: &mut SupervisorPass,
    ) {
        let Some((shadow_processed, shadow)) = guard.shadow.clone() else {
            // Never shadowed: nothing to restore from.
            let _ = self.fleet.mark_failed(id);
            pass.failed.push(id.clone());
            return;
        };
        guard.attempts += 1;
        let revived = if self.fleet.recovery_attempt_must_fail(id) {
            Err(SpotError::TenantPoisoned {
                tenant: id.to_string(),
                panic: "injected fault: recovery attempt failed".to_string(),
            })
        } else {
            self.fleet.revive_tenant_inner(id, &shadow)
        };
        match revived {
            Ok(outcome) => {
                // With a WAL the revive replayed the log tail, re-deriving
                // everything between the shadow and the fault (failed
                // batch included): lost = whatever the replay did *not*
                // bring back past the pre-fault position. Without one, the
                // shadow → fault window is gone.
                let points_lost = if outcome.walled {
                    let now = self
                        .fleet
                        .tenant_stats(id)
                        .map(|s| s.processed)
                        .unwrap_or(0);
                    (info.processed + info.failed_batch).saturating_sub(now)
                } else {
                    info.processed.saturating_sub(shadow_processed) + info.failed_batch
                };
                let report = RecoveryReport {
                    tenant: id.clone(),
                    attempts: guard.attempts,
                    backoff: guard.backoff_log.clone(),
                    processed_at_shadow: shadow_processed,
                    processed_at_failure: info.processed,
                    points_lost,
                    backlog_carried: outcome.carried,
                    replayed: outcome.replayed,
                };
                guard.attempts = 0;
                guard.cooldown = 0;
                guard.backoff_log.clear();
                guard.last_recovery = Some(report.clone());
                // The revived tenant *is* the shadow state: the existing
                // shadow stays the valid restore point until it rolls.
                pass.recovered.push(report);
            }
            Err(_) => {
                if guard.attempts >= self.config.max_retries {
                    let _ = self.fleet.mark_failed(id);
                    pass.failed.push(id.clone());
                } else {
                    let backoff = self.config.backoff_base << (guard.attempts - 1);
                    guard.cooldown = backoff;
                    guard.backoff_log.push(backoff);
                }
            }
        }
    }

    /// Forces an immediate shadow refresh for one tenant (e.g. right
    /// before a risky reconfiguration). Errors when the tenant is unknown
    /// or not healthy.
    pub fn shadow_now(&self, id: &TenantId) -> Result<()> {
        let cp = self.fleet.checkpoint_tenant(id)?;
        let processed = self.fleet.tenant_stats(id)?.processed;
        let mut guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        guards.entry(id.clone()).or_default().shadow = Some((processed, cp));
        Ok(())
    }

    /// The stream position (`processed` counter) of a tenant's current
    /// shadow, if one has been taken.
    pub fn shadow_position(&self, id: &TenantId) -> Option<u64> {
        let guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        guards
            .get(id)
            .and_then(|g| g.shadow.as_ref().map(|(at, _)| *at))
    }

    /// The most recent successful recovery of a tenant, if any.
    pub fn last_recovery(&self, id: &TenantId) -> Option<RecoveryReport> {
        let guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        guards.get(id).and_then(|g| g.last_recovery.clone())
    }
}
