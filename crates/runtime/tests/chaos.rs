//! Chaos acceptance suite for the fleet supervision plane.
//!
//! Pins the robustness contract:
//!
//! * **Panic isolation** — a panic injected into one tenant mid-batch
//!   surfaces as a typed `TenantPoisoned` error and quarantines that
//!   tenant only; every co-tenant stays bit-identical to a fault-free
//!   run, on the serial executor and on worker pools.
//! * **Self-healing** — the `Supervisor` restores the quarantined tenant
//!   from its rolling shadow checkpoint within the retry budget, and
//!   replaying exactly the reported `points_lost` window reconverges the
//!   tenant with the uninterrupted verdict stream, bit-for-bit.
//! * **Skip-and-report pump** — a faulted tenant is reported per-tenant;
//!   the sweep never aborts and never consumes the faulted backlog.
//! * **Graceful degradation** — `Shed` and deterministic 1-in-k `Sample`
//!   overload policies, driven by scripted queue-full windows.
//! * **Bounded retries** — scripted recovery failures exhaust the budget
//!   through deterministic exponential backoff into the terminal `Failed`
//!   state, from which a manual revive still works.

use proptest::prelude::*;
use spot::{EvolutionConfig, Spot, SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{
    FaultPlan, FleetConfig, IngestOutcome, OverloadPolicy, SpotFleet, Supervisor, SupervisorConfig,
    TenantId,
};
use spot_types::{DataPoint, DomainBounds, SpotError};

fn tenant_config(seed: u64, dims: usize) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(dims))
        .seed(seed)
        .fs_max_dimension(2)
        .evolution(EvolutionConfig {
            period: 70,
            ..Default::default()
        })
        .pruning(55, 1e-4)
        .build_config()
        .unwrap()
}

fn training(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..dims)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..dims)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % dims] = if (i / 11) % 2 == 0 { 0.97 } else { 0.02 };
            }
            DataPoint::new(v)
        })
        .collect()
}

fn assert_same_verdicts(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: length");
    for (a, b) in want.iter().zip(got) {
        assert!(a.bitwise_eq(b), "{label}: tick {}: {a:?} vs {b:?}", a.tick);
    }
}

fn standalone_verdicts(
    seed: u64,
    dims: usize,
    train: &[DataPoint],
    pts: &[DataPoint],
) -> Vec<Verdict> {
    let mut spot = Spot::new(tenant_config(seed, dims)).unwrap();
    spot.learn(train).unwrap();
    pts.iter().map(|p| spot.process(p).unwrap()).collect()
}

fn tid(s: &str) -> TenantId {
    TenantId::new(s).unwrap()
}

/// The headline acceptance scenario, parameterized over the executor: a
/// panic injected into one tenant mid-batch leaves co-tenants
/// bit-identical to a fault-free run, and the supervisor auto-recovers
/// the faulted tenant from its shadow checkpoint; replaying the reported
/// lost window reconverges with the uninterrupted stream.
fn mid_batch_panic_scenario(workers: Option<usize>) {
    let dims = 4;
    let chunk = 64;
    let n = 320;
    let panic_ordinal: usize = 130; // inside the third chunk
    let train = training(150, dims, 13);
    let seeds = [
        (tid("alpha"), 3u64),
        (tid("bravo"), 5u64),
        (tid("carol"), 8u64),
    ];
    let faulted = &seeds[1].0;

    let fleet = SpotFleet::with_workers(FleetConfig::default(), workers);
    for (id, seed) in &seeds {
        fleet
            .register(id.clone(), tenant_config(*seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
    }
    let supervisor = Supervisor::new(
        fleet.clone(),
        SupervisorConfig {
            shadow_every: 100,
            max_retries: 3,
            backoff_base: 1,
        },
    );
    // Initial shadows at stream position 0.
    assert_eq!(supervisor.tick().shadows_taken, 3);

    fleet.arm_faults(FaultPlan::new().panic_at(faulted.clone(), panic_ordinal as u64));

    let mut delivered: Vec<(TenantId, Vec<Verdict>)> = seeds
        .iter()
        .map(|(id, _)| (id.clone(), Vec::new()))
        .collect();
    let mut faulted_error = None;
    for start in (0..n).step_by(chunk) {
        for (t, (id, seed)) in seeds.iter().enumerate() {
            let pts = stream(n, dims, *seed);
            match fleet.process_batch(id, &pts[start..start + chunk]) {
                Ok(vs) => delivered[t].1.extend(vs),
                Err(e) => {
                    assert_eq!(id, faulted, "only the faulted tenant may error");
                    faulted_error.get_or_insert(e);
                }
            }
        }
        // Supervision runs *between* chunks, like a real service loop —
        // but withhold recovery until the drive is over so the error
        // persistence below is observable.
        if start + chunk < panic_ordinal {
            supervisor.tick();
        }
    }

    // The injected panic surfaced as the typed quarantine error, with the
    // panic payload preserved through the pool's re-raise path.
    match faulted_error.expect("the faulted tenant must error") {
        SpotError::TenantPoisoned { tenant, panic } => {
            assert_eq!(tenant, faulted.to_string());
            assert!(panic.contains("injected fault"), "payload lost: {panic}");
        }
        other => panic!("expected TenantPoisoned, got {other:?}"),
    }
    let health = fleet.health(faulted).unwrap();
    assert!(health.is_quarantined(), "got {health:?}");
    let stats = fleet.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.panics, 1);

    // Co-tenants: complete verdict streams, bit-identical to standalone —
    // as if the faulted tenant never existed.
    for (id, seed) in &seeds {
        if id == faulted {
            continue;
        }
        let pts = stream(n, dims, *seed);
        let want = standalone_verdicts(*seed, dims, &train, &pts);
        let got = &delivered.iter().find(|(i, _)| i == id).unwrap().1;
        assert_same_verdicts(&want, got, &format!("co-tenant {id}"));
    }

    // Recovery: one attempt, no backoff, restored from the last shadow.
    let pass = supervisor.tick();
    assert!(pass.failed.is_empty());
    assert_eq!(pass.recovered.len(), 1);
    let report = &pass.recovered[0];
    assert_eq!(&report.tenant, faulted);
    assert_eq!(report.attempts, 1);
    assert!(report.backoff.is_empty());
    let shadow_at = report.processed_at_shadow;
    assert!(
        shadow_at > 0 && shadow_at <= report.processed_at_failure,
        "shadow at {shadow_at}, failure at {}",
        report.processed_at_failure
    );
    // The failed 64-point chunk is part of the lost window.
    assert_eq!(
        report.points_lost,
        report.processed_at_failure - shadow_at + chunk as u64
    );
    assert!(fleet.health(faulted).unwrap().is_healthy());
    assert_eq!(fleet.stats().recoveries, 1);
    assert_eq!(fleet.stats().quarantined, 0);

    // Convergence: replay the stream from the shadow position; the
    // recovered tenant must emit exactly the verdicts the uninterrupted
    // run would have emitted there.
    let (_, seed) = seeds.iter().find(|(i, _)| i == faulted).unwrap();
    let pts = stream(n, dims, *seed);
    let want = standalone_verdicts(*seed, dims, &train, &pts);
    let replayed = fleet
        .process_batch(faulted, &pts[shadow_at as usize..])
        .unwrap();
    assert_same_verdicts(
        &want[shadow_at as usize..],
        &replayed,
        "recovered tenant replaying its lost window",
    );
}

#[test]
fn mid_batch_panic_isolates_and_recovers_serial() {
    mid_batch_panic_scenario(Some(0));
}

#[test]
fn mid_batch_panic_isolates_and_recovers_pooled() {
    mid_batch_panic_scenario(Some(2));
}

#[test]
fn pump_skips_and_reports_a_quarantined_tenant() {
    let dims = 3;
    let train = training(120, dims, 2);
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 16,
        },
        Some(0),
    );
    let a = tid("a-healthy");
    let b = tid("b-faulted");
    for (id, seed) in [(&a, 1u64), (&b, 2u64)] {
        fleet
            .register(id.clone(), tenant_config(seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
    }
    // Panic on b's very first drained point.
    fleet.arm_faults(FaultPlan::new().panic_at(b.clone(), 0));
    let pts_a = stream(10, dims, 1);
    let pts_b = stream(20, dims, 2);
    for p in &pts_a {
        assert_eq!(
            fleet.ingest(&a, p.clone()).unwrap(),
            IngestOutcome::Enqueued
        );
    }
    for p in &pts_b {
        fleet.ingest(&b, p.clone()).unwrap();
    }

    let results = fleet.pump();
    assert_eq!(results.len(), 2, "both tenants reported");
    let a_verdicts = results
        .iter()
        .find(|(id, _)| *id == a)
        .unwrap()
        .1
        .as_ref()
        .unwrap();
    // The healthy tenant's sweep is unaffected: its first micro-batch
    // matches the standalone reference bit-for-bit.
    let want = standalone_verdicts(1, dims, &train, &pts_a);
    assert_same_verdicts(&want[..a_verdicts.len()], a_verdicts, "co-tenant sweep");
    let b_result = &results.iter().find(|(id, _)| *id == b).unwrap().1;
    assert!(
        matches!(b_result, Err(SpotError::TenantPoisoned { .. })),
        "got {b_result:?}"
    );

    // The faulted micro-batch was consumed by the panic; everything still
    // queued stays queued for recovery (gate fires before dequeuing).
    let backlog = fleet.queue_len(&b).unwrap();
    assert_eq!(backlog, pts_b.len() - 16, "backlog preserved");
    let again = fleet.pump();
    let b_again = &again.iter().find(|(id, _)| *id == b).unwrap().1;
    assert!(matches!(b_again, Err(SpotError::TenantPoisoned { .. })));
    assert_eq!(
        fleet.queue_len(&b).unwrap(),
        backlog,
        "no dequeue while quarantined"
    );
}

#[test]
fn supervisor_carries_the_backlog_into_the_recovered_tenant() {
    let dims = 3;
    let train = training(120, dims, 4);
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 8,
        },
        Some(0),
    );
    let b = tid("backlogged");
    fleet.register(b.clone(), tenant_config(6, dims)).unwrap();
    fleet.learn(&b, &train).unwrap();
    let supervisor = Supervisor::new(fleet.clone(), SupervisorConfig::default());
    supervisor.tick();

    fleet.arm_faults(FaultPlan::new().panic_at(b.clone(), 0));
    let pts = stream(20, dims, 6);
    for p in &pts {
        fleet.ingest(&b, p.clone()).unwrap();
    }
    // First drain panics away the first micro-batch (8 points) and
    // quarantines; 12 stay queued — and still ingestible.
    assert!(fleet.drain(&b).is_err());
    fleet.ingest(&b, pts[0].clone()).unwrap();
    assert_eq!(fleet.queue_len(&b).unwrap(), 13);

    let pass = supervisor.tick();
    assert_eq!(pass.recovered.len(), 1);
    assert_eq!(pass.recovered[0].backlog_carried, 13);
    assert_eq!(fleet.queue_len(&b).unwrap(), 13);
    // The carried backlog drains normally after recovery.
    assert_eq!(fleet.drain_fully(&b).unwrap().len(), 13);
}

#[test]
fn overload_policies_shed_and_sample_deterministically() {
    let dims = 3;
    let train = training(100, dims, 3);
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 4,
            micro_batch: 4,
        },
        Some(0),
    );
    let shed_id = tid("shedding");
    let sample_id = tid("sampling");
    let block_id = tid("blocking");
    for (id, seed) in [(&shed_id, 1u64), (&sample_id, 2), (&block_id, 3)] {
        fleet
            .register(id.clone(), tenant_config(seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
    }
    let p = DataPoint::new(vec![0.4, 0.4, 0.4]);

    // Shed: a genuinely full queue drops the overflow without blocking.
    fleet
        .set_overload_policy(&shed_id, OverloadPolicy::Shed)
        .unwrap();
    for _ in 0..4 {
        assert_eq!(
            fleet.ingest(&shed_id, p.clone()).unwrap(),
            IngestOutcome::Enqueued
        );
    }
    for _ in 0..5 {
        assert_eq!(
            fleet.ingest(&shed_id, p.clone()).unwrap(),
            IngestOutcome::Shed
        );
    }
    assert_eq!(fleet.queue_len(&shed_id).unwrap(), 4);

    // Sample 1-in-3 over a scripted 9-attempt full window: encounters
    // 0, 3 and 6 are admitted, the other six shed — a pure function of
    // the encounter ordinal.
    fleet
        .set_overload_policy(&sample_id, OverloadPolicy::Sample { keep_one_in: 3 })
        .unwrap();
    fleet.arm_faults(FaultPlan::new().queue_full(sample_id.clone(), 0, 9));
    let outcomes: Vec<IngestOutcome> = (0..9)
        .map(|_| fleet.ingest(&sample_id, p.clone()).unwrap())
        .collect();
    use IngestOutcome::{Enqueued, Shed};
    assert_eq!(
        outcomes,
        vec![Enqueued, Shed, Shed, Enqueued, Shed, Shed, Enqueued, Shed, Shed]
    );
    assert_eq!(fleet.queue_len(&sample_id).unwrap(), 3);

    // Block ignores scripted fullness (nothing to observe without real
    // waiting) and always enqueues.
    fleet.arm_faults(FaultPlan::new().queue_full(block_id.clone(), 0, 4));
    for _ in 0..4 {
        assert_eq!(
            fleet.ingest(&block_id, p.clone()).unwrap(),
            IngestOutcome::Enqueued
        );
    }

    let stats = fleet.stats();
    assert_eq!(stats.shed, 5 + 6);
    assert_eq!(stats.sampled_kept, 3);
    assert_eq!(stats.queued, 4 + 3 + 4);

    // Shed/sampled points are simply absent from the verdict stream; the
    // admitted ones process normally.
    assert_eq!(fleet.drain_fully(&shed_id).unwrap().len(), 4);
    assert_eq!(fleet.drain_fully(&sample_id).unwrap().len(), 3);
}

#[test]
fn recovery_budget_exhausts_into_failed_then_manual_revive_works() {
    let dims = 3;
    let train = training(120, dims, 9);
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let b = tid("doomed");
    fleet.register(b.clone(), tenant_config(4, dims)).unwrap();
    fleet.learn(&b, &train).unwrap();
    let supervisor = Supervisor::new(
        fleet.clone(),
        SupervisorConfig {
            shadow_every: 1000,
            max_retries: 3,
            backoff_base: 1,
        },
    );
    supervisor.tick();
    let shadow = fleet.checkpoint_tenant(&b).unwrap();

    // Every recovery attempt is scripted to fail; the panic fires on the
    // first processed point.
    fleet.arm_faults(
        FaultPlan::new()
            .panic_at(b.clone(), 0)
            .fail_recovery(b.clone(), 3),
    );
    let pts = stream(5, dims, 4);
    assert!(fleet.process_batch(&b, &pts).is_err());

    // Deterministic schedule with backoff_base 1: attempt on pass 1
    // (fails, backoff 1), pass 2 cools down, attempt on pass 3 (fails,
    // backoff 2), passes 4-5 cool down, attempt on pass 6 exhausts the
    // budget → Failed.
    let mut failed_pass = None;
    for pass_no in 1..=6 {
        let pass = supervisor.tick();
        assert!(pass.recovered.is_empty(), "pass {pass_no} must not recover");
        if !pass.failed.is_empty() {
            failed_pass = Some(pass_no);
            break;
        }
    }
    assert_eq!(
        failed_pass,
        Some(6),
        "budget must exhaust on pass 6 exactly"
    );
    assert!(fleet.health(&b).unwrap().is_failed());
    assert_eq!(fleet.stats().failed, 1);
    // Failed tenants error like quarantined ones and are skipped by fleet
    // checkpoints.
    assert!(matches!(
        fleet.process_batch(&b, &pts),
        Err(SpotError::TenantPoisoned { .. })
    ));
    assert!(fleet.checkpoint().is_empty());
    // A later supervision pass leaves a Failed tenant alone.
    let pass = supervisor.tick();
    assert!(pass.recovered.is_empty() && pass.failed.is_empty());

    // Manual revive is the operator's escape hatch out of Failed.
    fleet.disarm_faults();
    assert_eq!(fleet.revive_tenant(&b, &shadow).unwrap(), 0);
    assert!(fleet.health(&b).unwrap().is_healthy());
    assert_eq!(fleet.process_batch(&b, &pts).unwrap().len(), pts.len());
}

#[test]
fn recovery_retries_through_backoff_and_reports_the_schedule() {
    let dims = 3;
    let train = training(120, dims, 9);
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let b = tid("retrying");
    fleet.register(b.clone(), tenant_config(4, dims)).unwrap();
    fleet.learn(&b, &train).unwrap();
    let supervisor = Supervisor::new(
        fleet.clone(),
        SupervisorConfig {
            shadow_every: 1000,
            max_retries: 3,
            backoff_base: 1,
        },
    );
    supervisor.tick();
    fleet.arm_faults(
        FaultPlan::new()
            .panic_at(b.clone(), 0)
            .fail_recovery(b.clone(), 2),
    );
    assert!(fleet.process_batch(&b, &stream(5, dims, 4)).is_err());

    // Passes 1 (fail, backoff 1), 2 (cooldown), 3 (fail, backoff 2),
    // 4-5 (cooldown), 6 (success on the third attempt).
    let mut report = None;
    for _ in 1..=6 {
        let pass = supervisor.tick();
        if let Some(r) = pass.recovered.first() {
            report = Some(r.clone());
        }
    }
    let report = report.expect("third attempt must succeed");
    assert_eq!(report.attempts, 3);
    assert_eq!(report.backoff, vec![1, 2]);
    assert_eq!(supervisor.last_recovery(&b).unwrap().attempts, 3);
    assert!(fleet.health(&b).unwrap().is_healthy());
}

#[test]
fn quarantined_tenants_are_excluded_from_fleet_checkpoints() {
    let dims = 3;
    let train = training(120, dims, 7);
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let a = tid("kept");
    let b = tid("poisoned");
    for (id, seed) in [(&a, 1u64), (&b, 2)] {
        fleet
            .register(id.clone(), tenant_config(seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
    }
    fleet.arm_faults(FaultPlan::new().panic_at(b.clone(), 0));
    assert!(fleet.process_batch(&b, &stream(3, dims, 2)).is_err());

    let cp = fleet.checkpoint();
    assert_eq!(
        cp.tenant_ids(),
        vec![a.clone()],
        "torn state must not be captured"
    );
    assert!(matches!(
        fleet.checkpoint_tenant(&b),
        Err(SpotError::TenantPoisoned { .. })
    ));
    assert!(fleet.checkpoint_tenant(&a).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos: a random fault plan (panic ordinal, faulted tenant, chunk
    /// size, shadow cadence, worker count) over a multi-tenant fleet.
    /// Unaffected tenants are bit-identical to standalone; the recovered
    /// tenant, replaying from its reported shadow position, converges to
    /// the uninterrupted verdict stream.
    #[test]
    fn chaos_random_fault_plans_isolate_and_converge(
        seeds in proptest::collection::vec(0u64..500, 2..4),
        faulted_idx in 0usize..4,
        panic_ordinal in 0u64..180,
        chunk in 13usize..53,
        shadow_every in 20u64..120,
        workers in 0usize..3,
    ) {
        let dims = 4;
        let n = 180usize;
        let train = training(130, dims, 17);
        let faulted_idx = faulted_idx % seeds.len();
        let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(workers));
        let ids: Vec<TenantId> = (0..seeds.len())
            .map(|i| TenantId::new(format!("c{i}")).unwrap())
            .collect();
        for (id, seed) in ids.iter().zip(&seeds) {
            fleet.register(id.clone(), tenant_config(*seed, dims)).unwrap();
            fleet.learn(id, &train).unwrap();
        }
        let supervisor = Supervisor::new(
            fleet.clone(),
            SupervisorConfig { shadow_every, max_retries: 3, backoff_base: 1 },
        );
        supervisor.tick();
        let faulted = &ids[faulted_idx];
        fleet.arm_faults(FaultPlan::new().panic_at(faulted.clone(), panic_ordinal));

        let mut delivered: Vec<Vec<Verdict>> = vec![Vec::new(); ids.len()];
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            for (t, (id, seed)) in ids.iter().zip(&seeds).enumerate() {
                let pts = stream(n, dims, *seed);
                match fleet.process_batch(id, &pts[start..end]) {
                    Ok(vs) => delivered[t].extend(vs),
                    Err(e) => {
                        prop_assert_eq!(id, faulted);
                        prop_assert!(matches!(e, SpotError::TenantPoisoned { .. }));
                    }
                }
            }
            // Roll shadows while healthy; once the fault fires, hold off
            // recovery until the drive is over (a producer must re-feed
            // the lost window from the reported position, which this
            // chunked loop does below, not mid-flight).
            if fleet.health(faulted).unwrap().is_healthy() {
                supervisor.tick();
            }
        }
        // Recovery happens on the first post-drive pass (no scripted
        // recovery failures, so no backoff to wait out).
        let pass = supervisor.tick();
        prop_assert_eq!(pass.recovered.len(), 1);

        // Co-tenants: bit-identical to a fault-free run.
        for (t, (id, seed)) in ids.iter().zip(&seeds).enumerate() {
            if id == faulted {
                continue;
            }
            let pts = stream(n, dims, *seed);
            let want = standalone_verdicts(*seed, dims, &train, &pts);
            assert_same_verdicts(&want, &delivered[t], &format!("chaos co-tenant {id}"));
        }

        // The faulted tenant recovered within the budget…
        prop_assert!(fleet.health(faulted).unwrap().is_healthy());
        let report = supervisor.last_recovery(faulted).expect("must have recovered");
        prop_assert_eq!(report.attempts, 1);
        // …and replaying from the shadow position converges bit-for-bit.
        let seed = seeds[faulted_idx];
        let pts = stream(n, dims, seed);
        let want = standalone_verdicts(seed, dims, &train, &pts);
        let from = report.processed_at_shadow as usize;
        let replayed = fleet.process_batch(faulted, &pts[from..]).unwrap();
        assert_same_verdicts(&want[from..], &replayed, "chaos recovered tenant");
        prop_assert_eq!(fleet.stats().quarantined, 0);
    }
}
