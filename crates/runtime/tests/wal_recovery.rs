//! Durable-ingestion acceptance suite: the WAL closes the data-loss
//! window.
//!
//! Pins the durability contract:
//!
//! * **Crash consistency** — a fleet killed at *any* byte of its WAL
//!   (kill-after-append, torn write, failed fsync, mid-rotation) recovers
//!   to a prefix-consistent state: every acknowledged point survives, the
//!   on-disk residue never panics the recovery, and the recovered
//!   tenant's subsequent verdict stream is bit-identical to an uncrashed
//!   detector that processed exactly the surviving prefix.
//! * **Zero-loss self-healing** — with the WAL enabled the supervisor's
//!   revive replays the lost window from the log: `points_lost == 0`,
//!   `replayed` counts the re-derived records.
//! * **Watermark pruning** — durable checkpoints prune sealed segments
//!   behind the recorded watermark; a crash *between* checkpoint save and
//!   prune leaves a stale log prefix that recovery skips, not replays.
//! * **Offline replay** — `spot_stream::WalSource` yields the admitted
//!   points bit-exactly, in admission order.

use proptest::prelude::*;
use spot::{SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{
    CheckpointStore, FaultPlan, FleetConfig, FsyncPolicy, SpotFleet, Supervisor, SupervisorConfig,
    TenantId, WalTuning,
};
use spot_stream::WalSource;
use spot_synopsis::ExecutorHandle;
use spot_types::{DataPoint, DomainBounds, SpotError};
use std::path::{Path, PathBuf};

const DIMS: usize = 3;

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(DIMS))
        .seed(seed)
        .fs_max_dimension(2)
        .build_config()
        .unwrap()
}

fn training(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..DIMS)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tid(name: &str) -> TenantId {
    TenantId::new(name).expect("valid tenant id")
}

/// A serial walled fleet with one learned tenant writing under
/// `dir/wal`, plus its checkpoint store at `dir` — the layout
/// `SpotFleet::recover` expects.
fn walled_fleet(dir: &Path, tuning: WalTuning, train: &[DataPoint]) -> (SpotFleet, TenantId) {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 16,
        },
        Some(0),
    );
    let id = tid("tenant-a");
    fleet.register(id.clone(), tenant_config(3)).unwrap();
    fleet.learn(&id, train).unwrap();
    fleet.enable_wal(dir.join("wal"), tuning).unwrap();
    (fleet, id)
}

/// A reference (non-walled) fleet that learned identically and processed
/// exactly `prefix` — the uncrashed twin recovery must match.
fn reference_fleet(train: &[DataPoint], prefix: &[DataPoint]) -> (SpotFleet, TenantId) {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let id = tid("tenant-a");
    fleet.register(id.clone(), tenant_config(3)).unwrap();
    fleet.learn(&id, train).unwrap();
    if !prefix.is_empty() {
        fleet.process_batch(&id, prefix).unwrap();
    }
    (fleet, id)
}

fn assert_same_verdicts(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: verdict count diverged");
    for (a, b) in want.iter().zip(got) {
        assert!(a.bitwise_eq(b), "{label}: diverged at tick {}", a.tick);
    }
}

/// Recovers from `dir` and proves the state is bit-identical to an
/// uncrashed run over `prefix`: same processed count, and a fresh probe
/// stream produces bitwise-equal verdicts on both.
fn assert_recovers_to_prefix(
    dir: &Path,
    tuning: WalTuning,
    train: &[DataPoint],
    prefix: &[DataPoint],
    label: &str,
) {
    let (recovered, recovery) = SpotFleet::recover_with(
        dir,
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 16,
        },
        tuning,
        ExecutorHandle::serial(),
        4,
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let id = tid("tenant-a");
    assert!(
        recovery.generation.is_some(),
        "{label}: no generation restored"
    );
    assert_eq!(
        recovered.tenant_stats(&id).unwrap().processed,
        prefix.len() as u64,
        "{label}: recovered stream position diverged (replayed {:?})",
        recovery.replayed
    );
    let (reference, _) = reference_fleet(train, prefix);
    let probe = stream(48, 0xBEEF);
    let want = reference.process_batch(&id, &probe).unwrap();
    let got = recovered.process_batch(&id, &probe).unwrap();
    assert_same_verdicts(&want, &got, label);
}

// ---- the headline: crash, recover, continue bit-identically ------------

#[test]
fn crash_recovery_replays_the_tail_bit_identically() {
    let dir = temp_dir("headline");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(300, 1);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();

    // First 200 points are drained and durably checkpointed...
    for p in &pts[..200] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    fleet.checkpoint_durable(&store).unwrap();
    // ...the next 90 are drained but *only* in the WAL, and 10 more sit
    // in the queue (never processed) when the process dies.
    for p in &pts[200..290] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    for p in &pts[290..300] {
        fleet.ingest(&id, p.clone()).unwrap();
    }
    let processed_before = fleet.tenant_stats(&id).unwrap().processed;
    assert_eq!(processed_before, 290);
    drop(fleet); // the "crash": queue contents die with the process

    // Recovery replays checkpoint → crash: the 90 drained-but-not-
    // checkpointed points AND the 10 queued ones — nothing admitted is
    // lost, and the future is bit-identical to a run that never crashed.
    assert_recovers_to_prefix(&dir, tuning, &train, &pts, "headline");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_survives_a_torn_newest_checkpoint() {
    let dir = temp_dir("torn-ckpt");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(160, 2);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();

    for p in &pts[..80] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    fleet.checkpoint_durable(&store).unwrap();
    for p in &pts[80..160] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    let torn = fleet.checkpoint_durable(&store).unwrap();
    drop(fleet);
    // The newest checkpoint is torn mid-write; recovery falls back a
    // generation and replays the *longer* tail to the same end state.
    store.truncate(torn, 40).unwrap();

    let (recovered, recovery) = SpotFleet::recover_with(
        &dir,
        FleetConfig::default(),
        tuning,
        ExecutorHandle::serial(),
        4,
    )
    .unwrap();
    assert_eq!(recovery.generation, Some(torn - 1));
    assert_eq!(recovery.rejected.len(), 1);
    assert_eq!(recovery.total_replayed(), 80);
    assert_eq!(recovered.tenant_stats(&id).unwrap().processed, 160);
    let (reference, _) = reference_fleet(&train, &pts);
    let probe = stream(48, 0xBEEF);
    let want = reference.process_batch(&id, &probe).unwrap();
    let got = recovered.process_batch(&id, &probe).unwrap();
    assert_same_verdicts(&want, &got, "torn-ckpt");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- the kill-anywhere matrix ------------------------------------------

/// How a scripted crash mutilates the log, and how many of the first
/// `kill_seq + 1` admissions must survive it under `EveryRecord` fsync.
#[derive(Debug, Clone, Copy)]
enum Crash {
    /// Record `kill_seq` is durable but unacknowledged: it survives.
    KillAfterAppend,
    /// Only `keep_bytes` of record `kill_seq`'s frame reach the file: the
    /// torn tail is truncated away.
    TornWrite(usize),
    /// The fsync covering record `kill_seq` fails: the frame is lost.
    FailFsync,
}

fn run_crash_case(tag: &str, kill_seq: u64, crash: Crash) {
    let dir = temp_dir(&format!("matrix-{tag}-{kill_seq}"));
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(kill_seq as usize + 8, 3);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();
    fleet.checkpoint_durable(&store).unwrap();

    let plan = match crash {
        Crash::KillAfterAppend => FaultPlan::new().wal_kill_after_append(id.clone(), kill_seq),
        Crash::TornWrite(keep) => FaultPlan::new().wal_torn_write(id.clone(), kill_seq, keep),
        Crash::FailFsync => FaultPlan::new().wal_fail_fsync(id.clone(), kill_seq),
    };
    fleet.arm_faults(plan);

    let mut acknowledged = 0usize;
    for p in &pts {
        match fleet.ingest(&id, p.clone()) {
            Ok(_) => acknowledged += 1,
            Err(SpotError::Io(_)) => break,
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
    assert_eq!(
        acknowledged as u64, kill_seq,
        "crash fired at the wrong seq"
    );
    // Once dead, every further append is refused — no silent data loss.
    assert!(matches!(
        fleet.ingest(&id, pts[0].clone()),
        Err(SpotError::Io(_))
    ));
    drop(fleet);

    let survivors = match crash {
        Crash::KillAfterAppend => kill_seq + 1,
        Crash::TornWrite(_) | Crash::FailFsync => kill_seq,
    };
    assert_recovers_to_prefix(
        &dir,
        tuning,
        &train,
        &pts[..survivors as usize],
        &format!("{tag} at seq {kill_seq}"),
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill the writer at a record/byte chosen by proptest; recovery is
    /// always prefix-consistent, never panics, never loses an
    /// acknowledged point. `keep_bytes` sweeps the torn write across
    /// every byte offset of a frame (a 3-dim frame is 48 bytes).
    #[test]
    fn kill_anywhere_recovers_prefix_consistent(
        kill_seq in 0u64..24,
        keep_bytes in 0usize..48,
        mode in 0u32..3,
    ) {
        match mode {
            0 => run_crash_case("kill", kill_seq, Crash::KillAfterAppend),
            1 => run_crash_case("torn", kill_seq, Crash::TornWrite(keep_bytes)),
            _ => run_crash_case("fsync", kill_seq, Crash::FailFsync),
        }
    }
}

#[test]
fn torn_write_at_every_byte_of_one_frame() {
    // The deterministic complement of the proptest sweep: every byte
    // offset of one frame, exhaustively.
    for keep in (0..48).step_by(7) {
        run_crash_case("tornx", 5, Crash::TornWrite(keep));
    }
}

#[test]
fn crash_mid_rotation_drops_the_torn_residue() {
    // One record per segment: every append past the first rotates, and
    // the crash lands inside the 3rd rotation's header write.
    let dir = temp_dir("rotation");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        segment_bytes: 1,
    };
    let train = training(120, 5);
    let pts = stream(16, 4);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();
    fleet.checkpoint_durable(&store).unwrap();
    fleet.arm_faults(FaultPlan::new().wal_crash_on_rotation(id.clone(), 2));

    let mut acknowledged = 0usize;
    for p in &pts {
        match fleet.ingest(&id, p.clone()) {
            Ok(_) => acknowledged += 1,
            Err(SpotError::Io(_)) => break,
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
    // Rotations happen before appending records 1, 2, 3, …: the crash in
    // rotation ordinal 2 (before record 3) leaves records 0..=2 sealed.
    assert_eq!(acknowledged, 3);
    drop(fleet);
    assert_recovers_to_prefix(&dir, tuning, &train, &pts[..3], "rotation");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- watermark pruning --------------------------------------------------

#[test]
fn durable_checkpoints_prune_sealed_segments() {
    let dir = temp_dir("prune");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryN(4),
        segment_bytes: 1, // one record per segment: growth is visible
    };
    let train = training(120, 5);
    let pts = stream(40, 6);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();
    for p in &pts {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    let before = fleet.wal_segment_count(&id).unwrap().unwrap();
    assert!(
        before >= 40,
        "one record per segment expected, got {before}"
    );
    fleet.checkpoint_durable(&store).unwrap();
    let after = fleet.wal_segment_count(&id).unwrap().unwrap();
    assert!(
        after <= 1 + 1, // the active segment (+1 slack for the rotation edge)
        "pruning left {after} segments behind a full watermark"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_checkpoint_and_prune_is_recoverable() {
    let dir = temp_dir("prune-crash");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        segment_bytes: 1,
    };
    let train = training(120, 5);
    let pts = stream(24, 7);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let store = CheckpointStore::open(&dir, 4).unwrap();
    for p in &pts {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    let segments_before = fleet.wal_segment_count(&id).unwrap().unwrap();
    fleet.arm_faults(FaultPlan::new().crash_before_wal_prune());
    // The checkpoint lands on disk; the process dies before pruning.
    fleet.checkpoint_durable(&store).unwrap();
    assert!(matches!(
        fleet.ingest(&id, pts[0].clone()),
        Err(SpotError::Io(_))
    ));
    drop(fleet);
    // The stale prefix behind the watermark is still on disk…
    let wal_dir = dir.join("wal").join("tenant-a");
    let residue = std::fs::read_dir(&wal_dir).unwrap().count();
    assert!(residue >= segments_before, "segments were pruned anyway");

    // …recovery skips it (nothing to replay), and the *next* durable
    // checkpoint finally prunes.
    let (recovered, recovery) = SpotFleet::recover_with(
        &dir,
        FleetConfig::default(),
        tuning,
        ExecutorHandle::serial(),
        4,
    )
    .unwrap();
    assert_eq!(recovery.total_replayed(), 0);
    assert_eq!(recovered.tenant_stats(&id).unwrap().processed, 24);
    recovered.checkpoint_durable(&store).unwrap();
    assert!(recovered.wal_segment_count(&id).unwrap().unwrap() <= 2);

    let (reference, _) = reference_fleet(&train, &pts);
    let probe = stream(48, 0xBEEF);
    let want = reference.process_batch(&id, &probe).unwrap();
    let got = recovered.process_batch(&id, &probe).unwrap();
    assert_same_verdicts(&want, &got, "prune-crash");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- zero-loss self-healing ---------------------------------------------

#[test]
fn supervised_revive_with_wal_replays_the_lost_window() {
    let dir = temp_dir("revive");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryN(8),
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(200, 8);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    let sup = Supervisor::new(
        fleet.clone(),
        SupervisorConfig {
            shadow_every: 64,
            ..SupervisorConfig::default()
        },
    );
    sup.tick(); // initial shadow at position 0

    // Panic at point 150 of the tenant's stream; by then the shadow has
    // rolled at least once, so a window of processed-but-unshadowed
    // points exists for the WAL to win back.
    fleet.arm_faults(FaultPlan::new().panic_at(id.clone(), 150));
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut poisoned = false;
    for chunk in pts.chunks(16) {
        for p in chunk {
            fleet.ingest(&id, p.clone()).unwrap();
        }
        match fleet.drain_fully(&id) {
            Ok(_) => {
                sup.tick();
            }
            Err(SpotError::TenantPoisoned { .. }) => {
                poisoned = true;
                break;
            }
            Err(e) => panic!("unexpected drain error: {e}"),
        }
    }
    std::panic::set_hook(default_hook);
    assert!(poisoned, "injected panic never fired");
    fleet.disarm_faults();

    let shadow_at = sup.shadow_position(&id).unwrap();
    let pass = sup.tick();
    assert_eq!(pass.recovered.len(), 1, "revive must succeed first try");
    let report = &pass.recovered[0];
    assert_eq!(
        report.points_lost, 0,
        "the WAL must close the loss window (shadow at {shadow_at})"
    );
    assert!(
        report.replayed > 0,
        "a rolled shadow behind the fault means a non-empty replay"
    );
    assert_eq!(
        report.backlog_carried, 0,
        "walled revive replays, not carries"
    );

    // Every admitted point is accounted for, and the future matches an
    // uncrashed run bit-for-bit.
    fleet.drain_fully(&id).unwrap();
    let admitted = fleet.tenant_stats(&id).unwrap().processed as usize;
    let (reference, _) = reference_fleet(&train, &pts[..admitted]);
    let probe = stream(48, 0xBEEF);
    let want = reference.process_batch(&id, &probe).unwrap();
    let got = fleet.process_batch(&id, &probe).unwrap();
    assert_same_verdicts(&want, &got, "revive");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- odds and ends -------------------------------------------------------

#[test]
fn recover_without_a_checkpoint_reports_unclaimed_logs() {
    let dir = temp_dir("unclaimed");
    let tuning = WalTuning::default();
    let train = training(120, 5);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    for p in stream(10, 9) {
        fleet.ingest(&id, p).unwrap();
    }
    drop(fleet); // crash before any durable checkpoint

    let (recovered, recovery) = SpotFleet::recover_with(
        &dir,
        FleetConfig::default(),
        tuning,
        ExecutorHandle::serial(),
        4,
    )
    .unwrap();
    assert!(recovery.generation.is_none());
    assert!(recovered.is_empty());
    assert_eq!(recovery.unclaimed, vec!["tenant-a".to_string()]);
    // The unclaimed log is untouched and still replayable offline.
    let source = WalSource::open(dir.join("wal").join("tenant-a")).unwrap();
    assert_eq!(source.len(), 10);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_source_replays_admitted_points_bit_exactly() {
    let dir = temp_dir("source");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(30, 10);
    let (fleet, id) = walled_fleet(&dir, tuning, &train);
    for p in &pts {
        fleet.ingest(&id, p.clone()).unwrap();
    }
    fleet.drain_fully(&id).unwrap();
    drop(fleet);

    let source = WalSource::open(dir.join("wal").join("tenant-a")).unwrap();
    let records: Vec<_> = source.collect();
    assert_eq!(records.len(), pts.len());
    for (i, (rec, want)) in records.iter().zip(&pts).enumerate() {
        assert_eq!(rec.seq, i as u64, "sequence gap at {i}");
        let got_bits: Vec<u64> = rec.point.values().iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "point {i} not bit-exact");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enable_wal_guards_against_misuse() {
    let dir = temp_dir("misuse");
    let train = training(120, 5);
    let (fleet, id) = walled_fleet(&dir, WalTuning::default(), &train);
    // Double enable is refused.
    assert!(matches!(
        fleet.enable_wal(dir.join("wal2"), WalTuning::default()),
        Err(SpotError::InvalidConfig(_))
    ));
    // A late-registered tenant is covered automatically.
    let late = tid("late-arrival");
    fleet.register(late.clone(), tenant_config(9)).unwrap();
    fleet.learn(&late, &train).unwrap();
    for p in stream(5, 11) {
        fleet.ingest(&late, p).unwrap();
    }
    assert_eq!(fleet.wal_position(&late).unwrap(), Some(5));
    // Eviction removes the tenant's log directory.
    fleet.evict(&late).unwrap();
    assert!(!dir.join("wal").join("late-arrival").exists());
    let _ = id;
    std::fs::remove_dir_all(&dir).unwrap();
}
