//! Crash-safe checkpoint file suite: atomic writes, retention, the
//! corruption matrix (truncation, bit flips, bad version, bad checksum —
//! typed errors only, never a panic), and recovery from the newest valid
//! retained generation.

use spot::{SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{Carrier, CheckpointStore, FleetCheckpoint, FleetConfig, SpotFleet, TenantId};
use spot_types::{DataPoint, DomainBounds, SpotError};

fn tenant_config(seed: u64, dims: usize) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(dims))
        .seed(seed)
        .fs_max_dimension(2)
        .build_config()
        .unwrap()
}

fn training(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..dims)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..dims)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % dims] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

/// A small exercised fleet whose checkpoint has real synopsis content.
fn seeded_fleet(dims: usize, n_tenants: usize) -> SpotFleet {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let train = training(120, dims, 5);
    for t in 0..n_tenants {
        let id = TenantId::new(format!("store-{t}")).unwrap();
        fleet
            .register(id.clone(), tenant_config(t as u64, dims))
            .unwrap();
        fleet.learn(&id, &train).unwrap();
        fleet
            .process_batch(&id, &stream(60, dims, t as u64))
            .unwrap();
    }
    fleet
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn is_typed_snapshot_error(e: &SpotError) -> bool {
    matches!(
        e,
        SpotError::SnapshotCorrupt(_) | SpotError::UnsupportedSnapshotVersion(_)
    )
}

#[test]
fn save_load_roundtrip_is_bit_exact() {
    let dims = 4;
    let dir = temp_dir("roundtrip");
    let fleet = seeded_fleet(dims, 2);
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let cp = fleet.checkpoint();
    let generation = store.save(&cp).unwrap();
    assert_eq!(generation, 1);
    let loaded = store.load(generation).unwrap();
    // Byte-level fixed point survives the file trip (checksum included).
    assert_eq!(cp.to_json(), loaded.to_json());
    // And the restored fleet continues bit-identically.
    let restored = SpotFleet::from_checkpoint(&loaded, FleetConfig::default()).unwrap();
    let id = TenantId::new("store-0").unwrap();
    let probe = stream(40, dims, 99);
    let want: Vec<Verdict> = fleet.process_batch(&id, &probe).unwrap();
    let got = restored.process_batch(&id, &probe).unwrap();
    for (a, b) in want.iter().zip(&got) {
        assert!(a.bitwise_eq(b), "diverged at tick {}", a.tick);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn generations_roll_and_retention_prunes_oldest() {
    let dir = temp_dir("retention");
    let fleet = seeded_fleet(3, 1);
    let store = CheckpointStore::open(&dir, 2).unwrap();
    let cp = fleet.checkpoint();
    for want_gen in 1..=4u64 {
        assert_eq!(store.save(&cp).unwrap(), want_gen);
    }
    // Only the newest two survive.
    assert_eq!(store.generations().unwrap(), vec![3, 4]);
    assert!(matches!(store.load(1), Err(SpotError::Io(_))));
    assert!(store.load(4).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_leaves_no_tmp_file_and_ignores_stray_ones() {
    let dir = temp_dir("atomic");
    let fleet = seeded_fleet(3, 1);
    let store = CheckpointStore::open(&dir, 3).unwrap();
    // A stray tmp file from a simulated crash mid-save.
    std::fs::write(dir.join("fleet-00000007.ckpt.tmp"), b"torn garbage").unwrap();
    store.save(&fleet.checkpoint()).unwrap();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.contains(&"fleet-00000001.ckpt".to_string()),
        "published file missing: {names:?}"
    );
    assert!(
        !names.contains(&"fleet-00000001.ckpt.tmp".to_string()),
        "tmp file leaked: {names:?}"
    );
    // The stray tmp never parses as a generation.
    assert_eq!(store.generations().unwrap(), vec![1]);
    let scan = store.load_latest().unwrap();
    assert_eq!(scan.recovered.unwrap().0, 1);
    assert!(scan.rejected.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The corruption matrix: truncated file, single bit flip, bad version,
/// bad checksum — every damaged form yields a typed error, never a panic,
/// and recovery falls back to the previous intact generation.
#[test]
fn corruption_matrix_yields_typed_errors_and_previous_generation_recovers() {
    let dims = 4;
    let dir = temp_dir("matrix");
    let fleet = seeded_fleet(dims, 2);
    // This matrix tampers with files as JSON text (version digits,
    // checksum digits), so it pins the JSON carrier; the binary carrier's
    // corruption matrix lives in tests/restore_matrix.rs.
    let mut store = CheckpointStore::open(&dir, 8).unwrap();
    store.set_carrier(Carrier::Json);
    let cp = fleet.checkpoint();
    let good = store.save(&cp).unwrap();
    let good_json = store.load(good).unwrap().to_json();

    // -- truncation (torn write without the atomic protocol) -------------
    let torn = store.save(&cp).unwrap();
    store.truncate(torn, good_json.len() / 2).unwrap();
    assert!(
        matches!(store.load(torn), Err(SpotError::SnapshotCorrupt(_))),
        "truncated file must be SnapshotCorrupt"
    );

    // -- single bit flips across the whole file --------------------------
    // Every position is either caught (typed error) or provably harmless
    // (the loaded checkpoint re-renders identically to the original).
    let flipped = store.save(&cp).unwrap();
    let len = good_json.len();
    let mut caught = 0usize;
    for offset in (0..len).step_by(97) {
        store.corrupt(flipped, offset, 0x10).unwrap();
        match store.load(flipped) {
            Err(e) => {
                assert!(is_typed_snapshot_error(&e), "offset {offset}: {e:?}");
                caught += 1;
            }
            Ok(cp_after) => assert_eq!(
                cp_after.to_json(),
                good_json,
                "offset {offset}: silent corruption"
            ),
        }
        // Undo the flip (XOR is involutive) so each offset is tested alone.
        store.corrupt(flipped, offset, 0x10).unwrap();
    }
    assert!(caught > 0, "no flip was ever caught");
    assert_eq!(store.load(flipped).unwrap().to_json(), good_json);

    // -- bad version ------------------------------------------------------
    let bad_version = store.save(&cp).unwrap();
    let path = store.dir().join(format!("fleet-{bad_version:08}.ckpt"));
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen("\"version\":2", "\"version\":9", 1)).unwrap();
    assert!(matches!(
        store.load(bad_version),
        Err(SpotError::UnsupportedSnapshotVersion(9))
    ));

    // -- bad checksum (payload intact, seal wrong) ------------------------
    let bad_checksum = store.save(&cp).unwrap();
    let path = store.dir().join(format!("fleet-{bad_checksum:08}.ckpt"));
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = {
        // Flip one digit of the checksum value itself.
        let at = text.find("\"checksum\":").unwrap() + "\"checksum\":".len();
        let mut bytes = text.into_bytes();
        bytes[at] = if bytes[at] == b'1' { b'2' } else { b'1' };
        String::from_utf8(bytes).unwrap()
    };
    std::fs::write(&path, tampered).unwrap();
    match store.load(bad_checksum) {
        Err(SpotError::SnapshotCorrupt(msg)) => {
            assert!(msg.contains("checksum"), "unexpected reason: {msg}")
        }
        other => panic!("expected checksum rejection, got {other:?}"),
    }

    // -- recovery scan: newest valid wins, damage is reported -------------
    // Newest → oldest: bad_checksum (rejected), bad_version (rejected),
    // flipped (restored — valid), then torn and good behind it.
    let scan = store.load_latest().unwrap();
    let (recovered_gen, recovered_cp) = scan.recovered.expect("an intact generation exists");
    assert_eq!(recovered_gen, flipped);
    assert_eq!(recovered_cp.to_json(), good_json);
    assert_eq!(
        scan.rejected.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
        vec![bad_checksum, bad_version]
    );

    // capture → corrupt → recover-from-previous-generation roundtrip: the
    // recovered checkpoint drives a fleet bit-identically to the source.
    let restored = SpotFleet::from_checkpoint(&recovered_cp, FleetConfig::default()).unwrap();
    let id = TenantId::new("store-1").unwrap();
    let probe = stream(30, dims, 42);
    let want = fleet.process_batch(&id, &probe).unwrap();
    let got = restored.process_batch(&id, &probe).unwrap();
    for (a, b) in want.iter().zip(&got) {
        assert!(
            a.bitwise_eq(b),
            "recovered fleet diverged at tick {}",
            a.tick
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_store_recovers_to_nothing() {
    let dir = temp_dir("empty");
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let scan = store.load_latest().unwrap();
    assert!(scan.recovered.is_none());
    assert!(scan.rejected.is_empty());
    assert_eq!(store.generations().unwrap(), Vec::<u64>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_sweeps_stray_tmp_files() {
    let dir = temp_dir("sweep");
    std::fs::create_dir_all(&dir).unwrap();
    // Two crash leftovers and one innocent bystander.
    std::fs::write(dir.join("fleet-00000003.ckpt.tmp"), b"torn").unwrap();
    std::fs::write(dir.join("fleet-00000009.ckpt.tmp"), b"also torn").unwrap();
    std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
    let store = CheckpointStore::open(&dir, 3).unwrap();
    assert_eq!(store.swept_tmp(), 2);
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        !names.iter().any(|n| n.ends_with(".ckpt.tmp")),
        "tmp files survived the sweep: {names:?}"
    );
    assert!(names.contains(&"notes.txt".to_string()));
    // A clean reopen sweeps nothing.
    assert_eq!(CheckpointStore::open(&dir, 3).unwrap().swept_tmp(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_envelope_without_wal_fields_is_accepted() {
    // Envelopes written before the v2 WAL watermarks must keep loading:
    // same tenants, empty watermark table.
    let fleet = seeded_fleet(3, 1);
    let json = fleet.checkpoint().to_json();
    let legacy = json
        .replacen("\"version\":2", "\"version\":1", 1)
        .replacen("\"wal_checksum\":", "\"ignored\":", 1)
        .replacen(",\"wal\":[]", "", 1);
    assert!(!legacy.contains("\"wal\""));
    let loaded = FleetCheckpoint::from_json(&legacy).unwrap();
    assert_eq!(loaded.tenant_ids(), fleet.tenant_ids());
    assert!(loaded.wal_positions().is_empty());
    // Re-serialization upgrades it to the current version.
    assert!(loaded.to_json().contains("\"version\":2"));
}

#[test]
fn envelope_without_checksum_is_still_accepted() {
    // Envelopes written before the checksum seal existed must keep
    // loading (the field is optional on read, always written on save).
    let fleet = seeded_fleet(3, 1);
    let json = fleet.checkpoint().to_json();
    let at = json.find("\"checksum\":").unwrap();
    let end = at + json[at..].find(",\"tenants\"").unwrap() + 1;
    let legacy = format!("{}{}", &json[..at], &json[end..]);
    assert!(!legacy.contains("checksum"));
    let loaded = FleetCheckpoint::from_json(&legacy).unwrap();
    // Re-serialization re-seals it.
    assert!(loaded.to_json().contains("\"checksum\":"));
}
