//! Cross-version / cross-carrier restore matrix.
//!
//! Every on-disk shape the persistence layer has ever written must keep
//! restoring, and the new shapes must obey the same contracts the JSON
//! carrier pinned:
//!
//! * v1 JSON envelope (no WAL fields), v2 JSON, v3 binary container, and
//!   base+delta chains all load — and all drive a restored fleet
//!   bit-identically to the live one.
//! * Damaged binary containers (truncated, bit-flipped) are rejected with
//!   [`SpotError::SnapshotCorrupt`], never a panic, and recovery falls
//!   back to an older intact generation.
//! * Delta chains rebase after [`SpotFleet`]'s rebase interval and the
//!   retention pruner never cuts a retained delta loose from its anchor.
//! * Crash recovery replays the WAL tail on top of a resolved delta
//!   chain.

use spot::{SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{
    Carrier, CheckpointStore, FleetCheckpoint, FleetConfig, FsyncPolicy, SpotFleet, TenantId,
    WalTuning,
};
use spot_synopsis::ExecutorHandle;
use spot_types::{DataPoint, DomainBounds, SpotError};
use std::path::PathBuf;

const DIMS: usize = 4;

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(DIMS))
        .seed(seed)
        .fs_max_dimension(2)
        .build_config()
        .unwrap()
}

fn training(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..DIMS)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tid(name: &str) -> TenantId {
    TenantId::new(name).expect("valid tenant id")
}

/// A serial fleet with `n` learned, exercised tenants `m-0..m-(n-1)`.
fn seeded_fleet(n_tenants: usize) -> SpotFleet {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let train = training(120, 5);
    for t in 0..n_tenants {
        let id = tid(&format!("m-{t}"));
        fleet.register(id.clone(), tenant_config(t as u64)).unwrap();
        fleet.learn(&id, &train).unwrap();
        fleet.process_batch(&id, &stream(60, t as u64)).unwrap();
    }
    fleet
}

fn assert_same_verdicts(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: verdict count diverged");
    for (a, b) in want.iter().zip(got) {
        assert!(a.bitwise_eq(b), "{label}: diverged at tick {}", a.tick);
    }
}

/// Restores a fleet from `cp` and proves it continues bit-identically to
/// `live` on a fresh probe stream.
fn assert_continues_like(live: &SpotFleet, cp: &FleetCheckpoint, label: &str) {
    let restored = SpotFleet::from_checkpoint(cp, FleetConfig::default()).unwrap();
    let probe = stream(40, 0xABCD);
    for id in live.tenant_ids() {
        let want = live.process_batch(&id, &probe).unwrap();
        let got = restored.process_batch(&id, &probe).unwrap();
        assert_same_verdicts(&want, &got, &format!("{label}/{id}"));
    }
}

// ---- carriers ----------------------------------------------------------

#[test]
fn all_carrier_generations_load_from_one_directory() {
    let dir = temp_dir("carriers");
    let fleet = seeded_fleet(2);
    let cp = fleet.checkpoint();
    let golden = cp.to_json();

    let mut store = CheckpointStore::open(&dir, 8).unwrap();
    assert_eq!(store.carrier(), Carrier::Binary);

    // gen 1 = JSON, gen 2 = binary: a directory written across an
    // upgrade holds both, and both must load.
    store.set_carrier(Carrier::Json);
    let g_json = store.save(&cp).unwrap();
    store.set_carrier(Carrier::Binary);
    let g_bin = store.save(&cp).unwrap();

    // The binary file is the compact carrier.
    let json_len = std::fs::metadata(dir.join(format!("fleet-{g_json:08}.ckpt")))
        .unwrap()
        .len();
    let bin_len = std::fs::metadata(dir.join(format!("fleet-{g_bin:08}.ckpt")))
        .unwrap()
        .len();
    assert!(
        bin_len * 2 < json_len,
        "binary {bin_len} vs json {json_len}"
    );

    for g in [g_json, g_bin] {
        let loaded = store.load(g).unwrap();
        assert_eq!(loaded.to_json(), golden, "generation {g} round trip");
    }
    assert_continues_like(&fleet, &store.load(g_bin).unwrap(), "binary");

    // A v1 JSON envelope (pre-WAL) dropped into the directory still
    // resolves through the same loader.
    let legacy = golden
        .replacen("\"version\":2", "\"version\":1", 1)
        .replacen("\"wal_checksum\":", "\"ignored\":", 1)
        .replacen(",\"wal\":[]", "", 1);
    let v1 = FleetCheckpoint::from_json(&legacy).unwrap();
    assert_eq!(v1.tenant_ids(), fleet.tenant_ids());

    // In-memory byte round trip on the binary carrier is a fixed point.
    let bytes = cp.to_bytes();
    let back = FleetCheckpoint::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_json(), golden);
    assert_eq!(back.to_bytes(), bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn binary_corruption_matrix_yields_typed_errors_and_falls_back() {
    let dir = temp_dir("bin-matrix");
    let fleet = seeded_fleet(1);
    let cp = fleet.checkpoint();
    let store = CheckpointStore::open(&dir, 8).unwrap();
    let good = store.save(&cp).unwrap();
    let golden = store.load(good).unwrap().to_json();

    // Truncations at a spread of prefix lengths.
    let torn = store.save(&cp).unwrap();
    let full_len = std::fs::metadata(dir.join(format!("fleet-{torn:08}.ckpt")))
        .unwrap()
        .len() as usize;
    for cut in [0, 3, 8, 100, full_len / 2, full_len - 1] {
        store.truncate(torn, cut).unwrap();
        assert!(
            matches!(store.load(torn), Err(SpotError::SnapshotCorrupt(_))),
            "cut {cut}: truncated container must be SnapshotCorrupt"
        );
        // Rewrite the generation intact for the next cut.
        let _ = std::fs::remove_file(dir.join(format!("fleet-{torn:08}.ckpt")));
        std::fs::write(dir.join(format!("fleet-{torn:08}.ckpt")), cp.to_bytes()).unwrap();
    }

    // Single bit flips: the container checksum catches every one of them
    // (unlike JSON, where most flips land in float digits and only
    // re-render checks notice).
    for offset in (0..full_len).step_by(61) {
        store.corrupt(torn, offset, 0x20).unwrap();
        assert!(
            matches!(store.load(torn), Err(SpotError::SnapshotCorrupt(_))),
            "flip at {offset} slipped through"
        );
        store.corrupt(torn, offset, 0x20).unwrap();
    }
    assert_eq!(store.load(torn).unwrap().to_json(), golden);

    // With the newest generation damaged, recovery falls back.
    store.truncate(torn, 10).unwrap();
    let scan = store.load_latest().unwrap();
    let (recovered_gen, recovered) = scan.recovered.expect("an intact generation exists");
    assert_eq!(recovered_gen, good);
    assert_eq!(recovered.to_json(), golden);
    assert_eq!(
        scan.rejected.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
        vec![torn]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- delta chains ------------------------------------------------------

#[test]
fn delta_chain_resolves_bit_exactly_and_scales_with_dirty_tenants() {
    let dir = temp_dir("delta");
    let fleet = seeded_fleet(4);
    let store = CheckpointStore::open(&dir, 8).unwrap();

    // Anchor: a full durable checkpoint of all four tenants.
    let g1 = fleet.checkpoint_durable(&store).unwrap();
    assert!(!store.is_delta(g1).unwrap());
    let full_len = std::fs::metadata(dir.join(format!("fleet-{g1:08}.ckpt")))
        .unwrap()
        .len();

    // Only tenant m-0 moves; the delta must carry the other three as
    // "unchanged" markers, so its cost scales with what was dirtied.
    let active = tid("m-0");
    fleet.process_batch(&active, &stream(50, 77)).unwrap();
    let g2 = fleet.checkpoint_durable_delta(&store).unwrap();
    assert_eq!(g2, g1 + 1);
    assert!(store.is_delta(g2).unwrap());
    let delta_len = std::fs::metadata(dir.join(format!("fleet-{g2:08}.dck")))
        .unwrap()
        .len();
    assert!(
        delta_len * 3 < full_len,
        "delta {delta_len} bytes does not scale vs full {full_len}"
    );

    // Chain resolution materializes exactly the live state.
    let resolved = store.load(g2).unwrap();
    assert_eq!(resolved.to_json(), fleet.checkpoint().to_json());
    assert_continues_like(&fleet, &resolved, "chain-1");

    // A second link (the probe above touched every tenant, so this one
    // carries them all — chain resolution must still be exact).
    fleet.process_batch(&active, &stream(20, 78)).unwrap();
    fleet.process_batch(&tid("m-1"), &stream(20, 79)).unwrap();
    let g3 = fleet.checkpoint_durable_delta(&store).unwrap();
    assert!(store.is_delta(g3).unwrap());
    let resolved = store.load(g3).unwrap();
    assert_eq!(resolved.to_json(), fleet.checkpoint().to_json());
    assert_continues_like(&fleet, &resolved, "chain-2");

    // load_latest resolves the chain transparently.
    let scan = store.load_latest().unwrap();
    assert_eq!(scan.recovered.unwrap().0, g3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delta_handles_added_and_removed_tenants() {
    let dir = temp_dir("delta-membership");
    let fleet = seeded_fleet(3);
    let store = CheckpointStore::open(&dir, 8).unwrap();
    fleet.checkpoint_durable(&store).unwrap();

    // m-2 leaves, m-new arrives (a Full entry in the delta), m-0 moves.
    fleet.evict(&tid("m-2")).unwrap();
    let newcomer = tid("m-new");
    fleet.register(newcomer.clone(), tenant_config(9)).unwrap();
    fleet.learn(&newcomer, &training(120, 5)).unwrap();
    fleet.process_batch(&newcomer, &stream(30, 9)).unwrap();
    fleet.process_batch(&tid("m-0"), &stream(30, 10)).unwrap();

    let g = fleet.checkpoint_durable_delta(&store).unwrap();
    assert!(store.is_delta(g).unwrap());
    let resolved = store.load(g).unwrap();
    assert_eq!(resolved.to_json(), fleet.checkpoint().to_json());
    let ids = resolved.tenant_ids();
    assert!(ids.contains(&newcomer));
    assert!(!ids.contains(&tid("m-2")));
    assert_continues_like(&fleet, &resolved, "membership");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chains_rebase_periodically_and_pruning_keeps_anchors() {
    let dir = temp_dir("rebase");
    let fleet = seeded_fleet(2);
    // Tight retention: pruning would strand deltas if it ignored chains.
    let store = CheckpointStore::open(&dir, 2).unwrap();
    fleet.checkpoint_durable(&store).unwrap();

    let active = tid("m-0");
    let mut full_seen_past_anchor = false;
    for round in 0..12u64 {
        fleet.process_batch(&active, &stream(10, round)).unwrap();
        let g = fleet.checkpoint_durable_delta(&store).unwrap();
        if !store.is_delta(g).unwrap() && g > 1 {
            full_seen_past_anchor = true;
        }
        // Whatever retention just pruned, the newest generation must
        // still resolve — its chain anchor is retained by construction.
        let resolved = store.load(g).unwrap();
        assert_eq!(
            resolved.to_json(),
            fleet.checkpoint().to_json(),
            "round {round}: resolved chain diverged"
        );
        // Every retained delta's anchor survives pruning: the oldest
        // retained generation is always a full checkpoint.
        let gens = store.generations().unwrap();
        assert!(
            !store.is_delta(gens[0]).unwrap(),
            "round {round}: window starts mid-chain: {gens:?}"
        );
    }
    assert!(
        full_seen_past_anchor,
        "twelve delta checkpoints never rebased"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_replays_wal_tail_on_top_of_a_delta_chain() {
    let dir = temp_dir("delta-recover");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryRecord,
        ..WalTuning::default()
    };
    let train = training(120, 5);
    let pts = stream(240, 1);

    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 16,
        },
        Some(0),
    );
    let id = tid("tenant-a");
    fleet.register(id.clone(), tenant_config(3)).unwrap();
    fleet.learn(&id, &train).unwrap();
    fleet.enable_wal(dir.join("wal"), tuning).unwrap();
    let store = CheckpointStore::open(&dir, 4).unwrap();

    // Full checkpoint at 100, delta at 180, crash at 220 (the last 40
    // points live only in the WAL).
    for p in &pts[..100] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    fleet.checkpoint_durable(&store).unwrap();
    for p in &pts[100..180] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    let g = fleet.checkpoint_durable_delta(&store).unwrap();
    assert!(store.is_delta(g).unwrap());
    for p in &pts[180..220] {
        fleet.ingest(&id, p.clone()).unwrap();
        fleet.drain_fully(&id).unwrap();
    }
    drop(fleet); // crash

    let (recovered, recovery) = SpotFleet::recover_with(
        &dir,
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 16,
        },
        tuning,
        ExecutorHandle::serial(),
        4,
    )
    .unwrap();
    assert_eq!(recovery.generation, Some(g));
    assert_eq!(recovered.tenant_stats(&id).unwrap().processed, 220);

    // The uncrashed twin.
    let reference = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    reference.register(id.clone(), tenant_config(3)).unwrap();
    reference.learn(&id, &train).unwrap();
    reference.process_batch(&id, &pts[..220]).unwrap();

    let probe = stream(48, 0xBEEF);
    let want = reference.process_batch(&id, &probe).unwrap();
    let got = recovered.process_batch(&id, &probe).unwrap();
    assert_same_verdicts(&want, &got, "delta-recover");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gorilla_columns_survive_the_container_corruption_matrix() {
    // Decayed-count columns of a warm synopsis are exactly the
    // slow-moving float bit patterns the GORILLA column mode targets.
    // Build a container around such a column and run it through the same
    // truncation / bit-flip matrix the fleet checkpoints get: exact
    // round-trip when intact, a typed error for every damaged variant.
    use serde::Value;
    use spot_types::persist::binary;

    let col: Vec<u64> = (0..300)
        .map(|i| (250.0 + (i % 17) as f64 * 0.5).to_bits())
        .collect();
    let tree = Value::Object(vec![("d".to_string(), Value::U64Col(col.clone()))]);
    let frame = binary::encode_container(&tree);
    // The XOR-prev lanes must actually engage (clearly under the 8-byte
    // RAW rate) and round-trip bit-exactly through the container.
    assert!(
        frame.len() < col.len() * 8,
        "gorilla container took {} bytes for {} raw column bytes",
        frame.len(),
        col.len() * 8
    );
    assert_eq!(binary::read_container(&frame).unwrap(), tree);

    for cut in [0, 3, 8, frame.len() / 3, frame.len() / 2, frame.len() - 1] {
        assert!(
            binary::read_container(&frame[..cut]).is_err(),
            "cut {cut}: truncated gorilla container must be rejected"
        );
    }
    for offset in (0..frame.len()).step_by(5) {
        let mut bad = frame.clone();
        bad[offset] ^= 0x08;
        assert!(
            binary::read_container(&bad).is_err(),
            "flip at {offset} slipped through a gorilla container"
        );
    }
}
