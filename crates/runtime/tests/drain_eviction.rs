//! Drain/eviction races: `drain_fully` against a producer that never
//! stops, eviction under a producer blocked in `ingest`, and `pump`
//! sweeping while tenants vanish mid-pass.

use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{FleetConfig, SpotFleet};
use spot_types::{DataPoint, DomainBounds, SpotError, TenantId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIMS: usize = 3;

fn tid(name: &str) -> TenantId {
    TenantId::new(name).unwrap()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(DIMS))
        .seed(seed)
        .build_config()
        .unwrap()
}

fn training(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..DIMS)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn point(i: u64) -> DataPoint {
    DataPoint::new(
        (0..DIMS)
            .map(|d| 0.2 + ((i.wrapping_mul(d as u64 + 3) % 23) as f64 / 23.0) * 0.5)
            .collect(),
    )
}

/// The old drain-until-empty contract livelocked when a producer kept the
/// queue full. `drain_fully` now snapshots the queued count once: it must
/// return in bounded work even though the producer never stops pushing.
#[test]
fn drain_fully_terminates_against_racing_producer() {
    const CAPACITY: usize = 64;
    const MICRO: usize = 8;
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: CAPACITY,
            micro_batch: MICRO,
        },
        Some(0),
    );
    let id = tid("racer");
    fleet.register(id.clone(), tenant_config(7)).unwrap();
    fleet.learn(&id, &training(64, 7)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let fleet = fleet.clone();
        let id = id.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                fleet.ingest(&id, point(i)).unwrap();
                i += 1;
            }
        })
    };

    // Wait until the producer has the queue pinned at capacity.
    let deadline = Instant::now() + Duration::from_secs(5);
    while fleet.queue_len(&id).unwrap() < CAPACITY {
        assert!(Instant::now() < deadline, "producer never filled the queue");
        std::thread::yield_now();
    }

    // One call, against a producer that refills every slot the drain
    // frees. Bounded: at most the snapshot plus one micro-batch of
    // overshoot — never "until the queue is empty".
    let drained = fleet.drain_fully(&id).unwrap();
    assert!(
        drained.len() <= CAPACITY + MICRO,
        "drain_fully drained {} points — it chased the producer instead of \
         honoring its snapshot",
        drained.len()
    );
    assert!(!drained.is_empty(), "a full queue must yield verdicts");

    // Unblock and retire the producer (it may be parked in a full send;
    // keep draining until it observes the stop flag).
    stop.store(true, Ordering::Relaxed);
    while !producer.is_finished() {
        let _ = fleet.drain(&id);
        std::thread::yield_now();
    }
    producer.join().unwrap();
}

/// Evicting a tenant must fail a producer blocked inside `ingest` on the
/// full queue with `UnknownTenant` — not strand it forever.
#[test]
fn evict_unblocks_producer_stuck_in_ingest() {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 4,
            micro_batch: 4,
        },
        Some(0),
    );
    let id = tid("doomed");
    fleet.register(id.clone(), tenant_config(11)).unwrap();
    fleet.learn(&id, &training(64, 11)).unwrap();

    let producer = {
        let fleet = fleet.clone();
        let id = id.clone();
        std::thread::spawn(move || {
            // Points 0..4 fill the queue; point 4 blocks (Block policy,
            // nothing draining) until the eviction cuts the channel.
            for i in 0..8 {
                fleet.ingest(&id, point(i))?;
            }
            Ok(())
        })
    };

    // Wait for the producer to be wedged: queue full, thread alive.
    let deadline = Instant::now() + Duration::from_secs(5);
    while fleet.queue_len(&id).unwrap() < 4 {
        assert!(Instant::now() < deadline, "producer never filled the queue");
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !producer.is_finished(),
        "producer should be blocked in ingest"
    );

    fleet.evict(&id).unwrap();
    let outcome = producer.join().unwrap();
    match outcome {
        Err(SpotError::UnknownTenant(name)) => assert_eq!(name, "doomed"),
        other => panic!("blocked producer must unblock with UnknownTenant, got {other:?}"),
    }
}

/// `pump` lists tenants, then drains each: a tenant evicted between the
/// listing and its drain must be skipped — never surfaced as an error,
/// and never at the expense of co-tenants. The window is a race, so the
/// test runs it many times and asserts the invariant holds on every
/// interleaving the scheduler produces.
#[test]
fn pump_skips_tenants_evicted_mid_pass() {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 4,
        },
        Some(0),
    );
    let stable = tid("stable");
    fleet.register(stable.clone(), tenant_config(3)).unwrap();
    fleet.learn(&stable, &training(64, 3)).unwrap();

    for round in 0..50u64 {
        let victim = tid("victim");
        fleet
            .register(victim.clone(), tenant_config(round))
            .unwrap();
        fleet.learn(&victim, &training(64, round)).unwrap();
        for i in 0..8 {
            fleet.ingest(&victim, point(round * 100 + i)).unwrap();
            fleet.ingest(&stable, point(round * 100 + i)).unwrap();
        }

        let evictor = {
            let fleet = fleet.clone();
            let victim = victim.clone();
            std::thread::spawn(move || {
                // Vary the eviction's landing spot inside the pass.
                for _ in 0..(round % 7) {
                    std::thread::yield_now();
                }
                fleet.evict(&victim).unwrap();
            })
        };

        // Sweep until the stable tenant's backlog is gone. Every entry the
        // pump reports must be healthy: an eviction mid-pass is a skip,
        // not an UnknownTenant error.
        let deadline = Instant::now() + Duration::from_secs(5);
        while fleet.queue_len(&stable).unwrap() > 0 {
            assert!(Instant::now() < deadline, "round {round}: pump stalled");
            for (id, result) in fleet.pump() {
                let verdicts =
                    result.unwrap_or_else(|e| panic!("round {round}: pump surfaced {e} for {id}"));
                assert!(!verdicts.is_empty(), "pump must omit empty drains");
            }
        }
        evictor.join().unwrap();
        assert!(matches!(
            fleet.drain(&victim),
            Err(SpotError::UnknownTenant(_))
        ));
    }

    // The stable co-tenant was drained in full across all rounds.
    assert_eq!(fleet.tenant_stats(&stable).unwrap().processed, 50 * 8);
}
