//! Fleet-runtime acceptance suite.
//!
//! Pins the contract of `SpotFleet`:
//!
//! * **Tenant determinism** — for each tenant, verdicts + stats +
//!   footprint through the fleet (serial, pool(1/2/4), and with
//!   concurrent co-tenant ingest) are bit-identical to a standalone
//!   `Spot` with the same configuration and input.
//! * **One pool** — an N-tenant fleet spawns exactly one `WorkerPool`,
//!   shared by every tenant (asserted via the executor service's spawn
//!   counter and handle identity).
//! * **Off-lock monitoring** — `SpotFleet::stats()`/`footprint()` complete
//!   while a tenant's detector lock is held.
//! * **Durability** — `FleetCheckpoint` round-trips bit-exactly per
//!   tenant through JSON, including restore into a fleet with a different
//!   worker count; unknown tenants/versions are typed errors.

use proptest::prelude::*;
use spot::{EvolutionConfig, Spot, SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{FleetCheckpoint, FleetConfig, SpotFleet, TenantId};
use spot_types::{DataPoint, DomainBounds, SpotError};

fn tenant_config(seed: u64, dims: usize) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(dims))
        .seed(seed)
        .fs_max_dimension(2)
        .evolution(EvolutionConfig {
            period: 70,
            ..Default::default()
        })
        .pruning(55, 1e-4)
        .build_config()
        .unwrap()
}

fn training(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..dims)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Stream with occasional spikes so outliers, OS growth and drift signals
/// actually occur.
fn stream(n: usize, dims: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..dims)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % dims] = if (i / 11) % 2 == 0 { 0.97 } else { 0.02 };
            }
            DataPoint::new(v)
        })
        .collect()
}

fn assert_same_verdicts(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: length");
    for (a, b) in want.iter().zip(got) {
        assert!(a.bitwise_eq(b), "{label}: tick {}: {a:?} vs {b:?}", a.tick);
    }
}

/// Standalone reference: the exact verdict/stat/footprint sequence a
/// tenant must reproduce through the fleet.
fn standalone_reference(seed: u64, dims: usize, train: &[DataPoint], pts: &[DataPoint]) -> Spot {
    let mut spot = Spot::new(tenant_config(seed, dims)).unwrap();
    spot.learn(train).unwrap();
    let _: Vec<Verdict> = pts.iter().map(|p| spot.process(p).unwrap()).collect();
    spot
}

fn standalone_verdicts(
    seed: u64,
    dims: usize,
    train: &[DataPoint],
    pts: &[DataPoint],
) -> (Vec<Verdict>, Spot) {
    let mut spot = Spot::new(tenant_config(seed, dims)).unwrap();
    spot.learn(train).unwrap();
    let verdicts = pts.iter().map(|p| spot.process(p).unwrap()).collect();
    (verdicts, spot)
}

#[test]
fn n_tenant_fleet_spawns_exactly_one_pool() {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(2));
    let dims = 4;
    let train = training(150, dims, 1);
    for t in 0..16u64 {
        let id = TenantId::new(format!("tenant-{t:02}")).unwrap();
        fleet.register(id.clone(), tenant_config(t, dims)).unwrap();
        fleet.learn(&id, &train).unwrap();
    }
    assert_eq!(fleet.len(), 16);
    // Drive every tenant through the batch path so the pool engages.
    let pts = stream(120, dims, 9);
    for id in fleet.tenant_ids() {
        fleet.process_batch(&id, &pts).unwrap();
    }
    assert_eq!(
        fleet.executor().pools_spawned(),
        1,
        "16 tenants must share one worker pool"
    );
    // Every tenant's detector holds the same executor service.
    let fleet_exec_id = fleet.executor().id();
    for id in fleet.tenant_ids() {
        let tenant_exec_id = fleet.with_tenant(&id, |s| s.executor().id()).unwrap();
        assert_eq!(tenant_exec_id, fleet_exec_id, "tenant {id}");
    }
}

#[test]
fn tenant_verdicts_match_standalone_across_worker_counts() {
    let dims = 4;
    let train = training(200, dims, 3);
    let pts = stream(260, dims, 5);
    let (want, reference) = standalone_verdicts(17, dims, &train, &pts);

    for workers in [Some(0), Some(1), Some(2), Some(4)] {
        let fleet = SpotFleet::with_workers(FleetConfig::default(), workers);
        let id = TenantId::new("t").unwrap();
        fleet.register(id.clone(), tenant_config(17, dims)).unwrap();
        fleet.learn(&id, &train).unwrap();
        let mut got = Vec::new();
        for chunk in pts.chunks(53) {
            got.extend(fleet.process_batch(&id, chunk).unwrap());
        }
        assert_same_verdicts(&want, &got, &format!("workers={workers:?}"));
        assert_eq!(fleet.tenant_stats(&id).unwrap(), *reference.stats());
        assert_eq!(
            fleet.tenant_footprint(&id).unwrap(),
            reference.footprint(),
            "workers={workers:?}"
        );
    }
}

#[test]
fn queued_ingestion_matches_standalone() {
    let dims = 4;
    let train = training(180, dims, 2);
    let pts = stream(300, dims, 8);
    let (want, _) = standalone_verdicts(23, dims, &train, &pts);

    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 64,
            micro_batch: 48,
        },
        Some(1),
    );
    let id = TenantId::new("queued").unwrap();
    fleet.register(id.clone(), tenant_config(23, dims)).unwrap();
    fleet.learn(&id, &train).unwrap();

    // Producer enqueues (blocking on backpressure), a consumer thread
    // drains micro-batches; arrival order must be preserved end to end.
    let got: Vec<Verdict> = std::thread::scope(|scope| {
        let producer_fleet = fleet.clone();
        let producer_id = id.clone();
        let producer_pts = &pts;
        let producer = scope.spawn(move || {
            for p in producer_pts {
                producer_fleet.ingest(&producer_id, p.clone()).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < pts.len() {
            let batch = fleet.drain(&id).unwrap();
            if batch.is_empty() {
                std::thread::yield_now();
            } else {
                assert!(batch.len() <= 48, "drain respects the micro-batch cap");
                got.extend(batch);
            }
        }
        producer.join().unwrap();
        got
    });
    assert_same_verdicts(&want, &got, "queued ingestion");
    assert_eq!(fleet.queue_len(&id).unwrap(), 0);
    assert_eq!(fleet.stats().queued, 0);
}

#[test]
fn bounded_queue_enforces_backpressure() {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 8,
            micro_batch: 4,
        },
        Some(0),
    );
    let id = TenantId::new("slow").unwrap();
    fleet.register(id.clone(), tenant_config(1, 3)).unwrap();
    fleet.learn(&id, &training(120, 3, 1)).unwrap();

    // Fill to capacity without a consumer: the queue accepts exactly
    // `queue_capacity` points, then reports Full.
    let p = DataPoint::new(vec![0.4, 0.4, 0.4]);
    for i in 0..8 {
        assert!(fleet.try_ingest(&id, p.clone()).unwrap(), "slot {i}");
    }
    assert!(
        !fleet.try_ingest(&id, p.clone()).unwrap(),
        "9th must be Full"
    );
    assert_eq!(fleet.queue_len(&id).unwrap(), 8);
    // Draining frees capacity; occupancy never exceeds the bound.
    let verdicts = fleet.drain(&id).unwrap();
    assert_eq!(verdicts.len(), 4, "one micro-batch");
    assert_eq!(fleet.queue_len(&id).unwrap(), 4);
    assert!(fleet.try_ingest(&id, p.clone()).unwrap());
    let rest = fleet.drain_fully(&id).unwrap();
    assert_eq!(rest.len(), 5);
    assert_eq!(fleet.queue_len(&id).unwrap(), 0);
}

#[test]
fn concurrent_drains_of_one_tenant_preserve_arrival_order() {
    // Two drainer threads race on the same tenant. The per-tenant drain
    // guard is held through processing, so micro-batches must commit in
    // pop order — the union of both drainers' verdicts, ordered by tick,
    // must equal the standalone reference exactly.
    let dims = 4;
    let train = training(160, dims, 5);
    let pts = stream(400, dims, 6);
    let (want, _) = standalone_verdicts(29, dims, &train, &pts);

    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 128,
            micro_batch: 32,
        },
        Some(1),
    );
    let id = TenantId::new("raced").unwrap();
    fleet.register(id.clone(), tenant_config(29, dims)).unwrap();
    fleet.learn(&id, &train).unwrap();

    let mut got: Vec<Verdict> = std::thread::scope(|scope| {
        let producer_fleet = fleet.clone();
        let producer_id = id.clone();
        let producer_pts = &pts;
        scope.spawn(move || {
            for p in producer_pts {
                producer_fleet.ingest(&producer_id, p.clone()).unwrap();
            }
        });
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let fleet = fleet.clone();
                let id = id.clone();
                let total = pts.len();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    // Drain until the whole stream is accounted for; the
                    // co-drainer may own the rest.
                    while fleet.tenant_stats(&id).unwrap().processed < total as u64 {
                        let batch = fleet.drain(&id).unwrap();
                        if batch.is_empty() {
                            std::thread::yield_now();
                        } else {
                            mine.extend(batch);
                        }
                    }
                    mine
                })
            })
            .collect();
        drainers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    got.sort_by_key(|v| v.tick);
    assert_same_verdicts(&want, &got, "raced drains");
}

#[test]
fn evict_unblocks_a_producer_stuck_on_a_full_queue() {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 4,
            micro_batch: 4,
        },
        Some(0),
    );
    let id = TenantId::new("full").unwrap();
    fleet.register(id.clone(), tenant_config(3, 3)).unwrap();
    let p = DataPoint::new(vec![0.3, 0.3, 0.3]);
    for _ in 0..4 {
        assert!(fleet.try_ingest(&id, p.clone()).unwrap());
    }
    std::thread::scope(|scope| {
        let blocked_fleet = fleet.clone();
        let blocked_id = id.clone();
        let point = p.clone();
        let producer = scope.spawn(move || blocked_fleet.ingest(&blocked_id, point));
        // Give the producer time to block on the full queue, then evict:
        // the dropped receiver must fail its pending send. Without the
        // disconnect this join would deadlock and the test would hang.
        std::thread::sleep(std::time::Duration::from_millis(50));
        fleet.evict(&id).unwrap();
        assert_eq!(
            producer.join().unwrap().unwrap_err(),
            SpotError::UnknownTenant("full".to_string())
        );
    });
    // Draining an evicted-but-still-held entry is a no-op, not a panic.
    assert!(!fleet.contains(&id));
}

#[test]
fn concurrent_co_tenants_do_not_perturb_each_other() {
    // Every tenant ingests its own stream from its own thread, all
    // through one pooled fleet; each must match its standalone reference
    // bit-for-bit.
    let dims = 4;
    let tenants: Vec<(TenantId, u64)> = (0..4u64)
        .map(|t| (TenantId::new(format!("t{t}")).unwrap(), 31 + t))
        .collect();
    let train = training(160, dims, 4);

    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(2));
    for (id, seed) in &tenants {
        fleet
            .register(id.clone(), tenant_config(*seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
    }

    std::thread::scope(|scope| {
        for (id, seed) in &tenants {
            let fleet = fleet.clone();
            let train = &train;
            scope.spawn(move || {
                let pts = stream(240, dims, *seed);
                let mut got = Vec::new();
                for chunk in pts.chunks(37) {
                    got.extend(fleet.process_batch(id, chunk).unwrap());
                }
                let (want, reference) = standalone_verdicts(*seed, dims, train, &pts);
                assert_same_verdicts(&want, &got, &format!("tenant {id}"));
                assert_eq!(fleet.tenant_stats(id).unwrap(), *reference.stats());
                assert_eq!(fleet.tenant_footprint(id).unwrap(), reference.footprint());
            });
        }
    });
    // Learning replays do not count as detection-stage `processed`.
    assert_eq!(fleet.stats().processed, 4 * 240);
}

#[test]
fn fleet_stats_never_take_a_detector_lock() {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let a = TenantId::new("a").unwrap();
    let b = TenantId::new("b").unwrap();
    fleet.register(a.clone(), tenant_config(1, 3)).unwrap();
    fleet.register(b.clone(), tenant_config(2, 3)).unwrap();
    fleet.learn(&a, &training(120, 3, 1)).unwrap();
    for p in stream(40, 3, 2) {
        fleet.process(&a, &p).unwrap();
    }
    // Hold tenant a's detector lock; stats()/footprint() must still
    // complete (they read seqlocks and atomics only — if they touched the
    // lock this would deadlock and the test would hang).
    let (stats, footprint) = fleet
        .with_tenant(&a, |_locked| (fleet.stats(), fleet.footprint()))
        .unwrap();
    assert_eq!(stats.tenants, 2);
    assert_eq!(stats.processed, 40);
    assert_eq!(footprint.tenants, 2);
    assert!(footprint.base_cells > 0);
}

#[test]
fn registry_errors_are_typed() {
    let fleet = SpotFleet::new(FleetConfig::default());
    let id = TenantId::new("dup").unwrap();
    fleet.register(id.clone(), tenant_config(1, 3)).unwrap();
    assert_eq!(
        fleet.register(id.clone(), tenant_config(1, 3)).unwrap_err(),
        SpotError::DuplicateTenant("dup".to_string())
    );
    let ghost = TenantId::new("ghost").unwrap();
    assert_eq!(
        fleet
            .process(&ghost, &DataPoint::new(vec![0.5; 3]))
            .unwrap_err(),
        SpotError::UnknownTenant("ghost".to_string())
    );
    assert_eq!(
        fleet.evict(&ghost).unwrap_err(),
        SpotError::UnknownTenant("ghost".to_string())
    );
    assert!(fleet.evict(&id).is_ok());
    assert!(fleet.is_empty());
}

#[test]
fn fleet_checkpoint_roundtrips_bit_exactly_per_tenant() {
    let dims = 4;
    let train = training(170, dims, 6);
    let tenants: Vec<(TenantId, u64)> = (0..3u64)
        .map(|t| (TenantId::new(format!("cp{t}")).unwrap(), 41 + t))
        .collect();
    let head: Vec<Vec<DataPoint>> = tenants
        .iter()
        .map(|(_, seed)| stream(150, dims, *seed))
        .collect();
    let tail: Vec<Vec<DataPoint>> = tenants
        .iter()
        .map(|(_, seed)| stream(130, dims, seed ^ 0xF00))
        .collect();

    // Capture a pooled fleet mid-stream…
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(2));
    for ((id, seed), pts) in tenants.iter().zip(&head) {
        fleet
            .register(id.clone(), tenant_config(*seed, dims))
            .unwrap();
        fleet.learn(id, &train).unwrap();
        fleet.process_batch(id, pts).unwrap();
    }
    let json = fleet.checkpoint().to_json();

    // …restore through JSON into a fleet with a *different* worker count,
    // continue each tenant, and compare against an uninterrupted
    // standalone detector.
    let restored_cp = FleetCheckpoint::from_json(&json).unwrap();
    assert_eq!(restored_cp.len(), 3);
    let restored = SpotFleet::from_checkpoint_with(
        &restored_cp,
        FleetConfig::default(),
        spot_synopsis::ExecutorHandle::with_workers(1),
    )
    .unwrap();
    for (i, (id, seed)) in tenants.iter().enumerate() {
        let mut got = Vec::new();
        for chunk in tail[i].chunks(41) {
            got.extend(restored.process_batch(id, chunk).unwrap());
        }
        let mut uninterrupted = Spot::new(tenant_config(*seed, dims)).unwrap();
        uninterrupted.learn(&train).unwrap();
        for p in &head[i] {
            uninterrupted.process(p).unwrap();
        }
        let want: Vec<Verdict> = tail[i]
            .iter()
            .map(|p| uninterrupted.process(p).unwrap())
            .collect();
        assert_same_verdicts(&want, &got, &format!("restored tenant {id}"));
        assert_eq!(restored.tenant_stats(id).unwrap(), *uninterrupted.stats());
        assert_eq!(
            restored.tenant_footprint(id).unwrap(),
            uninterrupted.footprint()
        );
    }

    // Capture → restore → capture is a fixed point (on a fresh restore;
    // `restored` has advanced past the capture point above).
    let refreshed = SpotFleet::from_checkpoint(
        &FleetCheckpoint::from_json(&json).unwrap(),
        FleetConfig::default(),
    )
    .unwrap();
    assert_eq!(refreshed.checkpoint().to_json(), json);
}

#[test]
fn single_tenant_restore_replaces_in_place() {
    let dims = 3;
    let train = training(140, dims, 2);
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let id = TenantId::new("solo").unwrap();
    fleet.register(id.clone(), tenant_config(7, dims)).unwrap();
    fleet.learn(&id, &train).unwrap();
    let pts = stream(120, dims, 3);
    fleet.process_batch(&id, &pts[..60]).unwrap();
    let cp = fleet.checkpoint();

    // Mutate past the capture point, then roll the tenant back.
    fleet.process_batch(&id, &pts[60..]).unwrap();
    fleet.restore_tenant(&cp, &id).unwrap();
    let reference = standalone_reference(7, dims, &train, &pts[..60]);
    assert_eq!(fleet.tenant_stats(&id).unwrap(), *reference.stats());

    // Restoring an id the checkpoint does not hold is a typed error.
    let ghost = TenantId::new("ghost").unwrap();
    assert_eq!(
        fleet.restore_tenant(&cp, &ghost).unwrap_err(),
        SpotError::UnknownTenant("ghost".to_string())
    );
}

#[test]
fn checkpoint_versioning_errors_are_typed() {
    assert!(matches!(
        FleetCheckpoint::from_json("not json").unwrap_err(),
        SpotError::SnapshotCorrupt(_)
    ));
    assert!(matches!(
        FleetCheckpoint::from_json(r#"{"tenants":[]}"#).unwrap_err(),
        SpotError::SnapshotCorrupt(_)
    ));
    assert_eq!(
        FleetCheckpoint::from_json(r#"{"version":9,"tenants":[]}"#).unwrap_err(),
        SpotError::UnsupportedSnapshotVersion(9)
    );
    // A valid envelope with a broken tenant payload is corrupt, not a panic.
    assert!(matches!(
        FleetCheckpoint::from_json(r#"{"version":1,"tenants":[{"id":"x"}]}"#).unwrap_err(),
        SpotError::SnapshotCorrupt(_)
    ));
    // Duplicate ids in the payload are rejected.
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let id = TenantId::new("d").unwrap();
    fleet.register(id.clone(), tenant_config(1, 3)).unwrap();
    fleet.learn(&id, &training(100, 3, 1)).unwrap();
    let json = fleet.checkpoint().to_json();
    let entry = json
        .split_once("\"tenants\":[")
        .unwrap()
        .1
        .strip_suffix("]}")
        .unwrap();
    let doubled = format!("{{\"version\":1,\"tenants\":[{entry},{entry}]}}");
    assert!(matches!(
        FleetCheckpoint::from_json(&doubled).unwrap_err(),
        SpotError::SnapshotCorrupt(_)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance bar: any tenant mix, any worker count, concurrent
    /// co-tenant ingest — every tenant is bit-identical to its standalone
    /// reference, and the whole fleet shares at most one pool.
    #[test]
    fn fleet_tenants_are_bit_identical_to_standalone(
        seeds in proptest::collection::vec(0u64..500, 2..5),
        workers in 0usize..5,
        n in 90usize..220,
        chunk in 17usize..71,
    ) {
        let dims = 4;
        let train = training(150, dims, 13);
        let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(workers));
        let ids: Vec<TenantId> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| TenantId::new(format!("p{i}")).unwrap())
            .collect();
        for (id, seed) in ids.iter().zip(&seeds) {
            fleet.register(id.clone(), tenant_config(*seed, dims)).unwrap();
            fleet.learn(id, &train).unwrap();
        }
        std::thread::scope(|scope| {
            for (id, seed) in ids.iter().zip(&seeds) {
                let fleet = fleet.clone();
                let train = &train;
                scope.spawn(move || {
                    let pts = stream(n, dims, *seed);
                    let mut got = Vec::new();
                    for c in pts.chunks(chunk) {
                        got.extend(fleet.process_batch(id, c).unwrap());
                    }
                    let (want, reference) = standalone_verdicts(*seed, dims, train, &pts);
                    assert_same_verdicts(&want, &got, &format!("tenant {id}"));
                    assert_eq!(fleet.tenant_stats(id).unwrap(), *reference.stats());
                    assert_eq!(
                        fleet.tenant_footprint(id).unwrap(),
                        reference.footprint()
                    );
                });
            }
        });
        prop_assert!(fleet.executor().pools_spawned() <= 1);
    }
}
