//! Shared experiment harness for the SPOT benchmark targets.
//!
//! Each `benches/eNN_*.rs` target regenerates one table/figure from the
//! evaluation plan in DESIGN.md §4. This library holds the plumbing they
//! share: running any [`StreamDetector`] over a labeled stream while
//! collecting effectiveness and efficiency measurements, and writing the
//! table + JSON artifact pair.

use serde::Serialize;
use spot_metrics::{roc_auc, ConfusionMatrix, Table, ThroughputMeter};
use spot_types::{LabeledRecord, StreamDetector};
use std::path::PathBuf;

/// Everything measured while streaming a labeled dataset through a
/// detector.
#[derive(Debug, Clone, Serialize)]
pub struct RunOutcome {
    /// Detector name.
    pub detector: String,
    /// Points processed.
    pub points: usize,
    /// Confusion counts against ground truth.
    pub confusion: ConfusionMatrix,
    /// Precision.
    pub precision: f64,
    /// Recall (detection rate).
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// ROC-AUC over the detector's scores.
    pub auc: f64,
    /// Points per second (detection stage only).
    pub throughput: f64,
    /// Wall-clock seconds of the detection stage.
    pub seconds: f64,
}

/// Streams `records` through `detector` (already learned) and measures
/// everything.
pub fn run_detector<D: StreamDetector + ?Sized>(
    detector: &mut D,
    records: &[LabeledRecord],
) -> RunOutcome {
    let mut confusion = ConfusionMatrix::new();
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(records.len());
    let mut meter = ThroughputMeter::new();
    for r in records {
        let d = detector.process(&r.point);
        meter.add(1);
        confusion.record(d.outlier, r.is_anomaly());
        let score = if d.score.is_finite() { d.score } else { 1e18 };
        scored.push((score, r.is_anomaly()));
    }
    RunOutcome {
        detector: detector.name().to_string(),
        points: records.len(),
        confusion,
        precision: confusion.precision(),
        recall: confusion.recall(),
        f1: confusion.f1(),
        fpr: confusion.false_positive_rate(),
        auc: roc_auc(&scored),
        throughput: meter.throughput(),
        seconds: meter.elapsed().as_secs_f64(),
    }
}

/// Directory where every experiment drops its JSON artifact
/// (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Prints the table and writes the artifact next to it.
pub fn emit<T: Serialize>(experiment: &str, table: &Table, artifact: &T) {
    table.print();
    let path = results_dir().join(format!("{experiment}.json"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            if serde_json::to_writer_pretty(f, artifact).is_ok() {
                println!("(artifact: {})", path.display());
            }
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!();
}

/// Extracts only the points from labeled records (for training splits).
pub fn points_of(records: &[LabeledRecord]) -> Vec<spot_types::DataPoint> {
    records.iter().map(|r| r.point.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::{DataPoint, Detection, Label, Result};

    /// Flags everything with |x0| > 0.5.
    struct ThresholdDetector;

    impl StreamDetector for ThresholdDetector {
        fn learn(&mut self, _training: &[DataPoint]) -> Result<()> {
            Ok(())
        }
        fn process(&mut self, p: &DataPoint) -> Detection {
            let s = p.value(0).abs();
            Detection {
                outlier: s > 0.5,
                score: s,
            }
        }
        fn name(&self) -> &str {
            "threshold"
        }
    }

    #[test]
    fn run_detector_measures_effectiveness() {
        let records: Vec<LabeledRecord> = (0..100)
            .map(|i| {
                let anomalous = i % 10 == 0;
                let v = if anomalous { 0.9 } else { 0.1 };
                let label = if anomalous {
                    Label::Anomaly(spot_types::AnomalyInfo::category("x"))
                } else {
                    Label::Normal
                };
                LabeledRecord::new(i, DataPoint::new(vec![v]), label)
            })
            .collect();
        let out = run_detector(&mut ThresholdDetector, &records);
        assert_eq!(out.points, 100);
        assert!((out.precision - 1.0).abs() < 1e-12);
        assert!((out.recall - 1.0).abs() < 1e-12);
        assert!((out.auc - 1.0).abs() < 1e-12);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }
}
