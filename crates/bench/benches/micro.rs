//! Criterion micro-benchmarks of SPOT's hot paths: synopsis maintenance,
//! grid mapping, subspace machinery and the end-to-end per-point cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot::SpotBuilder;
use spot_clustering::LeaderClustering;
use spot_moga::{assign_rank_and_crowding, Individual};
use spot_stream::TimeModel;
use spot_subspace::Subspace;
use spot_synopsis::{Bcs, Grid, SynopsisManager};
use spot_types::{DataPoint, DomainBounds};

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn bench_bcs_insert(c: &mut Criterion) {
    let tm = TimeModel::new(2000, 0.01).unwrap();
    for dims in [8usize, 32] {
        let pts = random_points(1024, dims, 1);
        c.bench_with_input(BenchmarkId::new("bcs_insert", dims), &pts, |b, pts| {
            b.iter(|| {
                let mut bcs = Bcs::new(dims, 0);
                for (i, p) in pts.iter().enumerate() {
                    bcs.insert(&tm, i as u64, black_box(p));
                }
                bcs.count()
            })
        });
    }
}

fn bench_grid_mapping(c: &mut Criterion) {
    for dims in [8usize, 32] {
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let pts = random_points(1024, dims, 2);
        c.bench_with_input(
            BenchmarkId::new("grid_base_coords", dims),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for p in pts {
                        acc += grid.base_coords(black_box(p)).unwrap()[0] as usize;
                    }
                    acc
                })
            },
        );
    }
}

/// The chunked branch-free quantizer on the reused-scratch entry — the
/// satellite check that the autovectorizable form is no slower at any ϕ.
fn bench_grid_quantize_chunked(c: &mut Criterion) {
    for dims in [8usize, 24, 64] {
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let pts = random_points(1024, dims, 2);
        c.bench_with_input(
            BenchmarkId::new("grid_base_coords_into", dims),
            &pts,
            |b, pts| {
                let mut scratch = Vec::with_capacity(dims);
                b.iter(|| {
                    let mut acc = 0usize;
                    for p in pts {
                        grid.base_coords_into(black_box(p), &mut scratch).unwrap();
                        acc += scratch[0] as usize;
                    }
                    acc
                })
            },
        );
    }
}

fn bench_manager_update(c: &mut Criterion) {
    for n_subspaces in [16usize, 64, 256] {
        let dims = 16;
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let mut mgr = SynopsisManager::new(grid, TimeModel::new(2000, 0.01).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let mut added = 0;
        while added < n_subspaces {
            if mgr.add_subspace(spot_subspace::genetic::random_subspace(dims, 3, &mut rng)) {
                added += 1;
            }
        }
        let pts = random_points(512, dims, 4);
        c.bench_with_input(
            BenchmarkId::new("manager_update", n_subspaces),
            &pts,
            |b, pts| {
                let mut now = 0u64;
                b.iter(|| {
                    for p in pts {
                        now += 1;
                        mgr.update(now, black_box(p)).unwrap();
                    }
                })
            },
        );
    }
}

/// The fused single-pass path: update + per-subspace PCS in one access
/// (what `Spot::process` actually runs per point).
fn bench_manager_update_and_query(c: &mut Criterion) {
    for n_subspaces in [16usize, 64, 256] {
        let dims = 16;
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let mut mgr = SynopsisManager::new(grid, TimeModel::new(2000, 0.01).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let mut added = 0;
        while added < n_subspaces {
            if mgr.add_subspace(spot_subspace::genetic::random_subspace(dims, 3, &mut rng)) {
                added += 1;
            }
        }
        let pts = random_points(512, dims, 4);
        c.bench_with_input(
            BenchmarkId::new("manager_update_and_query", n_subspaces),
            &pts,
            |b, pts| {
                let mut now = 0u64;
                let mut sink = Vec::new();
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for p in pts {
                        now += 1;
                        mgr.update_and_query(now, black_box(p), &mut sink).unwrap();
                        for e in &sink {
                            acc += e.pcs.rd;
                        }
                    }
                    acc
                })
            },
        );
    }
}

fn bench_spot_process_batch(c: &mut Criterion) {
    let dims = 16;
    let mut spot = SpotBuilder::new(DomainBounds::unit(dims))
        .fs_max_dimension(2)
        .seed(9)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, dims, 7)).unwrap();
    let pts = random_points(256, dims, 8);
    c.bench_function("spot_process_batch_256_phi16", |b| {
        b.iter(|| spot.process_batch(black_box(&pts)).unwrap().len())
    });
}

fn bench_nondominated_sort(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    for n in [64usize, 256] {
        let pop: Vec<Individual> = (0..n)
            .map(|_| Individual {
                subspace: Subspace::from_mask(rng.gen_range(1..1024)).unwrap(),
                objectives: vec![rng.gen(), rng.gen(), rng.gen()],
                rank: 0,
                crowding: 0.0,
            })
            .collect();
        c.bench_with_input(BenchmarkId::new("nondominated_sort", n), &pop, |b, pop| {
            b.iter(|| {
                let mut p = pop.clone();
                assign_rank_and_crowding(&mut p);
                p[0].rank
            })
        });
    }
}

fn bench_leader_clustering(c: &mut Criterion) {
    let pts = random_points(1000, 8, 6);
    c.bench_function("leader_clustering_1000x8", |b| {
        let method = LeaderClustering::new(0.4).unwrap();
        b.iter(|| method.run(black_box(&pts)).num_clusters())
    });
}

fn bench_spot_process(c: &mut Criterion) {
    let dims = 16;
    let mut spot = SpotBuilder::new(DomainBounds::unit(dims))
        .fs_max_dimension(2)
        .seed(9)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, dims, 7)).unwrap();
    let pts = random_points(256, dims, 8);
    c.bench_function("spot_process_per_point_phi16", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let v = spot.process(&pts[i % pts.len()]).unwrap();
            i += 1;
            v.outlier
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_bcs_insert, bench_grid_mapping, bench_grid_quantize_chunked,
              bench_manager_update,
              bench_manager_update_and_query, bench_spot_process_batch,
              bench_nondominated_sort, bench_leader_clustering, bench_spot_process
}
criterion_main!(micro);
