//! E3 — Effectiveness on synthetic projected-outlier streams.
//!
//! Paper claim (Sections I, III): full-space stream detectors "rely on full
//! data space to detect outliers and thus projected outliers cannot be
//! discovered"; SPOT's SST finds them. This experiment plants projected
//! outliers (anomalous in a hidden 2-dim subspace only) and compares
//! precision/recall/F1/FPR/AUC across detectors, plus SPOT's
//! subspace-recovery rate. Expected shape: SPOT clearly ahead on F1 and
//! AUC; full-space density floods false positives (high recall, terrible
//! precision) or misses everything, depending on threshold; random
//! subspaces sit in between.

use spot::SpotBuilder;
use spot_baselines::fullspace::{FullSpaceConfig, FullSpaceGridDetector};
use spot_baselines::random_subspace::{RandomSubspaceConfig, RandomSubspaceDetector};
use spot_baselines::window_knn::{WindowKnnConfig, WindowKnnDetector};
use spot_bench::{emit, run_detector, RunOutcome};
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::{best_jaccard, Table};
use spot_subspace::Subspace;
use spot_types::{DomainBounds, StreamDetector};

const PHI: usize = 16;
const TRAIN: usize = 1500;
const STREAM: usize = 6000;

fn main() {
    let config = SyntheticConfig {
        dims: PHI,
        outlier_fraction: 0.03,
        seed: 17,
        ..Default::default()
    };
    let mut generator = SyntheticGenerator::new(config).expect("config is valid");
    let train = generator.generate_normal(TRAIN);
    let records = generator.generate(STREAM);

    let mut table = Table::new(
        "E3: effectiveness on synthetic projected outliers (phi=16, 3% outliers)",
        &["detector", "precision", "recall", "F1", "FPR", "AUC"],
    );
    let mut artifacts: Vec<RunOutcome> = Vec::new();

    // SPOT — measured separately so subspace recovery can be collected too.
    let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(3)
        .build()
        .expect("config is valid");
    spot.learn(&train).expect("learning succeeds");
    let mut confusion = spot_metrics::ConfusionMatrix::new();
    let mut scored: Vec<(f64, bool)> = Vec::new();
    let mut recovered = 0usize;
    let mut detected_true = 0usize;
    let started = std::time::Instant::now();
    for r in &records {
        let v = spot.process(&r.point).expect("dimensions match");
        confusion.record(v.outlier, r.is_anomaly());
        scored.push((v.score, r.is_anomaly()));
        if v.outlier {
            if let Some(info) = r.label.anomaly() {
                detected_true += 1;
                let truth = Subspace::from_mask(info.true_subspace.expect("generator sets it"))
                    .expect("mask is valid");
                if best_jaccard(truth, &v.subspaces()) >= 0.5 {
                    recovered += 1;
                }
            }
        }
    }
    let spot_secs = started.elapsed().as_secs_f64();
    table.add_row(vec![
        "spot".into(),
        format!("{:.3}", confusion.precision()),
        format!("{:.3}", confusion.recall()),
        format!("{:.3}", confusion.f1()),
        format!("{:.3}", confusion.false_positive_rate()),
        format!("{:.3}", spot_metrics::roc_auc(&scored)),
    ]);
    artifacts.push(RunOutcome {
        detector: "spot".into(),
        points: records.len(),
        confusion,
        precision: confusion.precision(),
        recall: confusion.recall(),
        f1: confusion.f1(),
        fpr: confusion.false_positive_rate(),
        auc: spot_metrics::roc_auc(&scored),
        throughput: records.len() as f64 / spot_secs,
        seconds: spot_secs,
    });

    // Baselines through the common harness.
    let mut full = FullSpaceGridDetector::new(DomainBounds::unit(PHI), FullSpaceConfig::default())
        .expect("config is valid");
    StreamDetector::learn(&mut full, &train).expect("learning succeeds");
    let out = run_detector(&mut full, &records);
    push_row(&mut table, &out);
    artifacts.push(out);

    let mut knn = WindowKnnDetector::new(WindowKnnConfig {
        window: 1500,
        k: 5,
        radius: 0.3 * (PHI as f64).sqrt(),
    })
    .expect("config is valid");
    StreamDetector::learn(&mut knn, &train).expect("learning succeeds");
    let out = run_detector(&mut knn, &records);
    push_row(&mut table, &out);
    artifacts.push(out);

    let mut random = RandomSubspaceDetector::new(
        DomainBounds::unit(PHI),
        RandomSubspaceConfig {
            num_subspaces: 60,
            ..Default::default()
        },
    )
    .expect("config is valid");
    StreamDetector::learn(&mut random, &train).expect("learning succeeds");
    let out = run_detector(&mut random, &records);
    push_row(&mut table, &out);
    artifacts.push(out);

    emit("e03_effectiveness_synthetic", &table, &artifacts);
    println!(
        "SPOT subspace recovery: {recovered}/{detected_true} detected outliers \
         explained with Jaccard >= 0.5 against the planted subspace"
    );
}

fn push_row(table: &mut Table, out: &RunOutcome) {
    table.add_row(vec![
        out.detector.clone(),
        format!("{:.3}", out.precision),
        format!("{:.3}", out.recall),
        format!("{:.3}", out.f1),
        format!("{:.3}", out.fpr),
        format!("{:.3}", out.auc),
    ]);
}
