//! Parallel-runtime scaling baseline: multi-producer ingest throughput of
//! the sharded cooperative `SharedSpot` against the single-mutex control,
//! the two-phase eval arms (serial vs multi-thread sweep/overlap), plus
//! the batch-decay and chunked-quantizer micro numbers.
//!
//! Writes `BENCH_parallel.json` at the repository root (fixed seed 42).
//! The `cores` field records the machine's available parallelism — on a
//! single-core runner the producer and eval arms measure protocol
//! overhead only; the ≥2.5x scaling target applies to machines with
//! ≥ 4 cores.
//!
//! `SPOT_BENCH_THREADS` (e.g. `"1,2"`) restricts the producer counts for
//! CI smoke runs; the default sweep is 1/2/4/8.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{SharedSpot, Spot, SpotBuilder};
use spot_stream::TimeModel;
use spot_synopsis::{Grid, SerialExecutor, SubspacePcs, SynopsisManager};
use spot_types::{DataPoint, DomainBounds};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 16;
const TOTAL_POINTS: usize = 16_384;
const CHUNK: usize = 256;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn learned_spot() -> Spot {
    let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(SEED)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, PHI, SEED ^ 7)).unwrap();
    spot
}

/// Drives `threads` producers over disjoint segments of a shared stream;
/// returns aggregate points/sec.
fn producer_throughput(shared: &SharedSpot, stream: &Arc<Vec<DataPoint>>, threads: usize) -> f64 {
    let per_thread = stream.len() / threads;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = shared.clone();
            let stream = Arc::clone(stream);
            scope.spawn(move || {
                let segment = &stream[t * per_thread..(t + 1) * per_thread];
                for chunk in segment.chunks(CHUNK) {
                    shared.process_batch(chunk).unwrap();
                }
            });
        }
    });
    (per_thread * threads) as f64 / t0.elapsed().as_secs_f64()
}

#[derive(Serialize)]
struct ThreadPoint {
    threads: usize,
    single_mutex_pts_per_sec: f64,
    sharded_pts_per_sec: f64,
    speedup_vs_single_mutex: f64,
}

#[derive(Serialize)]
struct QuantizePoint {
    phi: usize,
    scalar_pts_per_sec: f64,
    chunked_pts_per_sec: f64,
}

/// One two-phase-eval arm: end-to-end `process_batch` throughput with the
/// given shard/sweep executor, plus the phase split the detector metered.
#[derive(Serialize)]
struct EvalPoint {
    /// Extra threads the executor brings (0 = calling thread alone).
    helper_threads: usize,
    pts_per_sec: f64,
    sweep_nanos: u64,
    commit_nanos: u64,
    batch_runs: u64,
    /// Runs whose commit overlapped the next run's shard ingestion.
    overlapped_runs: u64,
    speedup_vs_serial: f64,
}

/// One commit-shard arm: the same stream through `process_batch` with
/// the spot's executor service pinned to `workers` threads, so the
/// order-free half of each run's commit (verdict assembly, reservoir
/// decisions, outlier candidacy) runs as chunked claim units while the
/// Page–Hinkley fold stays sequential.
#[derive(Serialize)]
struct CommitShardPoint {
    workers: usize,
    pts_per_sec: f64,
    sweep_nanos: u64,
    commit_nanos: u64,
    /// Stats + footprint matched the serial eval arm bit-for-bit.
    matches_serial: bool,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct ParallelBaseline {
    seed: u64,
    /// Available parallelism of the machine that produced these numbers.
    cores: usize,
    phi: usize,
    sst_subspaces: usize,
    points_per_arm: usize,
    chunk: usize,
    /// Multi-producer ingest: sharded cooperative SharedSpot vs the
    /// single-mutex control at each producer count.
    threads: Vec<ThreadPoint>,
    /// `sharded(4 threads) / single_mutex(4 threads)` when the sweep
    /// includes 4 producers (the ISSUE's scaling target; meaningful on
    /// ≥ 4 cores).
    speedup_at_4_threads: Option<f64>,
    /// Two-phase eval arms: end-to-end `process_batch` with 0/1/2 helper
    /// threads on the shard + sweep dispatch. Chunks are wider than
    /// `Spot::BATCH_RUN` so run overlap engages. On a 1-core machine the
    /// non-serial arms measure dispatch overhead (target: parity).
    eval_chunk: usize,
    eval: Vec<EvalPoint>,
    /// Commit-shard arms: executor-sharded order-free commit units vs the
    /// serial fold, with bit-identity to the serial arm asserted inline.
    commit_shard: Vec<CommitShardPoint>,
    /// Synopsis-level batch path (per-run decay table + closed-form
    /// total, no per-point powi) vs the per-point path, ϕ=24 / 64 stores.
    synopsis_per_point_pts_per_sec: f64,
    synopsis_batch_pts_per_sec: f64,
    batch_decay_speedup: f64,
    /// Chunked branch-free quantizer vs the scalar reference loop.
    quantize: Vec<QuantizePoint>,
}

fn bench_threads() -> Vec<usize> {
    match std::env::var("SPOT_BENCH_THREADS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stream = Arc::new(random_points(TOTAL_POINTS, PHI, SEED ^ 2));

    // --- Multi-producer ingest scaling. ---
    let mut thread_points = Vec::new();
    let sst_subspaces = learned_spot().sst().sizes();
    let sst_subspaces = sst_subspaces.0 + sst_subspaces.1 + sst_subspaces.2;
    for threads in bench_threads() {
        let single = SharedSpot::single_mutex(learned_spot());
        let single_rate = producer_throughput(&single, &stream, threads);
        let sharded = SharedSpot::new(learned_spot());
        let sharded_rate = producer_throughput(&sharded, &stream, threads);
        println!(
            "producers={threads:>2}  single-mutex {single_rate:>10.0} pts/s   sharded {sharded_rate:>10.0} pts/s  ({:.2}x)",
            sharded_rate / single_rate
        );
        thread_points.push(ThreadPoint {
            threads,
            single_mutex_pts_per_sec: single_rate,
            sharded_pts_per_sec: sharded_rate,
            speedup_vs_single_mutex: sharded_rate / single_rate,
        });
    }
    let speedup_at_4 = thread_points
        .iter()
        .find(|p| p.threads == 4)
        .map(|p| p.speedup_vs_single_mutex);

    // --- Two-phase eval arms: serial vs threaded shard+sweep dispatch. ---
    const EVAL_CHUNK: usize = 2048; // > BATCH_RUN → run overlap engages
    let mut eval = Vec::new();
    let mut serial_rate = 0.0;
    let mut serial_reference = None;
    for helpers in [0usize, 1, 2] {
        let mut spot = learned_spot();
        // Persistent workers (one channel send + latch wait per dispatch),
        // the same mechanism the `parallel` feature's pool uses.
        let pool = spot_synopsis::WorkerPool::new(helpers);
        let t0 = Instant::now();
        for chunk in stream.chunks(EVAL_CHUNK) {
            if helpers == 0 {
                spot.process_batch_with(chunk, &SerialExecutor).unwrap();
            } else {
                spot.process_batch_with(chunk, &pool).unwrap();
            }
        }
        let rate = stream.len() as f64 / t0.elapsed().as_secs_f64();
        if helpers == 0 {
            serial_rate = rate;
            serial_reference = Some((*spot.stats(), spot.footprint()));
        }
        let stats = *spot.stats();
        println!(
            "eval helpers={helpers}  {rate:>10.0} pts/s  ({:.2}x vs serial)  sweep {:>6.1}ms  commit {:>6.1}ms  overlapped {}/{} runs",
            rate / serial_rate,
            stats.sweep_nanos as f64 / 1e6,
            stats.commit_nanos as f64 / 1e6,
            stats.overlapped_runs,
            stats.batch_runs,
        );
        eval.push(EvalPoint {
            helper_threads: helpers,
            pts_per_sec: rate,
            sweep_nanos: stats.sweep_nanos,
            commit_nanos: stats.commit_nanos,
            batch_runs: stats.batch_runs,
            overlapped_runs: stats.overlapped_runs,
            speedup_vs_serial: rate / serial_rate,
        });
    }

    // --- Commit-shard arms: executor-sharded commits vs the serial fold. ---
    let (serial_stats, serial_fp) = serial_reference.expect("serial eval arm ran");
    let mut commit_shard = Vec::new();
    for workers in [1usize, 2] {
        let mut spot = learned_spot();
        spot.set_parallel_workers(Some(workers));
        let t0 = Instant::now();
        for chunk in stream.chunks(EVAL_CHUNK) {
            spot.process_batch(chunk).unwrap();
        }
        let rate = stream.len() as f64 / t0.elapsed().as_secs_f64();
        let stats = *spot.stats();
        let matches_serial = stats == serial_stats && spot.footprint() == serial_fp;
        assert!(matches_serial, "commit-shard arm diverged from serial");
        println!(
            "commit-shard workers={workers}  {rate:>10.0} pts/s  ({:.2}x vs serial)  sweep {:>6.1}ms  commit {:>6.1}ms  bit-identical {matches_serial}",
            rate / serial_rate,
            stats.sweep_nanos as f64 / 1e6,
            stats.commit_nanos as f64 / 1e6,
        );
        commit_shard.push(CommitShardPoint {
            workers,
            pts_per_sec: rate,
            sweep_nanos: stats.sweep_nanos,
            commit_nanos: stats.commit_nanos,
            matches_serial,
            speedup_vs_serial: rate / serial_rate,
        });
    }

    // --- Batch decay amortization (synopsis level, ϕ=24, 64 stores). ---
    let (per_point_rate, batch_rate) = {
        let dims = 24;
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let tm = TimeModel::new(2000, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        let build = |rng: &mut StdRng| {
            let mut mgr = SynopsisManager::new(grid.clone(), tm);
            let mut added = 0;
            while added < 64 {
                if mgr.add_subspace(spot_subspace::genetic::random_subspace(dims, 4, rng)) {
                    added += 1;
                }
            }
            mgr
        };
        let warm = random_points(2000, dims, SEED ^ 4);
        let pts = random_points(12_000, dims, SEED ^ 5);

        let mut mgr = build(&mut rng);
        let mut sink: Vec<SubspacePcs> = Vec::new();
        let mut now = 0u64;
        for p in &warm {
            now += 1;
            mgr.update_and_query(now, p, &mut sink).unwrap();
        }
        let t = Instant::now();
        for p in &pts {
            now += 1;
            mgr.update_and_query(now, p, &mut sink).unwrap();
        }
        let per_point = pts.len() as f64 / t.elapsed().as_secs_f64();

        let mut mgr = build(&mut StdRng::seed_from_u64(SEED ^ 3));
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        let mut now = 0u64;
        for chunk in warm.chunks(CHUNK) {
            mgr.update_and_query_batch(now + 1, chunk, &mut sinks, &mut outcomes)
                .unwrap();
            now += chunk.len() as u64;
        }
        let t = Instant::now();
        for chunk in pts.chunks(CHUNK) {
            mgr.update_and_query_batch(now + 1, chunk, &mut sinks, &mut outcomes)
                .unwrap();
            now += chunk.len() as u64;
        }
        let batch = pts.len() as f64 / t.elapsed().as_secs_f64();
        println!("synopsis per-point {per_point:>10.0} pts/s   batch (decay table) {batch:>10.0} pts/s  ({:.2}x)", batch / per_point);
        (per_point, batch)
    };

    // --- Chunked quantizer vs the scalar reference. ---
    let mut quantize = Vec::new();
    for dims in [8usize, 24, 64] {
        let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
        let pts = random_points(4096, dims, SEED ^ 6);
        let rounds = 64;

        let mut scratch: Vec<u16> = Vec::with_capacity(dims);
        let t = Instant::now();
        let mut acc = 0usize;
        for _ in 0..rounds {
            for p in &pts {
                // The pre-chunking shape: one scalar interval() per dim.
                scratch.clear();
                for (d, &v) in p.values().iter().enumerate() {
                    scratch.push(grid.interval(d, v));
                }
                acc += scratch[0] as usize;
            }
        }
        let scalar = (rounds * pts.len()) as f64 / t.elapsed().as_secs_f64();
        std::hint::black_box(acc);

        let t = Instant::now();
        let mut acc = 0usize;
        for _ in 0..rounds {
            for p in &pts {
                grid.base_coords_into(p, &mut scratch).unwrap();
                acc += scratch[0] as usize;
            }
        }
        let chunked = (rounds * pts.len()) as f64 / t.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        println!("quantize phi={dims:>2}  scalar {scalar:>12.0} pts/s   chunked {chunked:>12.0} pts/s  ({:.2}x)", chunked / scalar);
        quantize.push(QuantizePoint {
            phi: dims,
            scalar_pts_per_sec: scalar,
            chunked_pts_per_sec: chunked,
        });
    }

    let out = ParallelBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        sst_subspaces,
        points_per_arm: TOTAL_POINTS,
        chunk: CHUNK,
        threads: thread_points,
        speedup_at_4_threads: speedup_at_4,
        eval_chunk: EVAL_CHUNK,
        eval,
        commit_shard,
        synopsis_per_point_pts_per_sec: per_point_rate,
        synopsis_batch_pts_per_sec: batch_rate,
        batch_decay_speedup: batch_rate / per_point_rate,
        quantize,
    };
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    let f = std::fs::File::create(&path).expect("create BENCH_parallel.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_parallel.json");
    println!("(baseline written to {})", path.display());
}
