//! E6 — MOGA search quality vs exhaustive search.
//!
//! Paper claim (Sections I, III): outlying-subspace search is infeasible
//! exhaustively, and "MOGA [is] an effective search method to find
//! subspaces that are able to optimize all the criteria". For lattice
//! sizes where brute force is still possible, this experiment measures how
//! much of the exact top-k the MOGA recovers, at what fraction of the
//! evaluation budget, plus both runtimes. Expected shape: ≥ 60-80% top-k
//! recovery with an evaluation budget that stays flat while brute force
//! grows as Σ C(ϕ,k).

use spot::{SparsityProblem, TrainingEvaluator};
use spot_baselines::brute_force_top_k;
use spot_bench::emit;
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::Table;
use spot_moga::MogaConfig;
use spot_synopsis::Grid;
use spot_types::DomainBounds;
use std::collections::HashSet;
use std::time::Instant;

const TOP_K: usize = 5;
const MAX_CARD: usize = 3;

fn main() {
    let mut table = Table::new(
        "E6: MOGA vs exhaustive subspace search (top-5 recovery, card <= 3)",
        &[
            "phi",
            "lattice slice",
            "brute evals",
            "moga evals",
            "recovered (tie-aware)",
            "brute ms",
            "moga ms",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        phi: usize,
        brute_evals: usize,
        moga_evals: usize,
        recovered: usize,
        within_band: usize,
        top_k: usize,
        brute_ms: f64,
        moga_ms: f64,
    }
    let mut artifact: Vec<Row> = Vec::new();

    for phi in [10usize, 14, 18, 22] {
        // A training batch with one planted sparse point: the search target
        // is "the subspaces in which the last point is sparsest".
        let config = SyntheticConfig {
            dims: phi,
            outlier_fraction: 0.0,
            seed: 31,
            ..Default::default()
        };
        let mut generator = SyntheticGenerator::new(config).expect("config is valid");
        let mut pts = generator.generate_normal(800);
        let target = pts.len();
        // Plant the outlier far from everything in dims {1, 4}.
        let mut vals = pts[0].values().to_vec();
        vals[1] = 0.985;
        vals[4] = 0.015;
        pts.push(spot_types::DataPoint::new(vals));

        let grid = Grid::new(DomainBounds::unit(phi), 10).expect("granularity is valid");
        let evaluator = TrainingEvaluator::new(grid, pts).expect("batch is valid");

        // Exhaustive reference.
        let started = Instant::now();
        let mut problem = SparsityProblem::for_targets(&evaluator, vec![target], Some(MAX_CARD));
        let brute = brute_force_top_k(&mut problem, MAX_CARD).expect("phi is small enough");
        let brute_ms = started.elapsed().as_secs_f64() * 1e3;
        let exact: HashSet<u64> = brute
            .top_k(TOP_K)
            .into_iter()
            .map(|(s, _)| s.mask())
            .collect();

        // MOGA.
        let started = Instant::now();
        let mut problem = SparsityProblem::for_targets(&evaluator, vec![target], Some(MAX_CARD));
        let moga = spot_moga::run(
            &mut problem,
            &MogaConfig {
                population: 40,
                generations: 30,
                ..Default::default()
            },
        )
        .expect("configuration is valid");
        let moga_ms = started.elapsed().as_secs_f64() * 1e3;
        let got: HashSet<u64> = moga
            .top_k(TOP_K)
            .into_iter()
            .map(|(s, _)| s.mask())
            .collect();
        let recovered = exact.intersection(&got).count();
        // Tie-aware recovery: sparsity objective sums carry large tie
        // groups (every singleton-cell subspace of the target scores the
        // same), so exact top-5 membership is ambiguous. Count MOGA picks
        // whose *exact* score is within the brute-force 5th-best band.
        let brute_scores: std::collections::HashMap<u64, f64> = brute
            .evaluated
            .iter()
            .map(|(s, objs)| (s.mask(), objs.iter().sum::<f64>()))
            .collect();
        let band = brute
            .top_k(TOP_K)
            .last()
            .expect("top-5 of non-empty sweep")
            .1
            + 1e-9;
        let within_band = moga
            .top_k(TOP_K)
            .iter()
            .filter(|(s, _)| brute_scores.get(&s.mask()).is_some_and(|&v| v <= band))
            .count();

        let slice = spot_subspace::count_up_to_dim(phi, MAX_CARD);
        table.add_row(vec![
            phi.to_string(),
            slice.to_string(),
            brute.evaluations().to_string(),
            moga.evaluations.to_string(),
            format!("{recovered}/{TOP_K} ({within_band}/{TOP_K} in band)"),
            format!("{brute_ms:.1}"),
            format!("{moga_ms:.1}"),
        ]);
        artifact.push(Row {
            phi,
            brute_evals: brute.evaluations(),
            moga_evals: moga.evaluations,
            recovered,
            within_band,
            top_k: TOP_K,
            brute_ms,
            moga_ms,
        });

        // Convergence curve (figure data): hypervolume + best scalar per
        // generation for the largest lattice.
        if phi == 22 {
            let mut curve = Table::new(
                "E6b: MOGA convergence at phi=22 (hypervolume of archive, best objective sum)",
                &["generation", "archive", "hypervolume", "best objective sum"],
            );
            for h in moga.history.iter().step_by(5) {
                curve.add_row(vec![
                    h.generation.to_string(),
                    h.archive_size.to_string(),
                    h.hypervolume.map_or("-".into(), |v| format!("{v:.4}")),
                    format!("{:.4}", h.best_scalar),
                ]);
            }
            curve.print();
        }
    }

    emit("e06_moga_quality", &table, &artifact);
}
