//! E10 — Synopsis memory vs dimensionality and granularity.
//!
//! Paper claim (Section II-B): BCS/PCS are "compact structures", and the
//! decaying summaries plus pruning keep the synopsis bounded on unbounded
//! streams. This experiment streams a fixed workload and reports live cells
//! and bytes across ϕ and m, with pruning on and off. Expected shape: cells
//! grow with ϕ (more subspaces in FS) and with m (finer partition); pruning
//! cuts the totals substantially without touching fresh state; everything
//! is orders of magnitude below the raw-window equivalent.

use spot::SpotBuilder;
use spot_bench::emit;
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::Table;
use spot_stream::TimeModel;
use spot_types::{DataPoint, DomainBounds};

const TRAIN: usize = 800;
const STREAM: usize = 8000;

fn main() {
    let mut table = Table::new(
        "E10: synopsis memory after an 8k-point stream (omega=500)",
        &[
            "phi",
            "m",
            "pruning",
            "base cells",
            "proj cells",
            "approx KiB",
            "raw-window KiB",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        phi: usize,
        granularity: u16,
        pruning: bool,
        base_cells: usize,
        projected_cells: usize,
        bytes: usize,
        raw_window_bytes: usize,
    }
    let mut artifact: Vec<Row> = Vec::new();

    for phi in [8usize, 16, 32] {
        for m in [5u16, 10, 20] {
            for pruning in [false, true] {
                let config = SyntheticConfig {
                    dims: phi,
                    outlier_fraction: 0.02,
                    cluster_subspace_dims: 4.min(phi / 2),
                    seed: 53,
                    ..Default::default()
                };
                let mut generator = SyntheticGenerator::new(config).expect("config is valid");
                let train = generator.generate_normal(TRAIN);

                let mut builder = SpotBuilder::new(DomainBounds::unit(phi))
                    .fs_max_dimension(2)
                    .granularity(m)
                    .time_model(TimeModel::new(500, 0.01).expect("parameters are valid"))
                    .seed(7);
                builder = if pruning {
                    builder.pruning(500, 1e-3)
                } else {
                    builder.pruning(0, 0.0)
                };
                let mut spot = builder.build().expect("config is valid");
                spot.learn(&train).expect("learning succeeds");
                for r in generator.by_ref().take(STREAM) {
                    spot.process(&r.point).expect("dimensions match");
                }
                let fp = spot.footprint();
                // What an exact window of omega points would store instead.
                let raw_window_bytes =
                    500 * (std::mem::size_of::<DataPoint>() + phi * std::mem::size_of::<f64>());
                table.add_row(vec![
                    phi.to_string(),
                    m.to_string(),
                    if pruning { "on" } else { "off" }.to_string(),
                    fp.base_cells.to_string(),
                    fp.projected_cells.to_string(),
                    (fp.approx_bytes / 1024).to_string(),
                    (raw_window_bytes / 1024).to_string(),
                ]);
                artifact.push(Row {
                    phi,
                    granularity: m,
                    pruning,
                    base_cells: fp.base_cells,
                    projected_cells: fp.projected_cells,
                    bytes: fp.approx_bytes,
                    raw_window_bytes,
                });
            }
        }
    }

    emit("e10_memory", &table, &artifact);
}
