//! Fleet-runtime scaling baseline: aggregate ingest throughput of a
//! multi-tenant `SpotFleet` (one shared executor service) at 1/4/16
//! tenants × 0/2 pool workers, plus the per-tenant queue path.
//!
//! Writes `BENCH_fleet.json` at the repository root (fixed seed 42). The
//! `cores` field records the machine's available parallelism — on a 1- or
//! 2-core runner the pooled arms measure dispatch overhead (target:
//! parity); the scaling claims need a ≥ 4-core box (see ROADMAP).
//!
//! `SPOT_BENCH_TENANTS` (e.g. `"1,4"`) restricts the tenant counts for CI
//! smoke runs; the default sweep is 1/4/16.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{FleetConfig, SpotFleet, TenantId};
use spot_types::{DataPoint, DomainBounds};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 8;
const POINTS_PER_TENANT: usize = 4096;
const CHUNK: usize = 256;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(seed)
        .build_config()
        .unwrap()
}

/// Builds a learned fleet of `tenants` detectors on `workers` pool workers.
fn build_fleet(tenants: usize, workers: usize, train: &[DataPoint]) -> (SpotFleet, Vec<TenantId>) {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(workers));
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| TenantId::new(format!("tenant-{t:02}")).unwrap())
        .collect();
    for (t, id) in ids.iter().enumerate() {
        fleet
            .register(id.clone(), tenant_config(SEED ^ t as u64))
            .unwrap();
        fleet.learn(id, train).unwrap();
    }
    (fleet, ids)
}

/// Each tenant ingests its own stream from its own producer thread;
/// returns aggregate points/sec over the whole fleet.
fn fleet_throughput(fleet: &SpotFleet, ids: &[TenantId], streams: &[Vec<DataPoint>]) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (id, pts) in ids.iter().zip(streams) {
            let fleet = fleet.clone();
            scope.spawn(move || {
                for chunk in pts.chunks(CHUNK) {
                    fleet.process_batch(id, chunk).unwrap();
                }
            });
        }
    });
    (ids.len() * POINTS_PER_TENANT) as f64 / t0.elapsed().as_secs_f64()
}

#[derive(Serialize)]
struct FleetPoint {
    tenants: usize,
    workers: usize,
    pts_per_sec: f64,
    /// Pools spawned by the shared executor service over the run — by
    /// construction at most 1 however many tenants ingest.
    pools_spawned: usize,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct FleetBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    points_per_tenant: usize,
    chunk: usize,
    /// tenants × workers sweep, threaded producers (one per tenant).
    arms: Vec<FleetPoint>,
    /// Queue path: ingest → bounded queue → micro-batch drain, one tenant.
    queued_pts_per_sec: f64,
    /// Synchronous path on the same tenant/stream, for the queue overhead.
    direct_pts_per_sec: f64,
}

fn bench_tenants() -> Vec<usize> {
    match std::env::var("SPOT_BENCH_TENANTS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => vec![1, 4, 16],
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let train = random_points(1000, PHI, SEED ^ 7);

    let mut arms = Vec::new();
    for tenants in bench_tenants() {
        let streams: Vec<Vec<DataPoint>> = (0..tenants)
            .map(|t| random_points(POINTS_PER_TENANT, PHI, SEED ^ (100 + t as u64)))
            .collect();
        let mut serial_rate = 0.0;
        for workers in [0usize, 2] {
            let (fleet, ids) = build_fleet(tenants, workers, &train);
            let rate = fleet_throughput(&fleet, &ids, &streams);
            if workers == 0 {
                serial_rate = rate;
            }
            let pools = fleet.executor().pools_spawned();
            assert!(pools <= 1, "fleet must share at most one pool");
            println!(
                "tenants={tenants:>2} workers={workers}  {rate:>10.0} pts/s  ({:.2}x vs serial)  pools={pools}",
                rate / serial_rate
            );
            arms.push(FleetPoint {
                tenants,
                workers,
                pts_per_sec: rate,
                pools_spawned: pools,
                speedup_vs_serial: rate / serial_rate,
            });
        }
    }

    // Queue-path overhead: one tenant, producer thread ingesting into the
    // bounded queue while the main thread drains micro-batches.
    let (queued_rate, direct_rate) = {
        let pts = random_points(POINTS_PER_TENANT, PHI, SEED ^ 300);
        let (fleet, ids) = build_fleet(1, 0, &train);
        let id = &ids[0];
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let producer_fleet = fleet.clone();
            let pts = &pts;
            scope.spawn(move || {
                for p in pts {
                    producer_fleet.ingest(id, p.clone()).unwrap();
                }
            });
            let mut drained = 0usize;
            while drained < pts.len() {
                let batch = fleet.drain(id).unwrap();
                if batch.is_empty() {
                    std::thread::yield_now();
                }
                drained += batch.len();
            }
        });
        let queued = pts.len() as f64 / t0.elapsed().as_secs_f64();

        let (fleet, ids) = build_fleet(1, 0, &train);
        let t0 = Instant::now();
        for chunk in pts.chunks(CHUNK) {
            fleet.process_batch(&ids[0], chunk).unwrap();
        }
        let direct = pts.len() as f64 / t0.elapsed().as_secs_f64();
        println!(
            "queue path {queued:>10.0} pts/s   direct {direct:>10.0} pts/s  ({:.2}x overhead)",
            direct / queued
        );
        (queued, direct)
    };

    let out = FleetBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        points_per_tenant: POINTS_PER_TENANT,
        chunk: CHUNK,
        arms,
        queued_pts_per_sec: queued_rate,
        direct_pts_per_sec: direct_rate,
    };
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    let f = std::fs::File::create(&path).expect("create BENCH_fleet.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_fleet.json");
    println!("(baseline written to {})", path.display());
}
