//! Service-plane baseline: HTTP ingestion throughput, request latency
//! percentiles, and shed rate at accept saturation.
//!
//! Writes `BENCH_serve.json` at the repository root (fixed seed 42).
//!
//! * **Ingest throughput** — 4 tenants, one persistent client connection
//!   each, pushing batched points through `POST /tenants/{id}/ingest`.
//!   Queues are sized to hold the whole run and the pump is off, so the
//!   timed region is the wire + admission path (parse, validate,
//!   enqueue), not the detector; the drain runs untimed afterwards.
//! * **Latency** — round-trip percentiles for the two poles of the API:
//!   `GET /tenants/{id}/stats` (lock-free counters, no detector work)
//!   and a 16-point ingest POST.
//! * **Saturation** — a burst of short-lived connections against a
//!   deliberately small connection cap; the shed rate is read off the
//!   server's own accept counters.
//!
//! `SPOT_BENCH_SERVE_POINTS` (e.g. `"500"`) shrinks the run for CI
//! smoke; the default is 8000 points per tenant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{FleetConfig, SpotFleet, TenantId};
use spot_serve::{RetryPolicy, ServeClient, ServeConfig, SpotServer};
use spot_types::{DataPoint, DomainBounds};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const PHI: usize = 8;
const TENANTS: usize = 4;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(seed)
        .build_config()
        .unwrap()
}

fn point_count() -> usize {
    std::env::var("SPOT_BENCH_SERVE_POINTS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8_000)
}

fn tid(i: usize) -> TenantId {
    TenantId::new(format!("bench-{i}")).expect("valid tenant id")
}

/// A learned fleet whose per-tenant queues hold an entire run, served
/// with the pump off: admission cost only.
fn served_fleet(points_per_tenant: usize, train: &[DataPoint]) -> (SpotServer, SpotFleet) {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: points_per_tenant,
            micro_batch: 256,
        },
        Some(0),
    );
    for i in 0..TENANTS {
        fleet
            .register(tid(i), tenant_config(SEED + i as u64))
            .unwrap();
        fleet.learn(&tid(i), train).unwrap();
    }
    let server = SpotServer::builder(fleet.clone())
        .config(ServeConfig {
            workers: TENANTS + 2,
            max_connections: 32,
            ..ServeConfig::default()
        })
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    (server, fleet)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct IngestArm {
    tenants: usize,
    points_per_tenant: usize,
    batch: usize,
    requests: u64,
    requests_per_sec: f64,
    /// Admission rate over the wire: parse + validate + enqueue.
    ingest_pts_per_sec: f64,
}

#[derive(Serialize)]
struct LatencyArm {
    samples: usize,
    stats_p50_micros: u64,
    stats_p99_micros: u64,
    ingest_p50_micros: u64,
    ingest_p99_micros: u64,
}

#[derive(Serialize)]
struct SaturationArm {
    connection_cap: usize,
    burst: usize,
    accepted: u64,
    shed: u64,
    /// Fraction of the burst's connection attempts 503-shed at accept.
    shed_rate: f64,
}

#[derive(Serialize)]
struct ServeBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    ingest: IngestArm,
    latency: LatencyArm,
    saturation: SaturationArm,
}

fn ingest_arm(n: usize, train: &[DataPoint]) -> IngestArm {
    const BATCH: usize = 64;
    let (server, fleet) = served_fleet(n, train);
    let addr = server.local_addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..TENANTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ServeClient::new(addr);
                let id = tid(i);
                let points = random_points(n, PHI, SEED ^ (0xA00 + i as u64));
                for chunk in points.chunks(BATCH) {
                    let report = client.ingest(&id, chunk).unwrap();
                    assert_eq!(
                        report.enqueued as usize,
                        chunk.len(),
                        "queue sized for the run"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let requests = server.stats().requests;
    server.shutdown().unwrap(); // untimed: drains the backlog through the detector
    assert_eq!(fleet.stats().queued, 0);
    let total = (TENANTS * n) as f64;
    let arm = IngestArm {
        tenants: TENANTS,
        points_per_tenant: n,
        batch: BATCH,
        requests,
        requests_per_sec: requests as f64 / elapsed,
        ingest_pts_per_sec: total / elapsed,
    };
    println!(
        "ingest         {:>12.0} pts/s  ({:.0} req/s over {TENANTS} connections)",
        arm.ingest_pts_per_sec, arm.requests_per_sec
    );
    arm
}

fn latency_arm(samples: usize, train: &[DataPoint]) -> LatencyArm {
    let (server, _fleet) = served_fleet(samples * 16, train);
    let addr = server.local_addr();
    let mut client = ServeClient::new(addr);
    let id = tid(0);

    let mut stats_lat = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        client.tenant_stats(&id).unwrap();
        stats_lat.push(t0.elapsed().as_micros() as u64);
    }
    let mut ingest_lat = Vec::with_capacity(samples);
    let points = random_points(16, PHI, SEED ^ 0xC11);
    for _ in 0..samples {
        let t0 = Instant::now();
        client.ingest(&id, &points).unwrap();
        ingest_lat.push(t0.elapsed().as_micros() as u64);
    }
    server.shutdown().unwrap();

    stats_lat.sort_unstable();
    ingest_lat.sort_unstable();
    let arm = LatencyArm {
        samples,
        stats_p50_micros: percentile(&stats_lat, 0.50),
        stats_p99_micros: percentile(&stats_lat, 0.99),
        ingest_p50_micros: percentile(&ingest_lat, 0.50),
        ingest_p99_micros: percentile(&ingest_lat, 0.99),
    };
    println!(
        "latency        stats p50/p99 = {}/{} us   ingest(16) p50/p99 = {}/{} us",
        arm.stats_p50_micros, arm.stats_p99_micros, arm.ingest_p50_micros, arm.ingest_p99_micros
    );
    arm
}

fn saturation_arm(train: &[DataPoint]) -> SaturationArm {
    const CAP: usize = 8;
    const BURST: usize = 64;
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    fleet.register(tid(0), tenant_config(SEED)).unwrap();
    fleet.learn(&tid(0), train).unwrap();
    let server = SpotServer::builder(fleet)
        .config(ServeConfig {
            workers: 2,
            max_connections: CAP,
            ..ServeConfig::default()
        })
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // A burst of greedy clients, each holding its connection briefly so
    // the cap actually saturates. Sheds are expected — that is the point.
    let handles: Vec<_> = (0..BURST)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServeClient::new(addr).with_policy(RetryPolicy {
                    max_attempts: 1,
                    backoff_base: Duration::from_millis(1),
                    backoff_cap: Duration::from_millis(1),
                    retry_after_unit: Duration::from_millis(1),
                });
                let _ = client.healthy();
                std::thread::sleep(Duration::from_millis(20));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    server.shutdown().unwrap();
    let attempts = stats.accepted + stats.shed_connections;
    let arm = SaturationArm {
        connection_cap: CAP,
        burst: BURST,
        accepted: stats.accepted,
        shed: stats.shed_connections,
        shed_rate: if attempts == 0 {
            0.0
        } else {
            stats.shed_connections as f64 / attempts as f64
        },
    };
    println!(
        "saturation     {}/{} connections shed at cap {CAP} ({:.0}% shed rate)",
        arm.shed,
        attempts,
        arm.shed_rate * 100.0
    );
    arm
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = point_count();
    let train = random_points(1000, PHI, SEED ^ 7);

    let ingest = ingest_arm(n, &train);
    let latency = latency_arm((n / 16).clamp(50, 2000), &train);
    let saturation = saturation_arm(&train);

    let out = ServeBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        ingest,
        latency,
        saturation,
    };
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let f = std::fs::File::create(&path).expect("create BENCH_serve.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_serve.json");
    println!("(baseline written to {})", path.display());
}
