//! E8 — SST component ablation.
//!
//! Paper claim (Section II-C1): the three SST subsets "supplement each
//! other in terms of … capturing the right subspaces where projected
//! outliers are hidden". The probe workload is the sensor-field stream:
//! *spike* and *stuck* faults are visible in 1-dim projections (FS with
//! MaxDimension 1 suffices), but *correlation breaks* are marginally
//! plausible in every single dimension — only the joint 2-sensor
//! projection is anomalous, so FS(1) structurally cannot see them and the
//! learned components must supply the pair subspaces. Expected shape:
//! "FS only" catches spikes/stuck but ~0% of correlation breaks; adding OS
//! (exemplar-seeded pairs) recovers them; the full SST dominates.
//!
//! (A displaced-coordinate workload shows *no* spread between the rows —
//! each displaced dim is already 1-dim-visible; see EXPERIMENTS.md.)

use spot::{EvolutionConfig, Spot, SpotBuilder};
use spot_bench::emit;
use spot_data::{SensorConfig, SensorGenerator};
use spot_metrics::Table;
use spot_types::{DataPoint, LabeledRecord};
use std::collections::BTreeMap;

const TRAIN: usize = 2500;
const STREAM: usize = 8000;

fn build(generator: &SensorGenerator) -> Spot {
    SpotBuilder::new(generator.bounds())
        // MaxDimension 1: FS sees marginals only; pair subspaces must be
        // learned.
        .fs_max_dimension(1)
        .os_capacity(64)
        // Freeze online adaptation so the ablation stays clean.
        .evolution(EvolutionConfig {
            enabled: false,
            ..Default::default()
        })
        .seed(14)
        .build()
        .expect("config is valid")
}

fn per_family(spot: &mut Spot, records: &[LabeledRecord]) -> (BTreeMap<String, (u32, u32)>, f64) {
    let mut fams: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut fp = 0u32;
    let mut normals = 0u32;
    for r in records {
        let v = spot.process(&r.point).expect("dimensions match");
        if r.is_anomaly() {
            let e = fams.entry(r.label.category().to_string()).or_default();
            e.1 += 1;
            if v.outlier {
                e.0 += 1;
            }
        } else {
            normals += 1;
            if v.outlier {
                fp += 1;
            }
        }
    }
    (fams, fp as f64 / normals.max(1) as f64)
}

fn main() {
    let make_generator = || {
        SensorGenerator::new(SensorConfig {
            sensors: 24,
            fault_fraction: 0.03,
            seed: 61,
            ..Default::default()
        })
        .expect("config is valid")
    };
    let mut generator = make_generator();
    let train = generator.generate_normal(TRAIN);
    // Exemplars for OS: a handful of each fault family from the incident
    // archive (drawn from a side stream so the evaluation stream is
    // untouched).
    let mut archive = make_generator();
    archive.generate_normal(TRAIN); // advance identically to `generator`
    let exemplars: Vec<DataPoint> = archive
        .by_ref()
        .filter(|r| r.is_anomaly())
        .take(30)
        .map(|r| r.point)
        .collect();
    let records = generator.generate(STREAM);

    let mut table = Table::new(
        "E8: SST ablation on sensor faults (FS MaxDimension=1; corr-break is 2-dim-only)",
        &[
            "configuration",
            "|SST|",
            "corr-break",
            "spike",
            "stuck",
            "FPR",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        configuration: String,
        sst: usize,
        families: BTreeMap<String, (u32, u32)>,
        fpr: f64,
    }
    let mut artifact: Vec<Row> = Vec::new();

    let mut run = |name: &str, mut spot: Spot| {
        let sst = spot.sst().len();
        let (fams, fpr) = per_family(&mut spot, &records);
        let rate = |k: &str| {
            fams.get(k).map_or("-".to_string(), |(c, t)| {
                format!("{:.3}", *c as f64 / (*t).max(1) as f64)
            })
        };
        table.add_row(vec![
            name.to_string(),
            sst.to_string(),
            rate("corr-break"),
            rate("spike"),
            rate("stuck"),
            format!("{fpr:.4}"),
        ]);
        artifact.push(Row {
            configuration: name.to_string(),
            sst,
            families: fams,
            fpr,
        });
    };

    // FS only: learn (warms synopses + estimates scales), then drop the
    // learned components.
    let mut spot = build(&generator);
    spot.learn(&train).expect("learning succeeds");
    spot.clear_cs();
    spot.clear_os();
    run("FS only", spot);

    // FS + CS: plain unsupervised learning.
    let mut spot = build(&generator);
    spot.learn(&train).expect("learning succeeds");
    spot.clear_os();
    run("FS + CS", spot);

    // FS + OS: supervised exemplars, CS dropped.
    let mut spot = build(&generator);
    spot.learn_with_examples(&train, &exemplars)
        .expect("learning succeeds");
    spot.clear_cs();
    run("FS + OS", spot);

    // Full SST.
    let mut spot = build(&generator);
    spot.learn_with_examples(&train, &exemplars)
        .expect("learning succeeds");
    run("FS + CS + OS", spot);

    emit("e08_sst_ablation", &table, &artifact);
}
