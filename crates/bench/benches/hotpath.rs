//! Hot-path throughput baseline: packed fused synopsis path vs the seed's
//! boxed-slice two-pass semantics, at ϕ ≥ 20 with a populated SST.
//!
//! Writes `BENCH_hotpath.json` at the repository root so future PRs have a
//! fixed-seed perf baseline to compare against. The "boxed" numbers come
//! from an in-bench reimplementation of the seed's data path (`Box<[u16]>`
//! cell keys, separate update and PCS query passes, per-cell `Vec`
//! moments) — the code this PR replaced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::SpotBuilder;
use spot_stream::TimeModel;
use spot_subspace::Subspace;
use spot_synopsis::{Grid, SubspacePcs, SynopsisManager};
use spot_types::{DataPoint, DomainBounds, FxHashMap};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 24;
const SUBSPACES: usize = 64;
const WARMUP: usize = 2_000;
const MEASURE: usize = 20_000;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn sst(phi: usize, n: usize, seed: u64) -> Vec<Subspace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Subspace> = Vec::new();
    while out.len() < n {
        let s = spot_subspace::genetic::random_subspace(phi, 4, &mut rng);
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// The seed's data path, reconstructed: boxed coordinate keys, separate
/// update + query passes, per-cell heap-allocated moment vectors.
mod boxed {
    use super::*;

    pub struct Cell {
        pub d: f64,
        pub ls: Vec<f64>,
        pub ss: Vec<f64>,
        pub last_tick: u64,
    }

    pub struct Store {
        pub subspace: Subspace,
        pub cells: FxHashMap<Box<[u16]>, Cell>,
        pub cell_count: f64,
        pub uniform_sigma: f64,
    }

    impl Store {
        pub fn new(grid: &Grid, subspace: Subspace) -> Self {
            Store {
                subspace,
                cells: FxHashMap::default(),
                cell_count: grid.cell_count_in(&subspace),
                uniform_sigma: grid.uniform_sigma_in(&subspace),
            }
        }

        pub fn project(&self, base: &[u16]) -> Box<[u16]> {
            self.subspace.dims().map(|d| base[d]).collect()
        }

        pub fn update(&mut self, model: &TimeModel, now: u64, base: &[u16], p: &DataPoint) {
            let card = self.subspace.cardinality();
            let coords = self.project(base);
            let cell = self.cells.entry(coords).or_insert_with(|| Cell {
                d: 0.0,
                ls: vec![0.0; card],
                ss: vec![0.0; card],
                last_tick: now,
            });
            let f = model.decay_between(cell.last_tick, now);
            if f != 1.0 {
                cell.d *= f;
                for v in &mut cell.ls {
                    *v *= f;
                }
                for v in &mut cell.ss {
                    *v *= f;
                }
            }
            cell.last_tick = now;
            cell.d += 1.0;
            for (i, d) in self.subspace.dims().enumerate() {
                let v = p.value(d);
                cell.ls[i] += v;
                cell.ss[i] += v * v;
            }
        }

        pub fn rd_irsd(&self, model: &TimeModel, now: u64, base: &[u16], total: f64) -> (f64, f64) {
            let coords = self.project(base);
            let Some(cell) = self.cells.get(&coords) else {
                return (0.0, 0.0);
            };
            let d = cell.d * model.decay_between(cell.last_tick, now);
            let rd = if total > f64::EPSILON {
                d * self.cell_count / total
            } else {
                0.0
            };
            let irsd = if d < 2.0 {
                0.0
            } else {
                let mut acc = 0.0;
                for i in 0..cell.ls.len() {
                    let m = cell.ls[i] / d;
                    acc += (cell.ss[i] / d - m * m).max(0.0);
                }
                let sigma = acc.sqrt();
                if sigma > f64::EPSILON {
                    self.uniform_sigma / sigma
                } else {
                    f64::MAX
                }
            };
            (rd, irsd)
        }
    }
}

fn pts_per_sec(points: usize, start: Instant) -> f64 {
    points as f64 / start.elapsed().as_secs_f64()
}

#[derive(Serialize)]
struct HotpathBaseline {
    phi: usize,
    subspaces: usize,
    granularity: u16,
    seed: u64,
    points_measured: usize,
    /// Seed-style path: boxed keys, update pass + separate query pass.
    boxed_two_pass_pts_per_sec: f64,
    /// This PR's path: packed keys, fused single-pass update+query.
    packed_fused_pts_per_sec: f64,
    speedup: f64,
    /// End-to-end `Spot::process` (learned detector, ϕ=16 micro config).
    spot_process_phi16_pts_per_sec: f64,
    /// End-to-end `Spot::process_batch` on the same detector/stream.
    spot_process_batch_phi16_pts_per_sec: f64,
}

fn main() {
    let grid = Grid::new(DomainBounds::unit(PHI), 10).unwrap();
    let tm = TimeModel::new(2000, 0.01).unwrap();
    let subs = sst(PHI, SUBSPACES, SEED);
    let warm = random_points(WARMUP, PHI, SEED ^ 1);
    let pts = random_points(MEASURE, PHI, SEED ^ 2);

    // --- Boxed two-pass (seed semantics). ---
    let mut stores: Vec<boxed::Store> = subs.iter().map(|&s| boxed::Store::new(&grid, s)).collect();
    let mut now = 0u64;
    let mut total = 0.0f64;
    let decay = tm.decay();
    let ingest_boxed =
        |p: &DataPoint, stores: &mut Vec<boxed::Store>, now: &mut u64, total: &mut f64| {
            *now += 1;
            *total = *total * decay + 1.0;
            let base: Box<[u16]> = grid.base_coords(p).unwrap().into_boxed_slice();
            for store in stores.iter_mut() {
                store.update(&tm, *now, &base, p);
            }
            let mut min_rd = f64::INFINITY;
            for store in stores.iter() {
                let (rd, _) = store.rd_irsd(&tm, *now, &base, *total);
                min_rd = min_rd.min(rd);
            }
            min_rd
        };
    for p in &warm {
        ingest_boxed(p, &mut stores, &mut now, &mut total);
    }
    let t = Instant::now();
    let mut acc = 0.0;
    for p in &pts {
        acc += ingest_boxed(p, &mut stores, &mut now, &mut total);
    }
    let boxed_rate = pts_per_sec(MEASURE, t);
    std::hint::black_box(acc);

    // --- Packed fused single pass (this PR). ---
    let mut mgr = SynopsisManager::new(grid.clone(), tm);
    for &s in &subs {
        mgr.add_subspace(s);
    }
    let mut sink: Vec<SubspacePcs> = Vec::new();
    let mut now = 0u64;
    for p in &warm {
        now += 1;
        mgr.update_and_query(now, p, &mut sink).unwrap();
    }
    let t = Instant::now();
    let mut acc = 0.0;
    for p in &pts {
        now += 1;
        mgr.update_and_query(now, p, &mut sink).unwrap();
        let mut min_rd = f64::INFINITY;
        for e in &sink {
            min_rd = min_rd.min(e.pcs.rd);
        }
        acc += min_rd;
    }
    let packed_rate = pts_per_sec(MEASURE, t);
    std::hint::black_box(acc);

    // --- End-to-end detector, micro's ϕ=16 configuration. ---
    let dims = 16;
    let mut spot = SpotBuilder::new(DomainBounds::unit(dims))
        .fs_max_dimension(2)
        .seed(9)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, dims, 7)).unwrap();
    let stream = random_points(8192, dims, 8);
    let t = Instant::now();
    let mut outliers = 0usize;
    for p in &stream {
        outliers += spot.process(p).unwrap().outlier as usize;
    }
    let spot_rate = pts_per_sec(stream.len(), t);

    let mut spot_b = SpotBuilder::new(DomainBounds::unit(dims))
        .fs_max_dimension(2)
        .seed(9)
        .build()
        .unwrap();
    spot_b.learn(&random_points(1000, dims, 7)).unwrap();
    let t = Instant::now();
    let verdicts = spot_b.process_batch(&stream).unwrap();
    let spot_batch_rate = pts_per_sec(stream.len(), t);
    assert_eq!(verdicts.iter().filter(|v| v.outlier).count(), outliers);

    let out = HotpathBaseline {
        phi: PHI,
        subspaces: SUBSPACES,
        granularity: 10,
        seed: SEED,
        points_measured: MEASURE,
        boxed_two_pass_pts_per_sec: boxed_rate,
        packed_fused_pts_per_sec: packed_rate,
        speedup: packed_rate / boxed_rate,
        spot_process_phi16_pts_per_sec: spot_rate,
        spot_process_batch_phi16_pts_per_sec: spot_batch_rate,
    };
    println!(
        "boxed two-pass   : {:>12.0} pts/s\npacked fused     : {:>12.0} pts/s  ({:.2}x)\nspot process     : {:>12.0} pts/s\nspot batch       : {:>12.0} pts/s",
        out.boxed_two_pass_pts_per_sec,
        out.packed_fused_pts_per_sec,
        out.speedup,
        out.spot_process_phi16_pts_per_sec,
        out.spot_process_batch_phi16_pts_per_sec,
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json");
    let f = std::fs::File::create(&path).expect("create BENCH_hotpath.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_hotpath.json");
    println!("(baseline written to {})", path.display());
}
