//! E1 — Efficiency vs dimensionality.
//!
//! Paper claim (Sections II-B, III): the incrementally maintainable
//! synopses let SPOT "handle fast data streams". This experiment measures
//! detection-stage throughput (points/second) as the stream dimensionality
//! ϕ grows, against both full-space baselines. Expected shape: SPOT scales
//! with |SST| (≈ C(ϕ,2) at MaxDimension 2), the grid baseline with ϕ, and
//! the windowed kNN baseline with window × ϕ; SPOT stays within interactive
//! rates while exact kNN degrades fastest in absolute cost per point.

use spot::SpotBuilder;
use spot_baselines::fullspace::{FullSpaceConfig, FullSpaceGridDetector};
use spot_baselines::window_knn::{WindowKnnConfig, WindowKnnDetector};
use spot_bench::{emit, run_detector, RunOutcome};
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::Table;
use spot_types::{DomainBounds, StreamDetector};

const TRAIN: usize = 800;
const STREAM: usize = 3000;

fn main() {
    let mut table = Table::new(
        "E1: detection throughput (points/s) vs dimensionality",
        &["phi", "detector", "sst/state", "points/s", "us/point"],
    );
    let mut artifacts: Vec<RunOutcome> = Vec::new();

    for phi in [8usize, 16, 24, 32, 48] {
        let config = SyntheticConfig {
            dims: phi,
            outlier_fraction: 0.02,
            cluster_subspace_dims: 4.min(phi / 2),
            seed: 11,
            ..Default::default()
        };
        let mut generator = SyntheticGenerator::new(config).expect("config is valid");
        let train = generator.generate_normal(TRAIN);
        let records = generator.generate(STREAM);

        // SPOT.
        let mut spot = SpotBuilder::new(DomainBounds::unit(phi))
            .fs_max_dimension(2)
            .seed(1)
            .build()
            .expect("config is valid");
        spot.learn(&train).expect("learning succeeds");
        let sst_size = spot.sst().len();
        let out = run_detector(&mut spot, &records);
        table.add_row(vec![
            phi.to_string(),
            out.detector.clone(),
            format!("{sst_size} subspaces"),
            format!("{:.0}", out.throughput),
            format!("{:.1}", 1e6 * out.seconds / out.points as f64),
        ]);
        artifacts.push(out);

        // Full-space grid baseline.
        let mut full =
            FullSpaceGridDetector::new(DomainBounds::unit(phi), FullSpaceConfig::default())
                .expect("config is valid");
        StreamDetector::learn(&mut full, &train).expect("learning succeeds");
        let out = run_detector(&mut full, &records);
        table.add_row(vec![
            phi.to_string(),
            out.detector.clone(),
            format!("{} cells", full.live_cells()),
            format!("{:.0}", out.throughput),
            format!("{:.1}", 1e6 * out.seconds / out.points as f64),
        ]);
        artifacts.push(out);

        // Exact sliding-window kNN baseline.
        let mut knn = WindowKnnDetector::new(WindowKnnConfig {
            window: 1000,
            k: 5,
            radius: 0.3 * (phi as f64).sqrt(),
        })
        .expect("config is valid");
        StreamDetector::learn(&mut knn, &train).expect("learning succeeds");
        let out = run_detector(&mut knn, &records);
        table.add_row(vec![
            phi.to_string(),
            out.detector.clone(),
            format!("{} raw points", knn.buffered_points()),
            format!("{:.0}", out.throughput),
            format!("{:.1}", 1e6 * out.seconds / out.points as f64),
        ]);
        artifacts.push(out);
    }

    emit("e01_throughput_dims", &table, &artifacts);
}
