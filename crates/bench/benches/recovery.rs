//! Supervision-plane baseline: quarantine → recovered latency of the
//! self-healing path, and admission throughput of the overload policies
//! (Block / Shed / Sample) under a saturated per-tenant queue.
//!
//! Writes `BENCH_recovery.json` at the repository root (fixed seed 42).
//! Recovery trials use the deterministic fault-injection harness
//! (`FaultPlan::panic_at`) so every trial quarantines at the same stream
//! ordinal; the measured interval is the supervision pass that revives
//! the tenant from its rolling shadow checkpoint, including the
//! bit-exact detector rebuild and backlog transfer.
//!
//! `SPOT_BENCH_RECOVERY_TRIALS` (e.g. `"3"`) restricts the trial count
//! for CI smoke runs; the default is 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{
    FaultPlan, FleetConfig, OverloadPolicy, SpotFleet, Supervisor, SupervisorConfig, TenantId,
};
use spot_types::{DataPoint, DomainBounds, SpotError};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 8;
const SHADOW_EVERY: u64 = 256;
const PANIC_ORDINAL: u64 = 900;
const CHUNK: usize = 64;
const OVERLOAD_POINTS: usize = 20_000;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(seed)
        .build_config()
        .unwrap()
}

fn learned_fleet(tenants: usize, train: &[DataPoint]) -> (SpotFleet, Vec<TenantId>) {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 256,
            micro_batch: 256,
        },
        Some(0),
    );
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| TenantId::new(format!("tenant-{t:02}")).unwrap())
        .collect();
    for (t, id) in ids.iter().enumerate() {
        fleet
            .register(id.clone(), tenant_config(SEED ^ t as u64))
            .unwrap();
        fleet.learn(id, train).unwrap();
    }
    (fleet, ids)
}

#[derive(Serialize)]
struct RecoveryTrial {
    trial: usize,
    /// Stream ordinal (within the faulted tenant) of the injected panic.
    panic_ordinal: u64,
    /// Verdicts in the shadow → fault window (what replay must cover).
    points_lost: u64,
    /// Queued backlog transferred into the revived tenant.
    backlog_carried: u64,
    /// Wall-clock cost of the supervision pass that revives the tenant.
    recover_micros: u64,
}

#[derive(Serialize)]
struct OverloadArm {
    policy: String,
    /// Producer-side admission rate: points offered per second while a
    /// deliberately slow consumer keeps the bounded queue saturated.
    offered_pts_per_sec: f64,
    enqueued: u64,
    shed: u64,
    sampled_kept: u64,
}

#[derive(Serialize)]
struct RecoveryBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    shadow_every: u64,
    trials: Vec<RecoveryTrial>,
    median_recover_micros: u64,
    /// Block / Shed / Sample admission under a saturated queue.
    overload: Vec<OverloadArm>,
}

fn trial_count() -> usize {
    std::env::var("SPOT_BENCH_RECOVERY_TRIALS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(7)
}

/// One recovery trial: drive the faulted tenant into quarantine at
/// `PANIC_ORDINAL`, then time the supervision pass that revives it.
fn recovery_trial(trial: usize, train: &[DataPoint]) -> RecoveryTrial {
    let (fleet, ids) = learned_fleet(2, train);
    let faulted = &ids[0];
    let sup = Supervisor::new(
        fleet.clone(),
        SupervisorConfig {
            shadow_every: SHADOW_EVERY,
            ..SupervisorConfig::default()
        },
    );
    sup.tick(); // initial shadows

    fleet.arm_faults(FaultPlan::new().panic_at(faulted.clone(), PANIC_ORDINAL));

    let pts = random_points(
        PANIC_ORDINAL as usize + CHUNK,
        PHI,
        SEED ^ (500 + trial as u64),
    );
    let mut hit = false;
    for chunk in pts.chunks(CHUNK) {
        match fleet.process_batch(faulted, chunk) {
            Ok(_) => {
                sup.tick(); // rolls the shadow while healthy
            }
            Err(SpotError::TenantPoisoned { .. }) => {
                hit = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(hit, "injected panic never fired");
    // A little backlog for the revive path to carry over.
    for p in random_points(32, PHI, SEED ^ (700 + trial as u64)) {
        fleet.ingest(faulted, p).unwrap();
    }

    let t0 = Instant::now();
    let pass = sup.tick();
    let recover_micros = t0.elapsed().as_micros() as u64;
    assert_eq!(pass.recovered.len(), 1, "recovery must succeed first try");
    let report = &pass.recovered[0];
    fleet.disarm_faults();
    RecoveryTrial {
        trial,
        panic_ordinal: PANIC_ORDINAL,
        points_lost: report.points_lost,
        backlog_carried: report.backlog_carried,
        recover_micros,
    }
}

/// Saturated-queue admission: one producer offers `OVERLOAD_POINTS`
/// points under `policy` while the main thread drains micro-batches; the
/// bounded queue stays full most of the run, so the policy decides the
/// producer's fate (block, drop, or keep 1-in-k).
fn overload_arm(policy: OverloadPolicy, label: &str, train: &[DataPoint]) -> OverloadArm {
    let (fleet, ids) = learned_fleet(1, train);
    let id = &ids[0];
    fleet.set_overload_policy(id, policy).unwrap();
    let pts = random_points(OVERLOAD_POINTS, PHI, SEED ^ 900);

    let t0 = Instant::now();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let producer_fleet = fleet.clone();
        let pts = &pts;
        let done = &done;
        scope.spawn(move || {
            for p in pts {
                producer_fleet.ingest(id, p.clone()).unwrap();
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        });
        while !done.load(std::sync::atomic::Ordering::Acquire) || fleet.queue_len(id).unwrap() > 0 {
            if fleet.drain(id).unwrap().is_empty() {
                std::thread::yield_now();
            }
        }
    });
    let offered = pts.len() as f64 / t0.elapsed().as_secs_f64();

    let stats = fleet.stats();
    println!(
        "{label:<22} {offered:>10.0} offered pts/s  (shed {}, sampled-kept {})",
        stats.shed, stats.sampled_kept
    );
    OverloadArm {
        policy: label.to_string(),
        offered_pts_per_sec: offered,
        enqueued: stats.processed,
        shed: stats.shed,
        sampled_kept: stats.sampled_kept,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let train = random_points(1000, PHI, SEED ^ 7);

    // The injected panics are contained by the fleet's isolation layer;
    // keep the default hook from spraying their backtraces over the log.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut trials = Vec::new();
    for trial in 0..trial_count() {
        let t = recovery_trial(trial, &train);
        println!(
            "trial {:>2}: recovered in {:>7} us  (lost {:>4} verdicts, carried {} backlog)",
            t.trial, t.recover_micros, t.points_lost, t.backlog_carried
        );
        trials.push(t);
    }
    let median_recover_micros = {
        let mut xs: Vec<u64> = trials.iter().map(|t| t.recover_micros).collect();
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    println!("median recovery: {median_recover_micros} us");
    std::panic::set_hook(default_hook);

    let overload = vec![
        overload_arm(OverloadPolicy::Block, "block", &train),
        overload_arm(OverloadPolicy::Shed, "shed", &train),
        overload_arm(
            OverloadPolicy::Sample { keep_one_in: 8 },
            "sample-1-in-8",
            &train,
        ),
    ];

    let out = RecoveryBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        shadow_every: SHADOW_EVERY,
        trials,
        median_recover_micros,
        overload,
    };
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json");
    let f = std::fs::File::create(&path).expect("create BENCH_recovery.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_recovery.json");
    println!("(baseline written to {})", path.display());
}
