//! Checkpoint-overhead baseline: ingest throughput with periodic v2
//! checkpoints vs none, plus per-checkpoint capture/render cost and
//! snapshot size.
//!
//! Writes `BENCH_snapshot.json` at the repository root (fixed seed 42).
//! The capture arm holds the detector only for the state walk; JSON
//! rendering (the expensive half) happens after, exactly as
//! `SharedSpot::checkpoint` callers would do outside the lock — the two
//! are timed separately. A restore-and-continue check at the end keeps the
//! bench honest: the last checkpoint must resume bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{Spot, SpotBuilder};
use spot_types::{DataPoint, DomainBounds};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 16;
const TOTAL_POINTS: usize = 16_384;
const CHUNK: usize = 256;
const CHECKPOINT_EVERY: usize = 2_048;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn learned_spot() -> Spot {
    let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(SEED)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, PHI, SEED ^ 7)).unwrap();
    spot
}

#[derive(Serialize)]
struct SnapshotBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    points: usize,
    chunk: usize,
    checkpoint_every: usize,
    /// Plain ingest throughput, no checkpoints.
    baseline_pts_per_sec: f64,
    /// Ingest throughput with a capture + render every `checkpoint_every`
    /// points (capture and render both on the ingest thread — the
    /// worst case; SharedSpot deployments render off-lock).
    checkpointed_pts_per_sec: f64,
    /// Throughput cost of periodic checkpointing, percent.
    overhead_pct: f64,
    checkpoints_taken: usize,
    /// State walk (detector held) per checkpoint, milliseconds.
    capture_ms_mean: f64,
    capture_ms_max: f64,
    /// JSON render (detector free) per checkpoint, milliseconds.
    render_ms_mean: f64,
    render_ms_max: f64,
    snapshot_bytes: usize,
    /// Bit-exact resume verified against the uninterrupted detector.
    resume_verified: bool,
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pts = random_points(TOTAL_POINTS, PHI, SEED ^ 21);

    // Arm 1: no checkpoints.
    let mut baseline = learned_spot();
    let t0 = Instant::now();
    let mut baseline_verdicts = Vec::new();
    for chunk in pts.chunks(CHUNK) {
        baseline_verdicts.extend(baseline.process_batch(chunk).unwrap());
    }
    let baseline_rate = TOTAL_POINTS as f64 / t0.elapsed().as_secs_f64();

    // Arm 2: capture + render every CHECKPOINT_EVERY points.
    let mut checkpointed = learned_spot();
    let mut capture_ms = Vec::new();
    let mut render_ms = Vec::new();
    let mut last_json = String::new();
    let mut since_checkpoint = 0usize;
    let t0 = Instant::now();
    let mut verdicts = Vec::new();
    for chunk in pts.chunks(CHUNK) {
        verdicts.extend(checkpointed.process_batch(chunk).unwrap());
        since_checkpoint += chunk.len();
        if since_checkpoint >= CHECKPOINT_EVERY {
            since_checkpoint = 0;
            let t = Instant::now();
            let cp = checkpointed.checkpoint();
            capture_ms.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            last_json = serde_json::to_string(&cp).unwrap();
            render_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let checkpointed_rate = TOTAL_POINTS as f64 / t0.elapsed().as_secs_f64();

    // Honesty check: the final checkpoint resumes bit-identically.
    let tail = random_points(512, PHI, SEED ^ 33);
    let want = checkpointed.process_batch(&tail).unwrap();
    let mut resumed = spot::restore_from_json(&last_json).unwrap();
    let got = resumed.process_batch(&tail).unwrap();
    let resume_verified =
        want.len() == got.len() && want.iter().zip(&got).all(|(a, b)| a.bitwise_eq(b));
    assert!(resume_verified, "restored detector diverged");
    std::hint::black_box((&baseline_verdicts, &verdicts));

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let max = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
    let out = SnapshotBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        points: TOTAL_POINTS,
        chunk: CHUNK,
        checkpoint_every: CHECKPOINT_EVERY,
        baseline_pts_per_sec: baseline_rate,
        checkpointed_pts_per_sec: checkpointed_rate,
        overhead_pct: 100.0 * (1.0 - checkpointed_rate / baseline_rate),
        checkpoints_taken: capture_ms.len(),
        capture_ms_mean: mean(&capture_ms),
        capture_ms_max: max(&capture_ms),
        render_ms_mean: mean(&render_ms),
        render_ms_max: max(&render_ms),
        snapshot_bytes: last_json.len(),
        resume_verified,
    };
    println!(
        "ingest {baseline_rate:>9.0} pts/s plain | {checkpointed_rate:>9.0} pts/s with a \
         checkpoint every {CHECKPOINT_EVERY} pts ({:.1}% overhead)",
        out.overhead_pct
    );
    println!(
        "checkpoint: capture {:.2} ms mean / {:.2} ms max (detector held), render {:.2} ms mean \
         (off-lock), {} bytes",
        out.capture_ms_mean, out.capture_ms_max, out.render_ms_mean, out.snapshot_bytes
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_snapshot.json");
    let f = std::fs::File::create(&path).expect("create BENCH_snapshot.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_snapshot.json");
    println!("(baseline written to {})", path.display());
}
