//! Checkpoint-carrier baseline: ingest throughput with periodic
//! checkpoints (JSON carrier vs binary column carrier) against none,
//! plus fleet delta-checkpoint cost and verdict-archive throughput.
//!
//! Writes `BENCH_snapshot.json` at the repository root (fixed seed 42).
//! Arms:
//!
//! 1. **baseline** — plain ingest, no checkpoints.
//! 2. **json** — capture + JSON render every `CHECKPOINT_EVERY` points
//!    (the pre-binary carrier, kept for the comparison row).
//! 3. **binary** — capture + binary container encode at the same cadence;
//!    this is the headline `overhead_pct`.
//! 4. **fleet delta** — a fleet with one active tenant among many: full
//!    checkpoint size/time vs the chained delta generation.
//! 5. **archive** — columnar verdict archive append + bit-exact replay.
//!
//! Capture holds the detector only for the state walk; rendering (either
//! carrier) happens after, exactly as `SharedSpot::checkpoint` callers
//! do outside the lock — the two are timed separately. Restore checks at
//! the end keep the bench honest: the final binary container must resume
//! bit-identically, and the archive replay must reproduce the live
//! verdict stream bit-exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{Spot, SpotBuilder};
use spot_runtime::{CheckpointStore, SpotFleet, VerdictArchive};
use spot_types::{DataPoint, DomainBounds, TenantId};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 16;
const TOTAL_POINTS: usize = 16_384;
const CHUNK: usize = 256;
const CHECKPOINT_EVERY: usize = 2_048;

// Fleet-delta arm: many parked tenants, one active — the delta carries
// only what moved.
const FLEET_TENANTS: usize = 16;
const FLEET_PHI: usize = 8;
const FLEET_ACTIVE_POINTS: usize = 1_024;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn learned_spot() -> Spot {
    let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(SEED)
        .build()
        .unwrap();
    spot.learn(&random_points(1000, PHI, SEED ^ 7)).unwrap();
    spot
}

#[derive(Serialize)]
struct SnapshotBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    points: usize,
    chunk: usize,
    checkpoint_every: usize,
    /// Plain ingest throughput, no checkpoints.
    baseline_pts_per_sec: f64,
    /// Ingest throughput with a capture + binary encode every
    /// `checkpoint_every` points (both on the ingest thread — the worst
    /// case; SharedSpot deployments render off-lock). The headline.
    checkpointed_pts_per_sec: f64,
    /// Throughput cost of periodic binary checkpointing, percent.
    overhead_pct: f64,
    /// Same cadence on the JSON carrier, for the comparison row.
    json_pts_per_sec: f64,
    json_overhead_pct: f64,
    checkpoints_taken: usize,
    /// State walk (detector held) per checkpoint, milliseconds.
    capture_ms_mean: f64,
    capture_ms_max: f64,
    /// Binary container encode (detector free) per checkpoint, ms.
    render_ms_mean: f64,
    render_ms_max: f64,
    /// JSON render at the same cadence, ms.
    json_render_ms_mean: f64,
    /// JSON render time / binary encode time.
    render_speedup_vs_json: f64,
    /// Final binary container size; `json_bytes` is the same state on
    /// the JSON carrier.
    snapshot_bytes: usize,
    json_bytes: usize,
    /// Fleet-delta arm: full fleet checkpoint vs the chained delta with
    /// one active tenant of `fleet_tenants`.
    fleet_tenants: usize,
    fleet_full_bytes: u64,
    fleet_delta_bytes: u64,
    /// fleet_full_bytes / fleet_delta_bytes — the delta pays for what
    /// was dirtied, not fleet size.
    delta_size_ratio: f64,
    fleet_full_save_ms: f64,
    fleet_delta_save_ms: f64,
    /// Verdict archive: bytes per verdict on disk and append/replay
    /// throughput over the binary arm's verdict stream.
    archive_verdicts: usize,
    archive_bytes: u64,
    archive_append_pts_per_sec: f64,
    archive_replay_pts_per_sec: f64,
    archive_replay_verified: bool,
    /// Bit-exact resume from the final binary container verified against
    /// the uninterrupted detector.
    resume_verified: bool,
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pts = random_points(TOTAL_POINTS, PHI, SEED ^ 21);

    // Arm 1: no checkpoints.
    let mut baseline = learned_spot();
    let t0 = Instant::now();
    let mut baseline_verdicts = Vec::new();
    for chunk in pts.chunks(CHUNK) {
        baseline_verdicts.extend(baseline.process_batch(chunk).unwrap());
    }
    let baseline_rate = TOTAL_POINTS as f64 / t0.elapsed().as_secs_f64();

    // Arm 2: capture + JSON render every CHECKPOINT_EVERY points.
    let mut json_arm = learned_spot();
    let mut json_render_ms = Vec::new();
    let mut last_json = String::new();
    let mut since_checkpoint = 0usize;
    let t0 = Instant::now();
    for chunk in pts.chunks(CHUNK) {
        std::hint::black_box(json_arm.process_batch(chunk).unwrap());
        since_checkpoint += chunk.len();
        if since_checkpoint >= CHECKPOINT_EVERY {
            since_checkpoint = 0;
            let cp = json_arm.checkpoint();
            let t = Instant::now();
            last_json = serde_json::to_string(&cp).unwrap();
            json_render_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let json_rate = TOTAL_POINTS as f64 / t0.elapsed().as_secs_f64();

    // Arm 3 (headline): capture + binary container encode, same cadence.
    let mut checkpointed = learned_spot();
    let mut capture_ms = Vec::new();
    let mut render_ms = Vec::new();
    let mut last_bytes = Vec::new();
    let mut since_checkpoint = 0usize;
    let t0 = Instant::now();
    let mut verdicts = Vec::new();
    for chunk in pts.chunks(CHUNK) {
        verdicts.extend(checkpointed.process_batch(chunk).unwrap());
        since_checkpoint += chunk.len();
        if since_checkpoint >= CHECKPOINT_EVERY {
            since_checkpoint = 0;
            let t = Instant::now();
            let cp = checkpointed.checkpoint();
            capture_ms.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            last_bytes = cp.to_bytes();
            render_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let checkpointed_rate = TOTAL_POINTS as f64 / t0.elapsed().as_secs_f64();

    // Honesty check: the final binary container resumes bit-identically.
    let tail = random_points(512, PHI, SEED ^ 33);
    let want = checkpointed.process_batch(&tail).unwrap();
    let mut resumed = spot::restore_from_bytes(&last_bytes).unwrap();
    let got = resumed.process_batch(&tail).unwrap();
    let resume_verified =
        want.len() == got.len() && want.iter().zip(&got).all(|(a, b)| a.bitwise_eq(b));
    assert!(resume_verified, "restored detector diverged");
    std::hint::black_box(&baseline_verdicts);

    // Arm 4: fleet delta — FLEET_TENANTS parked tenants, one active.
    let fleet = SpotFleet::with_workers(Default::default(), Some(0));
    let train = random_points(400, FLEET_PHI, SEED ^ 41);
    for t in 0..FLEET_TENANTS {
        let id = TenantId::new(format!("bench-{t}")).unwrap();
        let config = SpotBuilder::new(DomainBounds::unit(FLEET_PHI))
            .fs_max_dimension(2)
            .seed(SEED ^ t as u64)
            .build_config()
            .unwrap();
        fleet.register(id.clone(), config).unwrap();
        fleet.learn(&id, &train).unwrap();
        fleet
            .process_batch(&id, &random_points(128, FLEET_PHI, SEED ^ (t as u64 + 51)))
            .unwrap();
    }
    let dir = temp_dir("delta");
    let store = CheckpointStore::open(&dir, 4).unwrap();
    let t = Instant::now();
    let full_gen = fleet.checkpoint_durable(&store).unwrap();
    let fleet_full_save_ms = t.elapsed().as_secs_f64() * 1e3;
    let active = TenantId::new("bench-0").unwrap();
    fleet
        .process_batch(
            &active,
            &random_points(FLEET_ACTIVE_POINTS, FLEET_PHI, SEED ^ 61),
        )
        .unwrap();
    let t = Instant::now();
    let delta_gen = fleet.checkpoint_durable_delta(&store).unwrap();
    let fleet_delta_save_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(store.is_delta(delta_gen).unwrap(), "delta arm wrote a full");
    let fleet_full_bytes = std::fs::metadata(dir.join(format!("fleet-{full_gen:08}.ckpt")))
        .unwrap()
        .len();
    let fleet_delta_bytes = std::fs::metadata(dir.join(format!("fleet-{delta_gen:08}.dck")))
        .unwrap()
        .len();
    // Honesty: the chain resolves to exactly the live fleet state.
    assert_eq!(
        store.load(delta_gen).unwrap().to_json(),
        fleet.checkpoint().to_json(),
        "delta chain resolution diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Arm 5: columnar verdict archive over the binary arm's stream.
    let dir = temp_dir("archive");
    let mut archive = VerdictArchive::open(&dir).unwrap();
    let t = Instant::now();
    for chunk in verdicts.chunks(CHUNK) {
        archive.append(chunk).unwrap();
    }
    archive.sync().unwrap();
    let archive_append_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let replay = VerdictArchive::replay(&dir).unwrap();
    let archive_replay_secs = t.elapsed().as_secs_f64();
    let archive_replay_verified = replay.verdicts.len() == verdicts.len()
        && replay
            .verdicts
            .iter()
            .zip(&verdicts)
            .all(|(a, b)| a.bitwise_eq(b));
    assert!(archive_replay_verified, "archive replay diverged");
    assert!(!replay.torn_tail, "archive tail torn without a crash");
    let archive_bytes = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum::<u64>();
    let _ = std::fs::remove_dir_all(&dir);

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let max = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
    let out = SnapshotBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        points: TOTAL_POINTS,
        chunk: CHUNK,
        checkpoint_every: CHECKPOINT_EVERY,
        baseline_pts_per_sec: baseline_rate,
        checkpointed_pts_per_sec: checkpointed_rate,
        overhead_pct: 100.0 * (1.0 - checkpointed_rate / baseline_rate),
        json_pts_per_sec: json_rate,
        json_overhead_pct: 100.0 * (1.0 - json_rate / baseline_rate),
        checkpoints_taken: capture_ms.len(),
        capture_ms_mean: mean(&capture_ms),
        capture_ms_max: max(&capture_ms),
        render_ms_mean: mean(&render_ms),
        render_ms_max: max(&render_ms),
        json_render_ms_mean: mean(&json_render_ms),
        render_speedup_vs_json: mean(&json_render_ms) / mean(&render_ms).max(1e-9),
        snapshot_bytes: last_bytes.len(),
        json_bytes: last_json.len(),
        fleet_tenants: FLEET_TENANTS,
        fleet_full_bytes,
        fleet_delta_bytes,
        delta_size_ratio: fleet_full_bytes as f64 / fleet_delta_bytes.max(1) as f64,
        fleet_full_save_ms,
        fleet_delta_save_ms,
        archive_verdicts: verdicts.len(),
        archive_bytes,
        archive_append_pts_per_sec: verdicts.len() as f64 / archive_append_secs.max(1e-9),
        archive_replay_pts_per_sec: verdicts.len() as f64 / archive_replay_secs.max(1e-9),
        archive_replay_verified,
        resume_verified,
    };
    println!(
        "ingest {baseline_rate:>9.0} pts/s plain | {checkpointed_rate:>9.0} pts/s with a binary \
         checkpoint every {CHECKPOINT_EVERY} pts ({:.1}% overhead; json carrier {:.1}%)",
        out.overhead_pct, out.json_overhead_pct
    );
    println!(
        "checkpoint: capture {:.2} ms mean / {:.2} ms max (detector held), binary encode {:.2} ms \
         mean vs json render {:.2} ms ({:.1}x), {} bytes vs {} json",
        out.capture_ms_mean,
        out.capture_ms_max,
        out.render_ms_mean,
        out.json_render_ms_mean,
        out.render_speedup_vs_json,
        out.snapshot_bytes,
        out.json_bytes
    );
    println!(
        "fleet delta: full {} bytes / delta {} bytes ({:.1}x, {} tenants, 1 active), save {:.2} \
         ms vs {:.2} ms",
        out.fleet_full_bytes,
        out.fleet_delta_bytes,
        out.delta_size_ratio,
        out.fleet_tenants,
        out.fleet_full_save_ms,
        out.fleet_delta_save_ms
    );
    println!(
        "archive: {} verdicts in {} bytes, append {:.0} pts/s, replay {:.0} pts/s (bit-exact)",
        out.archive_verdicts,
        out.archive_bytes,
        out.archive_append_pts_per_sec,
        out.archive_replay_pts_per_sec
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_snapshot.json");
    let f = std::fs::File::create(&path).expect("create BENCH_snapshot.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_snapshot.json");
    println!("(baseline written to {})", path.display());
}
