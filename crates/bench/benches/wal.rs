//! Durable-ingestion WAL baseline: append throughput per fsync policy,
//! and crash-recovery replay rate.
//!
//! Writes `BENCH_wal.json` at the repository root (fixed seed 42).
//!
//! * **Append arms** — one walled tenant per [`FsyncPolicy`]
//!   (`EveryRecord` / `EveryN(256)` / `OnRotate`); the timed region is
//!   pure admission (`try_ingest`: checksummed frame append + enqueue)
//!   into a queue sized to hold the whole run, drained outside the
//!   timer. `EveryRecord` runs a tenth of the points — it is the
//!   pay-per-point durability ceiling, not a throughput configuration.
//! * **Recovery** — a log of `points` records with a checkpoint at
//!   watermark 0 is recovered cold ([`SpotFleet::recover_with`]); the
//!   replay rate includes the full detector re-derivation, which is the
//!   honest cost of closing the crash window.
//!
//! `SPOT_BENCH_WAL_POINTS` (e.g. `"2000"`) shrinks the run for CI smoke;
//! the default is 20000.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{CheckpointStore, FleetConfig, FsyncPolicy, SpotFleet, TenantId, WalTuning};
use spot_synopsis::ExecutorHandle;
use spot_types::{DataPoint, DomainBounds};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEED: u64 = 42;
const PHI: usize = 8;

fn random_points(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(seed)
        .build_config()
        .unwrap()
}

fn point_count() -> usize {
    std::env::var("SPOT_BENCH_WAL_POINTS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20_000)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One learned tenant on a serial fleet whose queue holds `capacity`
/// points, writing its WAL under `dir/wal`.
fn walled_fleet(
    dir: &Path,
    tuning: WalTuning,
    capacity: usize,
    train: &[DataPoint],
) -> (SpotFleet, TenantId) {
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: capacity,
            micro_batch: 256,
        },
        Some(0),
    );
    let id = TenantId::new("bench").expect("valid tenant id");
    fleet.register(id.clone(), tenant_config(SEED)).unwrap();
    fleet.learn(&id, train).unwrap();
    fleet.enable_wal(dir.join("wal"), tuning).unwrap();
    (fleet, id)
}

#[derive(Serialize)]
struct AppendArm {
    policy: String,
    records: usize,
    /// Admission rate of the walled path: frame encode + checksum +
    /// append (+ fsync per policy) + enqueue, per second.
    append_pts_per_sec: f64,
    /// Live segment files when the run ended (rotation is part of the
    /// measured path).
    segments: usize,
}

#[derive(Serialize)]
struct RecoveryArm {
    records: usize,
    /// Cold `SpotFleet::recover` wall time: checkpoint restore + full
    /// WAL tail replay through the drain path.
    recover_micros: u64,
    /// Records re-derived per second during that recovery.
    replay_pts_per_sec: f64,
}

#[derive(Serialize)]
struct WalBaseline {
    seed: u64,
    cores: usize,
    phi: usize,
    segment_bytes: u64,
    append: Vec<AppendArm>,
    recovery: RecoveryArm,
}

fn append_arm(policy: FsyncPolicy, label: &str, n: usize, train: &[DataPoint]) -> AppendArm {
    let dir = temp_dir(label);
    let tuning = WalTuning {
        fsync: policy,
        ..WalTuning::default()
    };
    let (fleet, id) = walled_fleet(&dir, tuning, n, train);
    let pts = random_points(n, PHI, SEED ^ 0xA99);

    let t0 = Instant::now();
    for p in pts {
        assert!(fleet.try_ingest(&id, p).unwrap(), "queue sized for the run");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let segments = fleet.wal_segment_count(&id).unwrap().unwrap();
    fleet.drain_fully(&id).unwrap(); // untimed: this is the detector's cost
    let append_pts_per_sec = n as f64 / elapsed;
    println!("{label:<14} {append_pts_per_sec:>12.0} append pts/s  ({segments} segments)");
    std::fs::remove_dir_all(&dir).unwrap();
    AppendArm {
        policy: label.to_string(),
        records: n,
        append_pts_per_sec,
        segments,
    }
}

fn recovery_arm(n: usize, train: &[DataPoint]) -> RecoveryArm {
    let dir = temp_dir("recover");
    let tuning = WalTuning {
        fsync: FsyncPolicy::EveryN(256),
        ..WalTuning::default()
    };
    let (fleet, id) = walled_fleet(&dir, tuning, n, train);
    let store = CheckpointStore::open(&dir, 2).unwrap();
    fleet.checkpoint_durable(&store).unwrap(); // watermark 0: replay everything
    for p in random_points(n, PHI, SEED ^ 0xB11) {
        fleet.ingest(&id, p).unwrap();
        if fleet.queue_len(&id).unwrap() >= 256 {
            fleet.drain_fully(&id).unwrap();
        }
    }
    fleet.drain_fully(&id).unwrap();
    drop(fleet); // crash

    let t0 = Instant::now();
    let (recovered, recovery) = SpotFleet::recover_with(
        &dir,
        FleetConfig {
            queue_capacity: 256,
            micro_batch: 256,
        },
        tuning,
        ExecutorHandle::serial(),
        2,
    )
    .unwrap();
    let recover_micros = t0.elapsed().as_micros() as u64;
    assert_eq!(recovery.total_replayed(), n as u64);
    assert_eq!(recovered.tenant_stats(&id).unwrap().processed, n as u64);
    let replay_pts_per_sec = n as f64 / (recover_micros as f64 / 1e6);
    println!(
        "recovery       {replay_pts_per_sec:>12.0} replay pts/s  ({n} records in {recover_micros} us)"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    RecoveryArm {
        records: n,
        recover_micros,
        replay_pts_per_sec,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = point_count();
    let train = random_points(1000, PHI, SEED ^ 7);

    let append = vec![
        // EveryRecord pays one fsync per point: a durability ceiling, so
        // a tenth of the volume keeps the arm honest but bounded.
        append_arm(
            FsyncPolicy::EveryRecord,
            "every-record",
            n.div_ceil(10),
            &train,
        ),
        append_arm(FsyncPolicy::EveryN(256), "every-256", n, &train),
        append_arm(FsyncPolicy::OnRotate, "on-rotate", n, &train),
    ];
    let recovery = recovery_arm(n, &train);

    let out = WalBaseline {
        seed: SEED,
        cores,
        phi: PHI,
        segment_bytes: WalTuning::DEFAULT_SEGMENT_BYTES,
        append,
        recovery,
    };
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wal.json");
    let f = std::fs::File::create(&path).expect("create BENCH_wal.json");
    serde_json::to_writer_pretty(f, &out).expect("write BENCH_wal.json");
    println!("(baseline written to {})", path.display());
}
