//! E2 — Scalability over stream length.
//!
//! Paper claim (Section III): the decaying cell summaries are maintained
//! incrementally, so per-point cost — and, with pruning, memory — must stay
//! flat as the stream grows. This experiment streams increasing numbers of
//! points through one SPOT instance and reports throughput, per-point
//! latency and live synopsis state at each checkpoint. Expected shape: flat
//! throughput, plateaued cell counts (stationary stream + pruning).

use spot::SpotBuilder;
use spot_bench::{emit, results_dir};
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::Table;
use spot_types::DomainBounds;
use std::time::Instant;

const PHI: usize = 16;
const CHECKPOINTS: [usize; 4] = [10_000, 25_000, 50_000, 100_000];

fn main() {
    let config = SyntheticConfig {
        dims: PHI,
        outlier_fraction: 0.02,
        seed: 13,
        ..Default::default()
    };
    let mut generator = SyntheticGenerator::new(config).expect("config is valid");
    let train = generator.generate_normal(1000);

    let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(2)
        .build()
        .expect("config is valid");
    spot.learn(&train).expect("learning succeeds");

    let mut table = Table::new(
        "E2: scalability over stream length (phi=16, MaxDimension=2)",
        &[
            "points",
            "points/s (segment)",
            "us/point",
            "base cells",
            "proj cells",
            "approx KiB",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        points: usize,
        throughput: f64,
        us_per_point: f64,
        base_cells: usize,
        projected_cells: usize,
        bytes: usize,
    }
    let mut artifact: Vec<Row> = Vec::new();

    let mut processed = 0usize;
    for &target in &CHECKPOINTS {
        let segment = target - processed;
        let started = Instant::now();
        for record in generator.by_ref().take(segment) {
            spot.process(&record.point).expect("dimensions match");
        }
        let secs = started.elapsed().as_secs_f64();
        processed = target;
        let fp = spot.footprint();
        let throughput = segment as f64 / secs;
        table.add_row(vec![
            target.to_string(),
            format!("{throughput:.0}"),
            format!("{:.1}", 1e6 * secs / segment as f64),
            fp.base_cells.to_string(),
            fp.projected_cells.to_string(),
            (fp.approx_bytes / 1024).to_string(),
        ]);
        artifact.push(Row {
            points: target,
            throughput,
            us_per_point: 1e6 * secs / segment as f64,
            base_cells: fp.base_cells,
            projected_cells: fp.projected_cells,
            bytes: fp.approx_bytes,
        });
    }

    emit("e02_scalability_length", &table, &artifact);
    println!("(figures data at {})", results_dir().display());
}
