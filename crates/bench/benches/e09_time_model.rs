//! E9 — The (ω, ε) time model vs the exact sliding window.
//!
//! Paper claim (Section II-A): the (ω, ε) model "is an approximation of
//! [the] conventional window-based model … with an approximation factor of
//! ε", while keeping **no** in-window data and only the latest snapshot.
//! This experiment runs a bursty arrival process through both models and
//! measures:
//!
//! * the per-point guarantee — a point that slid out of the ω-window weighs
//!   at most ε (asserted; this is the paper's literal statement),
//! * the *mass* fraction held by expired points under sustained arrivals —
//!   converges to exactly ε in steady state, with transient excursions
//!   after rate changes (reported as median/max),
//! * the relative error of the decayed estimate of the window count under
//!   rate changes, and the memory of both models.
//!
//! Expected shape: median expired fraction ≈ ε; estimate error shrinks with
//! ε; the decayed counter stays O(1) bytes while the window buffer is O(ω).

use spot_bench::emit;
use spot_metrics::Table;
use spot_stream::{DecayedCounter, TimeModel};
use std::collections::VecDeque;

const OMEGA: u64 = 1000;
const TICKS: u64 = 20_000;

/// Bursty arrival pattern: points per tick alternates between phases
/// (including a silent phase, where the exact window empties entirely).
fn arrivals_at(t: u64) -> u64 {
    match (t / 2500) % 4 {
        0 => 1,
        1 => 3,
        2 => 0,
        _ => 2,
    }
}

fn main() {
    let mut table = Table::new(
        "E9: (omega, epsilon) model vs exact sliding window (omega=1000, bursty arrivals)",
        &[
            "epsilon",
            "median expired mass",
            "max expired mass",
            "mean |rel err|",
            "p95 |rel err|",
            "decayed bytes",
            "window bytes",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        epsilon: f64,
        median_expired_fraction: f64,
        max_expired_fraction: f64,
        mean_rel_err: f64,
        p95_rel_err: f64,
        decayed_bytes: usize,
        window_bytes: usize,
    }
    let mut artifact: Vec<Row> = Vec::new();

    for &epsilon in &[0.2f64, 0.1, 0.05, 0.01, 0.001] {
        let model = TimeModel::new(OMEGA, epsilon).expect("parameters are valid");

        // Per-point guarantee (the paper's statement), asserted outright.
        assert!(model.weight_after(OMEGA) <= epsilon * (1.0 + 1e-9));
        assert!(model.weight_after(OMEGA * 3) <= epsilon * (1.0 + 1e-9));

        let mut decayed = DecayedCounter::new();
        let mut window: VecDeque<u64> = VecDeque::new();
        let mut all_arrivals: VecDeque<u64> = VecDeque::new();

        let mut fractions: Vec<f64> = Vec::new();
        let mut errors: Vec<f64> = Vec::new();
        // Normalization: a steady unit-rate stream has decayed weight
        // steady_state vs window count omega.
        let scale = OMEGA as f64 / model.steady_state_weight();

        for t in 0..TICKS {
            for _ in 0..arrivals_at(t) {
                decayed.add(&model, t, 1.0);
                window.push_back(t);
                all_arrivals.push_back(t);
            }
            while window
                .front()
                .is_some_and(|&a| t.saturating_sub(a) >= OMEGA)
            {
                window.pop_front();
            }
            // Cap the exact tally's history: beyond 6x omega the weights
            // are numerically negligible for every epsilon tested.
            while all_arrivals.front().is_some_and(|&a| t - a > 6 * OMEGA) {
                all_arrivals.pop_front();
            }
            if t < OMEGA || t % 50 != 0 {
                continue;
            }
            // Only judge the mass fraction under sustained arrivals (a full
            // window); during the silent phase the window empties and the
            // fraction is trivially 1.
            if window.len() >= OMEGA as usize {
                let mut live = 0.0;
                let mut expired = 0.0;
                for &a in &all_arrivals {
                    let w = model.weight_after(t - a);
                    if t - a >= OMEGA {
                        expired += w;
                    } else {
                        live += w;
                    }
                }
                if live + expired > 0.0 {
                    fractions.push(expired / (live + expired));
                }
                // Window-count estimate from the decayed counter.
                let estimate = decayed.value_at(&model, t) * scale;
                let truth = window.len() as f64;
                errors.push((estimate - truth).abs() / truth);
            }
        }
        let sorted = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        };
        let fractions = sorted(fractions);
        let errors = sorted(errors);
        let median_fraction = fractions.get(fractions.len() / 2).copied().unwrap_or(0.0);
        let max_fraction = fractions.last().copied().unwrap_or(0.0);
        let mean_err = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let p95 = errors.get(errors.len() * 95 / 100).copied().unwrap_or(0.0);
        let decayed_bytes = std::mem::size_of::<DecayedCounter>();
        let window_bytes = OMEGA as usize * std::mem::size_of::<u64>();
        table.add_row(vec![
            format!("{epsilon}"),
            format!("{median_fraction:.4}"),
            format!("{max_fraction:.4}"),
            format!("{mean_err:.4}"),
            format!("{p95:.4}"),
            decayed_bytes.to_string(),
            window_bytes.to_string(),
        ]);
        // Steady state converges to epsilon; allow transient excursions
        // after rate switches.
        assert!(
            median_fraction <= epsilon * 1.5 + 1e-6,
            "median expired fraction {median_fraction} is far above epsilon {epsilon}"
        );
        artifact.push(Row {
            epsilon,
            median_expired_fraction: median_fraction,
            max_expired_fraction: max_fraction,
            mean_rel_err: mean_err,
            p95_rel_err: p95,
            decayed_bytes,
            window_bytes,
        });
    }

    emit("e09_time_model", &table, &artifact);
}
