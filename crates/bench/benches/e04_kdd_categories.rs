//! E4 — Effectiveness on the KDD-Cup'99-like intrusion stream.
//!
//! Paper claim (Sections III, IV): SPOT is effective on "real-life
//! streaming data sets"; the canonical one for this literature is network
//! intrusion data. Using the simulated KDD stream (DESIGN.md §3), SPOT
//! learns with a few labeled exemplars per attack family (supervised OS)
//! and is compared per family against the baselines, at two attack mixes.
//! Expected shape: rare families (probe/R2L/U2R) detected near-perfectly
//! with a ~1-2% false-alarm rate; the *high-rate* DoS flood saturates its
//! own cells and washes out for every density-based method — the classic
//! blind spot, quantified by the contrast between the skewed and the
//! rare-attack mixes; kNN is competitive on large-displacement families,
//! weaker on the 2-dim R2L signature; the full-space grid floods alarms.

use spot::SpotBuilder;
use spot_baselines::fullspace::{FullSpaceConfig, FullSpaceGridDetector};
use spot_baselines::window_knn::{WindowKnnConfig, WindowKnnDetector};
use spot_bench::emit;
use spot_data::{AttackKind, KddConfig, KddGenerator, NUM_FEATURES};
use spot_metrics::Table;
use spot_types::{Detection, DomainBounds, LabeledRecord, StreamDetector};
use std::collections::BTreeMap;

const TRAIN: usize = 2000;
const STREAM: usize = 12_000;

#[derive(Default, Clone, serde::Serialize)]
struct FamilyStats {
    caught: u32,
    total: u32,
}

fn per_family<F>(
    detector_name: &str,
    records: &[LabeledRecord],
    mut process: F,
) -> (Table, BTreeMap<String, FamilyStats>, f64)
where
    F: FnMut(&LabeledRecord) -> Detection,
{
    let mut families: BTreeMap<String, FamilyStats> = BTreeMap::new();
    let mut false_alarms = 0u32;
    let mut normals = 0u32;
    for r in records {
        let d = process(r);
        if r.is_anomaly() {
            let e = families.entry(r.label.category().to_string()).or_default();
            e.total += 1;
            if d.outlier {
                e.caught += 1;
            }
        } else {
            normals += 1;
            if d.outlier {
                false_alarms += 1;
            }
        }
    }
    let fpr = false_alarms as f64 / normals.max(1) as f64;
    let mut table = Table::new(
        format!("E4: per-family detection on KDD-like stream — {detector_name}"),
        &["family", "caught", "total", "detection rate"],
    );
    for (family, s) in &families {
        table.add_row(vec![
            family.clone(),
            s.caught.to_string(),
            s.total.to_string(),
            format!("{:.3}", s.caught as f64 / s.total.max(1) as f64),
        ]);
    }
    table.add_row(vec![
        "(false alarms)".into(),
        false_alarms.to_string(),
        normals.to_string(),
        format!("{fpr:.4}"),
    ]);
    (table, families, fpr)
}

fn main() {
    let mut generator = KddGenerator::new(KddConfig {
        attack_fraction: 0.03,
        seed: 404,
        ..Default::default()
    })
    .expect("config is valid");
    let train = generator.generate_normal(TRAIN);
    let mut exemplars = Vec::new();
    for kind in AttackKind::ALL {
        exemplars.push(generator.attack_exemplar(kind));
        exemplars.push(generator.attack_exemplar(kind));
    }
    let records = generator.generate(STREAM);

    let mut artifact: BTreeMap<String, BTreeMap<String, FamilyStats>> = BTreeMap::new();

    // SPOT (supervised: exemplars seed OS).
    let mut spot = SpotBuilder::new(DomainBounds::unit(NUM_FEATURES))
        .fs_max_dimension(2)
        .os_capacity(32)
        .seed(4)
        .build()
        .expect("config is valid");
    spot.learn_with_examples(&train, &exemplars)
        .expect("learning succeeds");
    let (table, fams, fpr) = per_family("spot (supervised)", &records, |r| {
        StreamDetector::process(&mut spot, &r.point)
    });
    table.print();
    println!("spot fpr: {fpr:.4}\n");
    artifact.insert("spot".into(), fams);

    // Full-space grid.
    let mut full =
        FullSpaceGridDetector::new(DomainBounds::unit(NUM_FEATURES), FullSpaceConfig::default())
            .expect("config is valid");
    StreamDetector::learn(&mut full, &train).expect("learning succeeds");
    let (table, fams, fpr) = per_family("fullspace-grid", &records, |r| full.process(&r.point));
    table.print();
    println!("fullspace fpr: {fpr:.4}\n");
    artifact.insert("fullspace-grid".into(), fams);

    // Windowed kNN.
    let mut knn = WindowKnnDetector::new(WindowKnnConfig {
        window: 1500,
        k: 5,
        radius: 0.35,
    })
    .expect("config is valid");
    StreamDetector::learn(&mut knn, &train).expect("learning succeeds");
    let (table, fams, fpr) = per_family("window-knn", &records, |r| knn.process(&r.point));
    table.print();
    println!("window-knn fpr: {fpr:.4}\n");
    artifact.insert("window-knn".into(), fams);

    // SPOT again at a rare-attack mix: quantifies how much of the DoS loss
    // above is the rate effect (a flood saturating its own cells) rather
    // than a blind signature.
    let mut generator = KddGenerator::new(KddConfig {
        attack_fraction: 0.01,
        family_weights: [0.4, 0.25, 0.2, 0.15],
        seed: 404,
    })
    .expect("config is valid");
    let train = generator.generate_normal(TRAIN);
    let mut exemplars = Vec::new();
    for kind in AttackKind::ALL {
        exemplars.push(generator.attack_exemplar(kind));
        exemplars.push(generator.attack_exemplar(kind));
    }
    let records = generator.generate(STREAM);
    let mut spot = SpotBuilder::new(DomainBounds::unit(NUM_FEATURES))
        .fs_max_dimension(2)
        .os_capacity(32)
        .seed(4)
        .build()
        .expect("config is valid");
    spot.learn_with_examples(&train, &exemplars)
        .expect("learning succeeds");
    let (table, fams, fpr) = per_family("spot (supervised, rare-attack mix)", &records, |r| {
        StreamDetector::process(&mut spot, &r.point)
    });
    println!("spot (rare mix) fpr: {fpr:.4}");
    artifact.insert("spot-rare-mix".into(), fams);
    emit("e04_kdd_categories", &table, &artifact);
}
