//! E7 — SST self-evolution and OS growth under concept drift.
//!
//! Paper claim (Section II-C2): CS self-evolution and the online growth of
//! OS let SPOT "cope with dynamics of data streams and respond to the
//! possible concept drift". This experiment streams an abruptly drifting
//! workload through an adaptive SPOT (evolution + drift response on) and a
//! frozen one (both off), reporting windowed F1 over time. Expected shape:
//! both drop at the change point; the adaptive instance recovers toward its
//! pre-drift level while the frozen one stays degraded.

use spot::{DriftConfig, EvolutionConfig, Spot, SpotBuilder};
use spot_bench::emit;
use spot_data::{DriftKind, DriftingGenerator, SyntheticConfig};
use spot_metrics::Table;
use spot_types::{DomainBounds, LabeledRecord};

const PHI: usize = 12;
const DRIFT_AT: u64 = 6000;
const STREAM: usize = 12_000;
const WINDOW: usize = 1500;

fn windowed_f1(spot: &mut Spot, records: &[LabeledRecord]) -> Vec<f64> {
    let mut out = Vec::new();
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    for (i, r) in records.iter().enumerate() {
        let v = spot.process(&r.point).expect("dimensions match");
        match (v.outlier, r.is_anomaly()) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
        if (i + 1) % WINDOW == 0 {
            let p = tp as f64 / (tp + fp).max(1) as f64;
            let r_ = tp as f64 / (tp + fn_).max(1) as f64;
            out.push(if p + r_ > 0.0 {
                2.0 * p * r_ / (p + r_)
            } else {
                0.0
            });
            tp = 0;
            fp = 0;
            fn_ = 0;
        }
    }
    out
}

fn build(adaptive: bool) -> Spot {
    let mut builder = SpotBuilder::new(DomainBounds::unit(PHI))
        .fs_max_dimension(2)
        .seed(12);
    builder = if adaptive {
        builder
            .evolution(EvolutionConfig {
                period: 500,
                ..Default::default()
            })
            .drift(DriftConfig::default())
    } else {
        builder
            .evolution(EvolutionConfig {
                enabled: false,
                ..Default::default()
            })
            .drift(DriftConfig {
                enabled: false,
                ..Default::default()
            })
    };
    builder.build().expect("config is valid")
}

fn main() {
    let before = SyntheticConfig {
        dims: PHI,
        outlier_fraction: 0.03,
        // 3-dim planted subspaces: beyond FS(MaxDimension=2), so the
        // learned components carry the detection and their freshness is
        // what the experiment isolates.
        outlier_subspace_dims: 3,
        seed: 37,
        ..Default::default()
    };
    let mut after = before.clone();
    after.seed = 38;
    after.center_range = (0.7, 0.95); // new behaviour in fresh territory
    let mut source = DriftingGenerator::new(before, after, DriftKind::Abrupt { at: DRIFT_AT })
        .expect("configs are valid");
    let train = source.before_mut().generate_normal(1500);
    let records = source.generate(STREAM);

    let mut adaptive = build(true);
    let mut frozen = build(false);
    adaptive.learn(&train).expect("learning succeeds");
    frozen.learn(&train).expect("learning succeeds");

    let f1_adaptive = windowed_f1(&mut adaptive, &records);
    let f1_frozen = windowed_f1(&mut frozen, &records);

    let mut table = Table::new(
        "E7: windowed F1 under abrupt drift (drift at 6000)",
        &["window end", "adaptive F1", "frozen F1", "phase"],
    );
    for (i, (fa, ff)) in f1_adaptive.iter().zip(&f1_frozen).enumerate() {
        let end = (i + 1) * WINDOW;
        table.add_row(vec![
            end.to_string(),
            format!("{fa:.3}"),
            format!("{ff:.3}"),
            if end as u64 <= DRIFT_AT {
                "pre-drift".into()
            } else {
                "post-drift".to_string()
            },
        ]);
    }

    #[derive(serde::Serialize)]
    struct Artifact {
        window: usize,
        drift_at: u64,
        adaptive: Vec<f64>,
        frozen: Vec<f64>,
        adaptive_stats: String,
        frozen_stats: String,
    }
    emit(
        "e07_self_evolution",
        &table,
        &Artifact {
            window: WINDOW,
            drift_at: DRIFT_AT,
            adaptive: f1_adaptive,
            frozen: f1_frozen,
            adaptive_stats: format!("{:?}", adaptive.stats()),
            frozen_stats: format!("{:?}", frozen.stats()),
        },
    );
    println!("adaptive stats: {:?}", adaptive.stats());
    println!("frozen stats:   {:?}", frozen.stats());
}
