//! E5 — The "wide spectrum of settings" sweep.
//!
//! Paper claim (Section IV): SPOT was evaluated "under a wide spectrum of
//! settings". The two parameters that shape the whole system are FS's
//! MaxDimension (how much of the lattice is monitored exactly) and the grid
//! granularity m (how finely cells partition each dimension). This
//! experiment sweeps both and reports effectiveness, SST size and
//! throughput. Expected shape: F1 improves sharply from MaxDimension 1 → 2
//! (the planted outliers live in 2-dim subspaces) with little gain at 3;
//! granularity trades resolution against cell sparsity, peaking at
//! moderate m; cost grows with both.

use spot::SpotBuilder;
use spot_bench::{emit, run_detector};
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::Table;
use spot_types::DomainBounds;

const PHI: usize = 16;
const TRAIN: usize = 1200;
const STREAM: usize = 4000;

fn main() {
    let mut table = Table::new(
        "E5: parameter sweep (phi=16, 3% planted 2-dim outliers)",
        &[
            "MaxDimension",
            "granularity m",
            "|SST|",
            "F1",
            "FPR",
            "points/s",
        ],
    );
    #[derive(serde::Serialize)]
    struct Row {
        max_dimension: usize,
        granularity: u16,
        sst: usize,
        f1: f64,
        fpr: f64,
        throughput: f64,
    }
    let mut artifact: Vec<Row> = Vec::new();

    for max_dimension in [1usize, 2, 3] {
        for granularity in [5u16, 10, 15, 20] {
            let config = SyntheticConfig {
                dims: PHI,
                outlier_fraction: 0.03,
                seed: 23,
                ..Default::default()
            };
            let mut generator = SyntheticGenerator::new(config).expect("config is valid");
            let train = generator.generate_normal(TRAIN);
            let records = generator.generate(STREAM);

            let mut spot = SpotBuilder::new(DomainBounds::unit(PHI))
                .fs_max_dimension(max_dimension)
                .granularity(granularity)
                .seed(6)
                .build()
                .expect("config is valid");
            spot.learn(&train).expect("learning succeeds");
            let sst = spot.sst().len();
            let out = run_detector(&mut spot, &records);
            table.add_row(vec![
                max_dimension.to_string(),
                granularity.to_string(),
                sst.to_string(),
                format!("{:.3}", out.f1),
                format!("{:.3}", out.fpr),
                format!("{:.0}", out.throughput),
            ]);
            artifact.push(Row {
                max_dimension,
                granularity,
                sst,
                f1: out.f1,
                fpr: out.fpr,
                throughput: out.throughput,
            });
        }
    }

    emit("e05_parameter_sweep", &table, &artifact);
}
