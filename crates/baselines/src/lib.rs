//! Baseline detectors and reference searches for the SPOT evaluation.
//!
//! The paper's comparative study pits SPOT against "the latest stream
//! outlier/anomaly detection method" — full-space techniques that, per the
//! paper's Section I, cannot discover projected outliers. This crate
//! implements that comparator class from scratch:
//!
//! * [`FullSpaceGridDetector`] — one-pass grid/density detector over the
//!   *full* attribute space with the same decayed synopses SPOT uses (the
//!   method family of Aggarwal, SDM'05 \[2\]).
//! * [`WindowKnnDetector`] — exact distance-based outlier detection over a
//!   count-based sliding window (the classical kNN/STORM formulation).
//! * [`RandomSubspaceDetector`] — SPOT's machinery with randomly chosen
//!   subspaces instead of a learned SST; isolates the value of SST itself
//!   (ablation for experiment E3/E8).
//! * [`brute`] — exhaustive subspace search used as ground truth for MOGA's
//!   search quality (experiment E6). Exponential; only for small ϕ.

pub mod brute;
pub mod fullspace;
pub mod random_subspace;
pub mod window_knn;

pub use brute::{brute_force_top_k, BruteForceResult};
pub use fullspace::FullSpaceGridDetector;
pub use random_subspace::RandomSubspaceDetector;
pub use window_knn::WindowKnnDetector;
