//! Exhaustive subspace search (reference for MOGA quality).
//!
//! Finding outlying subspaces is NP-hard in general; exhaustive search of
//! the lattice is "totally infeasible when the dimensionality of data is
//! high" (paper, Section I). For *small* ϕ it is feasible, which makes it
//! the ground truth against which experiment E6 measures how much of the
//! true top-k the MOGA recovers at a fraction of the evaluations.

use spot_moga::{pareto_front_indices, SubspaceProblem};
use spot_subspace::{enumerate_up_to_dim, Subspace};
use spot_types::Result;

/// Outcome of an exhaustive sweep.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// Every subspace visited with its objective vector.
    pub evaluated: Vec<(Subspace, Vec<f64>)>,
    /// Indices (into `evaluated`) of the exact Pareto front.
    pub front: Vec<usize>,
}

impl BruteForceResult {
    /// The exact top-`k` subspaces by equal-weight objective sum — the same
    /// ranking rule `MogaOutcome::top_k` uses, so the two are comparable.
    pub fn top_k(&self, k: usize) -> Vec<(Subspace, f64)> {
        let mut scored: Vec<(Subspace, f64)> = self
            .evaluated
            .iter()
            .map(|(s, objs)| (*s, objs.iter().sum::<f64>()))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective sums are not NaN"));
        scored.truncate(k);
        scored
    }

    /// Exact Pareto-front subspaces.
    pub fn front_subspaces(&self) -> Vec<Subspace> {
        self.front.iter().map(|&i| self.evaluated[i].0).collect()
    }

    /// Number of objective evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.evaluated.len()
    }
}

/// Evaluates *every* subspace with cardinality ≤ `max_dim` and returns the
/// exact front and ranking. Cost: `Σ C(ϕ,k)` evaluations.
pub fn brute_force_top_k<P: SubspaceProblem>(
    problem: &mut P,
    max_dim: usize,
) -> Result<BruteForceResult> {
    let phi = problem.phi();
    let subspaces = enumerate_up_to_dim(phi, max_dim)?;
    let evaluated: Vec<(Subspace, Vec<f64>)> = subspaces
        .into_iter()
        .map(|s| (s, problem.evaluate(s)))
        .collect();
    let objs: Vec<Vec<f64>> = evaluated.iter().map(|(_, o)| o.clone()).collect();
    let front = pareto_front_indices(&objs);
    Ok(BruteForceResult { evaluated, front })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_moga::{HiddenTargetProblem, MogaConfig};

    #[test]
    fn covers_whole_lattice_slice() {
        let target = Subspace::from_dims([1, 2]).unwrap();
        let mut p = HiddenTargetProblem::new(6, target);
        let res = brute_force_top_k(&mut p, 6).unwrap();
        assert_eq!(res.evaluations(), 63); // 2^6 - 1
                                           // The hidden target minimizes objective 1 exactly: it must be the
                                           // global best by Hamming distance, hence on the front.
        assert!(res.front_subspaces().contains(&target));
        assert_eq!(res.top_k(1)[0].0, target);
    }

    #[test]
    fn max_dim_restricts_enumeration() {
        let mut p = HiddenTargetProblem::new(6, Subspace::from_dims([0]).unwrap());
        let res = brute_force_top_k(&mut p, 2).unwrap();
        assert_eq!(res.evaluations(), 6 + 15);
        assert!(res.evaluated.iter().all(|(s, _)| s.cardinality() <= 2));
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let mut p = HiddenTargetProblem::new(5, Subspace::from_dims([0, 4]).unwrap());
        let res = brute_force_top_k(&mut p, 5).unwrap();
        let front = res.front_subspaces();
        for (i, (_, a)) in res.evaluated.iter().enumerate() {
            if res.front.contains(&i) {
                continue;
            }
            // Every non-front member must be dominated by someone.
            let dominated = res
                .evaluated
                .iter()
                .any(|(_, b)| spot_moga::dominates(b, a));
            assert!(dominated);
        }
        assert!(!front.is_empty());
    }

    #[test]
    fn moga_recovers_most_of_brute_force_top_k() {
        // The headline comparison of experiment E6, in miniature.
        let target = Subspace::from_dims([1, 3, 7]).unwrap();
        let mut p = HiddenTargetProblem::new(10, target);
        let exact = brute_force_top_k(&mut p, 10).unwrap();
        let exact_top: std::collections::HashSet<u64> =
            exact.top_k(5).into_iter().map(|(s, _)| s.mask()).collect();

        let mut p2 = HiddenTargetProblem::new(10, target);
        let moga = spot_moga::run(
            &mut p2,
            &MogaConfig {
                population: 40,
                generations: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let got: std::collections::HashSet<u64> =
            moga.top_k(5).into_iter().map(|(s, _)| s.mask()).collect();
        let recovered = exact_top.intersection(&got).count();
        assert!(recovered >= 3, "recovered only {recovered}/5");
        // And with far fewer evaluations than the exhaustive sweep of a
        // larger lattice would need (here the lattice is small, so just
        // check MOGA stayed within its own budget).
        assert!(moga.evaluations <= 41 * 40);
    }
}
