//! Random-subspace ablation detector.
//!
//! Uses exactly SPOT's online machinery — decayed PCS over a set of
//! monitored subspaces with RD thresholding — but the subspaces are drawn
//! uniformly at random instead of learned into an SST. The gap between this
//! detector and SPOT measures the value of the SST construction itself
//! (experiments E3 and E8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_stream::{LogicalClock, TimeModel};
use spot_subspace::{genetic, Subspace, SubspaceSet};
use spot_synopsis::{Grid, SynopsisManager};
use spot_types::{DataPoint, Detection, DomainBounds, Result, SpotError, StreamDetector};

/// Configuration of the random-subspace detector.
#[derive(Debug, Clone)]
pub struct RandomSubspaceConfig {
    /// Number of random subspaces to monitor.
    pub num_subspaces: usize,
    /// Maximum cardinality of each random subspace.
    pub max_cardinality: usize,
    /// Grid granularity.
    pub granularity: u16,
    /// Decay model.
    pub time_model: TimeModel,
    /// RD threshold: a point is an outlier when some monitored subspace has
    /// `rd < rd_threshold` for its cell.
    pub rd_threshold: f64,
    /// RNG seed for subspace selection.
    pub seed: u64,
    /// Prune period in points (0 disables).
    pub prune_every: u64,
    /// Prune floor.
    pub prune_floor: f64,
}

impl Default for RandomSubspaceConfig {
    fn default() -> Self {
        RandomSubspaceConfig {
            num_subspaces: 30,
            max_cardinality: 3,
            granularity: 10,
            // Same decay horizon as SPOT's default for a fair comparison.
            time_model: TimeModel::new(6000, 0.05).expect("static parameters are valid"),
            rd_threshold: 0.1,
            seed: 1234,
            prune_every: 1000,
            prune_floor: 1e-4,
        }
    }
}

/// SPOT's detection loop with random subspaces instead of an SST.
#[derive(Debug, Clone)]
pub struct RandomSubspaceDetector {
    config: RandomSubspaceConfig,
    manager: SynopsisManager,
    clock: LogicalClock,
    /// Reused per-point PCS sink (see `SynopsisManager::update_and_query`).
    sink: Vec<spot_synopsis::SubspacePcs>,
}

impl RandomSubspaceDetector {
    /// Creates the detector; subspaces are drawn immediately.
    pub fn new(bounds: DomainBounds, config: RandomSubspaceConfig) -> Result<Self> {
        if config.num_subspaces == 0 {
            return Err(SpotError::InvalidConfig(
                "need at least one subspace".into(),
            ));
        }
        if config.rd_threshold <= 0.0 {
            return Err(SpotError::InvalidConfig(
                "rd threshold must be positive".into(),
            ));
        }
        let phi = bounds.dims();
        let grid = Grid::new(bounds, config.granularity)?;
        let mut manager = SynopsisManager::new(grid, config.time_model);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut chosen = SubspaceSet::new();
        let budget = config.num_subspaces * 20;
        let mut attempts = 0;
        while chosen.len() < config.num_subspaces && attempts < budget {
            chosen.insert(genetic::random_subspace(
                phi,
                config.max_cardinality,
                &mut rng,
            ));
            attempts += 1;
        }
        for s in chosen.iter() {
            manager.add_subspace(*s);
        }
        Ok(RandomSubspaceDetector {
            config,
            manager,
            clock: LogicalClock::new(),
            sink: Vec::new(),
        })
    }

    /// The randomly drawn monitored subspaces.
    pub fn subspaces(&self) -> Vec<Subspace> {
        self.manager.subspaces().collect()
    }
}

impl StreamDetector for RandomSubspaceDetector {
    fn learn(&mut self, training: &[DataPoint]) -> Result<()> {
        for p in training {
            let now = self.clock.tick();
            self.manager.update(now, p)?;
        }
        Ok(())
    }

    fn process(&mut self, point: &DataPoint) -> Detection {
        let now = self.clock.tick();
        let mut sink = std::mem::take(&mut self.sink);
        let updated = self.manager.update_and_query(now, point, &mut sink);
        if updated.is_err() {
            self.sink = sink;
            return Detection::outlier(f64::INFINITY);
        }
        if self.config.prune_every > 0 && now.is_multiple_of(self.config.prune_every) {
            self.manager.prune(now, self.config.prune_floor);
        }
        let mut min_rd = f64::INFINITY;
        for e in &sink {
            min_rd = min_rd.min(e.pcs.rd);
        }
        self.sink = sink;
        let outlier = min_rd < self.config.rd_threshold;
        let score = 1.0 / (1.0 + min_rd);
        Detection { outlier, score }
    }

    fn name(&self) -> &str {
        "random-subspace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_requested_number_of_distinct_subspaces() {
        let d = RandomSubspaceDetector::new(
            DomainBounds::unit(12),
            RandomSubspaceConfig {
                num_subspaces: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let subs = d.subspaces();
        assert_eq!(subs.len(), 20);
        let set: std::collections::HashSet<u64> = subs.iter().map(|s| s.mask()).collect();
        assert_eq!(set.len(), 20);
        assert!(subs.iter().all(|s| s.cardinality() <= 3));
    }

    #[test]
    fn small_lattice_caps_at_available_subspaces() {
        // phi=2, max card 1 → only 2 possible subspaces.
        let d = RandomSubspaceDetector::new(
            DomainBounds::unit(2),
            RandomSubspaceConfig {
                num_subspaces: 10,
                max_cardinality: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(d.subspaces().len() <= 3);
    }

    #[test]
    fn detects_gross_density_outliers() {
        let mut d = RandomSubspaceDetector::new(
            DomainBounds::unit(4),
            RandomSubspaceConfig {
                num_subspaces: 8,
                max_cardinality: 2,
                rd_threshold: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        let train: Vec<DataPoint> = (0..400)
            .map(|i| DataPoint::new(vec![0.2 + (i % 10) as f64 * 0.001; 4]))
            .collect();
        d.learn(&train).unwrap();
        assert!(!d.process(&DataPoint::new(vec![0.2; 4])).outlier);
        let v = d.process(&DataPoint::new(vec![0.95; 4]));
        assert!(v.outlier);
    }

    #[test]
    fn validation() {
        assert!(RandomSubspaceDetector::new(
            DomainBounds::unit(4),
            RandomSubspaceConfig {
                num_subspaces: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(RandomSubspaceDetector::new(
            DomainBounds::unit(4),
            RandomSubspaceConfig {
                rd_threshold: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_subspace_choice() {
        let make = || {
            RandomSubspaceDetector::new(DomainBounds::unit(10), RandomSubspaceConfig::default())
                .unwrap()
                .subspaces()
                .iter()
                .map(|s| s.mask())
                .collect::<std::collections::BTreeSet<u64>>()
        };
        assert_eq!(make(), make());
    }
}
