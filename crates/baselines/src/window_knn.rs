//! Exact distance-based outlier detection over a sliding window.
//!
//! The classical streaming formulation (Angiulli & Fassetti's STORM family):
//! a point is an outlier when fewer than `k` of the last `window` points lie
//! within radius `r`. Exact and full-space — it stores the raw window, which
//! is precisely the cost the (ω, ε) model avoids; the efficiency experiments
//! surface that gap.

use spot_stream::ExactSlidingWindow;
use spot_types::{DataPoint, Detection, Result, SpotError, StreamDetector};

/// Configuration of the windowed kNN detector.
#[derive(Debug, Clone, Copy)]
pub struct WindowKnnConfig {
    /// Sliding-window size in points.
    pub window: usize,
    /// Neighbour count threshold k.
    pub k: usize,
    /// Neighbour radius r.
    pub radius: f64,
}

impl Default for WindowKnnConfig {
    fn default() -> Self {
        WindowKnnConfig {
            window: 1000,
            k: 5,
            radius: 0.5,
        }
    }
}

/// Exact sliding-window distance-based detector (see module docs).
#[derive(Debug, Clone)]
pub struct WindowKnnDetector {
    config: WindowKnnConfig,
    window: ExactSlidingWindow,
}

impl WindowKnnDetector {
    /// Creates the detector.
    pub fn new(config: WindowKnnConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(SpotError::InvalidConfig("k must be positive".into()));
        }
        if config.radius <= 0.0 || config.radius.is_nan() {
            return Err(SpotError::InvalidConfig("radius must be positive".into()));
        }
        Ok(WindowKnnDetector {
            config,
            window: ExactSlidingWindow::new(config.window),
        })
    }

    /// Number of raw points currently buffered (memory accounting; contrast
    /// with SPOT's O(populated cells)).
    pub fn buffered_points(&self) -> usize {
        self.window.len()
    }
}

impl StreamDetector for WindowKnnDetector {
    fn learn(&mut self, training: &[DataPoint]) -> Result<()> {
        // Pre-fill the window with the most recent training points.
        for p in training.iter().rev().take(self.window.capacity()).rev() {
            self.window.push(p.clone());
        }
        Ok(())
    }

    fn process(&mut self, point: &DataPoint) -> Detection {
        let neighbors =
            self.window
                .count_neighbors_within(point, self.config.radius, self.config.k);
        let outlier = neighbors < self.config.k;
        // Score: distance to the k-th neighbour, normalized by the radius.
        let score = match self.window.knn_distance(point, self.config.k) {
            Some(d) => d / self.config.radius,
            None => f64::INFINITY, // window too empty to find k neighbours
        };
        self.window.push(point.clone());
        Detection { outlier, score }
    }

    fn name(&self) -> &str {
        "window-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(k: usize, radius: f64, window: usize) -> WindowKnnDetector {
        WindowKnnDetector::new(WindowKnnConfig { window, k, radius }).unwrap()
    }

    #[test]
    fn flags_isolated_points() {
        let mut d = detector(3, 0.2, 100);
        let train: Vec<DataPoint> = (0..50)
            .map(|i| DataPoint::new(vec![0.5 + (i % 5) as f64 * 0.01]))
            .collect();
        d.learn(&train).unwrap();
        assert!(!d.process(&DataPoint::new(vec![0.5])).outlier);
        let v = d.process(&DataPoint::new(vec![5.0]));
        assert!(v.outlier);
        assert!(v.score > 1.0);
    }

    #[test]
    fn window_eviction_forgets_old_support() {
        let mut d = detector(2, 0.1, 10);
        // Fill with points near 0.0.
        for _ in 0..10 {
            d.process(&DataPoint::new(vec![0.0]));
        }
        assert!(!d.process(&DataPoint::new(vec![0.0])).outlier);
        // Push the window full of far-away points; support for 0.0 vanishes.
        for _ in 0..10 {
            d.process(&DataPoint::new(vec![9.0]));
        }
        assert!(d.process(&DataPoint::new(vec![0.0])).outlier);
    }

    #[test]
    fn empty_window_everything_is_outlier() {
        let mut d = detector(1, 0.5, 100);
        let v = d.process(&DataPoint::new(vec![0.3]));
        assert!(v.outlier);
        assert_eq!(v.score, f64::INFINITY);
    }

    #[test]
    fn buffer_accounting() {
        let mut d = detector(1, 0.5, 5);
        for i in 0..10 {
            d.process(&DataPoint::new(vec![i as f64]));
        }
        assert_eq!(d.buffered_points(), 5);
    }

    #[test]
    fn learn_keeps_only_latest_window() {
        let mut d = detector(1, 0.5, 3);
        let train: Vec<DataPoint> = (0..10).map(|i| DataPoint::new(vec![i as f64])).collect();
        d.learn(&train).unwrap();
        assert_eq!(d.buffered_points(), 3);
        // Only 7, 8, 9 are retained.
        assert!(!d.process(&DataPoint::new(vec![8.0])).outlier);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(WindowKnnDetector::new(WindowKnnConfig {
            k: 0,
            ..Default::default()
        })
        .is_err());
        assert!(WindowKnnDetector::new(WindowKnnConfig {
            radius: 0.0,
            ..Default::default()
        })
        .is_err());
    }
}
