//! Full-space grid/density stream detector.
//!
//! The comparator class the paper contrasts SPOT against: a one-pass
//! detector that maintains decayed densities over the *full* ϕ-dimensional
//! grid and flags points whose base cell is sparse relative to the uniform
//! expectation. It shares SPOT's synopsis substrate (same grid, same decay)
//! so the comparison isolates exactly one design decision: full space
//! versus learned subspaces.
//!
//! Because full-space cell volume shrinks exponentially with ϕ (`m^ϕ`
//! cells), the raw RD measure collapses — every cell looks sparse. The
//! detector therefore uses the *neighbourhood-free density test* of
//! full-space stream methods: a point is an outlier when its base cell's
//! decayed count is below `density_threshold` (an absolute support floor),
//! mirroring Aggarwal SDM'05's sparse-region test.

use spot_stream::{LogicalClock, TimeModel};
use spot_synopsis::{BaseStore, Grid};
use spot_types::{DataPoint, Detection, DomainBounds, Result, SpotError, StreamDetector};

/// Configuration of the full-space detector.
#[derive(Debug, Clone)]
pub struct FullSpaceConfig {
    /// Grid granularity per dimension.
    pub granularity: u16,
    /// (ω, ε) decay model shared with SPOT for a fair comparison.
    pub time_model: TimeModel,
    /// Decayed-count floor: a point in a cell with fewer (decayed) points
    /// than this is an outlier.
    pub density_threshold: f64,
    /// Prune period in points (0 disables pruning).
    pub prune_every: u64,
    /// Prune floor for stale cells.
    pub prune_floor: f64,
}

impl Default for FullSpaceConfig {
    fn default() -> Self {
        FullSpaceConfig {
            granularity: 10,
            // Same decay horizon as SPOT's default for a fair comparison.
            time_model: TimeModel::new(6000, 0.05).expect("static parameters are valid"),
            density_threshold: 2.0,
            prune_every: 1000,
            prune_floor: 1e-4,
        }
    }
}

/// One-pass full-space density detector (see module docs).
#[derive(Debug, Clone)]
pub struct FullSpaceGridDetector {
    config: FullSpaceConfig,
    grid: Grid,
    store: BaseStore,
    clock: LogicalClock,
}

impl FullSpaceGridDetector {
    /// Creates the detector over explicit domain bounds.
    pub fn new(bounds: DomainBounds, config: FullSpaceConfig) -> Result<Self> {
        if config.density_threshold < 0.0 {
            return Err(SpotError::InvalidConfig(
                "density threshold must be >= 0".into(),
            ));
        }
        let grid = Grid::new(bounds, config.granularity)?;
        Ok(FullSpaceGridDetector {
            config,
            grid,
            store: BaseStore::new(),
            clock: LogicalClock::new(),
        })
    }

    /// Populated base cells (memory accounting).
    pub fn live_cells(&self) -> usize {
        self.store.len()
    }

    /// Approximate synopsis bytes.
    pub fn approx_bytes(&self) -> usize {
        self.store.approx_bytes()
    }
}

impl StreamDetector for FullSpaceGridDetector {
    fn learn(&mut self, training: &[DataPoint]) -> Result<()> {
        // Density methods need no offline stage; warm the synopses so the
        // first stream points are not all trivially "sparse".
        for p in training {
            let now = self.clock.tick();
            self.store
                .insert(&self.grid, &self.config.time_model, now, p)?;
        }
        Ok(())
    }

    fn process(&mut self, point: &DataPoint) -> Detection {
        let now = self.clock.tick();
        let model = self.config.time_model;
        let Ok((_, prior)) = self.store.insert(&self.grid, &model, now, point) else {
            // Dimension mismatch: report maximally anomalous rather than
            // panicking mid-stream.
            return Detection::outlier(f64::INFINITY);
        };
        if self.config.prune_every > 0 && now.is_multiple_of(self.config.prune_every) {
            self.store.prune(&model, now, self.config.prune_floor);
        }
        let score = 1.0 / (1.0 + prior); // sparser cell → higher score
        Detection {
            outlier: prior < self.config.density_threshold,
            score,
        }
    }

    fn name(&self) -> &str {
        "fullspace-grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(dims: usize) -> FullSpaceGridDetector {
        FullSpaceGridDetector::new(
            DomainBounds::unit(dims),
            FullSpaceConfig {
                granularity: 4,
                density_threshold: 1.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn flags_points_in_empty_regions() {
        let mut d = detector(2);
        let train: Vec<DataPoint> = (0..200)
            .map(|i| DataPoint::new(vec![0.1 + (i % 10) as f64 * 0.002, 0.1]))
            .collect();
        d.learn(&train).unwrap();
        // Same region: not an outlier.
        let v = d.process(&DataPoint::new(vec![0.1, 0.1]));
        assert!(!v.outlier);
        // Far, never-seen region: outlier.
        let v = d.process(&DataPoint::new(vec![0.9, 0.9]));
        assert!(v.outlier);
        assert!(v.score > 0.0);
    }

    #[test]
    fn repeated_novelty_stops_firing_once_dense() {
        let mut d = detector(2);
        let p = DataPoint::new(vec![0.5, 0.5]);
        // First sighting is an outlier, later sightings are not.
        assert!(d.process(&p).outlier);
        for _ in 0..5 {
            d.process(&p);
        }
        assert!(!d.process(&p).outlier);
    }

    #[test]
    fn misses_projected_outliers_in_high_dims() {
        // The paper's core claim: full-space density cannot see projected
        // outliers. Build a 10-dim stream where an outlier differs from
        // normal data in one dimension only — its *full-space* cell is as
        // empty as everyone else's (m^10 cells ≫ points), so the detector
        // flags nearly everything, i.e. has no discrimination.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut d = FullSpaceGridDetector::new(
            DomainBounds::unit(10),
            FullSpaceConfig {
                granularity: 10,
                density_threshold: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        // Normal data: mild scatter around a center in ALL dims — locally
        // dense in every 1-2 dim projection, but 10-dim cells are ~unique.
        let sample = |rng: &mut StdRng| {
            DataPoint::new((0..10).map(|_| 0.5 + rng.gen_range(-0.25..0.25)).collect())
        };
        let train: Vec<DataPoint> = (0..500).map(|_| sample(&mut rng)).collect();
        d.learn(&train).unwrap();
        let mut normal_flagged = 0;
        for _ in 0..100 {
            let p = sample(&mut rng);
            if d.process(&p).outlier {
                normal_flagged += 1;
            }
        }
        // Full-space sparsity fires on a large share of NORMAL points —
        // the false-alarm failure mode SPOT's subspace analysis avoids.
        assert!(normal_flagged > 50, "only {normal_flagged} normals flagged");
    }

    #[test]
    fn pruning_keeps_memory_bounded() {
        let mut d = FullSpaceGridDetector::new(
            DomainBounds::unit(2),
            FullSpaceConfig {
                granularity: 10,
                time_model: TimeModel::new(100, 0.01).unwrap(),
                density_threshold: 1.0,
                prune_every: 100,
                prune_floor: 1e-2,
            },
        )
        .unwrap();
        // A moving hot-spot: old cells decay and must be evicted.
        for i in 0..5000u64 {
            let x = (i % 100) as f64 / 100.0;
            let y = ((i / 100) % 10) as f64 / 10.0;
            d.process(&DataPoint::new(vec![x, y]));
        }
        assert!(d.live_cells() < 100 * 10, "cells={}", d.live_cells());
        assert!(d.approx_bytes() > 0);
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = FullSpaceConfig {
            density_threshold: -1.0,
            ..Default::default()
        };
        assert!(FullSpaceGridDetector::new(DomainBounds::unit(2), cfg).is_err());
    }

    #[test]
    fn dimension_mismatch_is_flagged_not_panicking() {
        let mut d = detector(2);
        let v = d.process(&DataPoint::new(vec![0.5]));
        assert!(v.outlier);
    }
}
