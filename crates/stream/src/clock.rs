//! Logical stream clock.

use serde::{Deserialize, Serialize};
use spot_types::{DurableState, PersistError, StateReader, StateWriter};

/// Monotonic logical clock.
///
/// SPOT's default configuration advances the clock by one tick per arriving
/// point, making ω of the (ω, ε) model a *count-based* window. Batch
/// arrivals can share a tick by calling [`LogicalClock::advance`] manually
/// instead of [`LogicalClock::tick`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// Clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by one tick and returns the new time.
    #[inline]
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Advances by `ticks`.
    pub fn advance(&mut self, ticks: u64) -> u64 {
        self.now += ticks;
        self.now
    }
}

impl DurableState for LogicalClock {
    fn capture(&self, w: &mut StateWriter) {
        w.u64("now", self.now);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
        self.now = r.u64("now")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.advance(10), 12);
        assert_eq!(c.now(), 12);
    }
}
