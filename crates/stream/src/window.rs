//! Exact count-based sliding window.
//!
//! The conventional window model that the (ω, ε) model approximates. SPOT
//! itself never uses this (it would require storing ω raw points); it
//! exists for (a) the distance-based baseline detector, and (b) experiment
//! E9, which measures the approximation error and memory gap between the
//! two models.

use spot_types::DataPoint;
use std::collections::VecDeque;

/// A FIFO window holding the most recent `capacity` points.
#[derive(Debug, Clone)]
pub struct ExactSlidingWindow {
    capacity: usize,
    points: VecDeque<DataPoint>,
}

impl ExactSlidingWindow {
    /// Empty window with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ExactSlidingWindow {
            capacity,
            points: VecDeque::with_capacity(capacity),
        }
    }

    /// Pushes a point, evicting the oldest when full. Returns the evicted
    /// point, if any.
    pub fn push(&mut self, p: DataPoint) -> Option<DataPoint> {
        let evicted = if self.points.len() == self.capacity {
            self.points.pop_front()
        } else {
            None
        };
        self.points.push_back(p);
        evicted
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are held.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Window capacity ω.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &DataPoint> {
        self.points.iter()
    }

    /// Counts window points within Euclidean distance `r` of `q`, stopping
    /// early once `stop_at` neighbours are found (the distance-based
    /// baseline only needs to know whether a point has ≥ k neighbours).
    pub fn count_neighbors_within(&self, q: &DataPoint, r: f64, stop_at: usize) -> usize {
        let r2 = r * r;
        let mut n = 0;
        for p in &self.points {
            if p.sq_distance(q) <= r2 {
                n += 1;
                if n >= stop_at {
                    return n;
                }
            }
        }
        n
    }

    /// Distance from `q` to its `k`-th nearest neighbour in the window
    /// (`None` when fewer than `k` points are held). Used as an anomaly
    /// score by the kNN baseline.
    pub fn knn_distance(&self, q: &DataPoint, k: usize) -> Option<f64> {
        if k == 0 || self.points.len() < k {
            return None;
        }
        // Max-heap of the k smallest squared distances.
        let mut heap: Vec<f64> = Vec::with_capacity(k + 1);
        for p in &self.points {
            let d2 = p.sq_distance(q);
            if heap.len() < k {
                heap.push(d2);
                if heap.len() == k {
                    heap.sort_by(|a, b| b.partial_cmp(a).expect("distances are not NaN"));
                }
            } else if d2 < heap[0] {
                heap[0] = d2;
                // Restore descending order of the small fixed-size buffer.
                let mut i = 0;
                while i + 1 < heap.len() && heap[i] < heap[i + 1] {
                    heap.swap(i, i + 1);
                    i += 1;
                }
            }
        }
        Some(heap[0].sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: f64) -> DataPoint {
        DataPoint::new(vec![v])
    }

    #[test]
    fn fifo_eviction() {
        let mut w = ExactSlidingWindow::new(2);
        assert!(w.push(p(1.0)).is_none());
        assert!(w.push(p(2.0)).is_none());
        let ev = w.push(p(3.0)).unwrap();
        assert!((ev[0] - 1.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        let vals: Vec<f64> = w.iter().map(|q| q[0]).collect();
        assert_eq!(vals, vec![2.0, 3.0]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut w = ExactSlidingWindow::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(p(1.0));
        w.push(p(2.0));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn neighbor_counting_with_early_stop() {
        let mut w = ExactSlidingWindow::new(10);
        for i in 0..10 {
            w.push(p(i as f64));
        }
        let q = p(5.0);
        assert_eq!(w.count_neighbors_within(&q, 1.5, usize::MAX), 3); // 4,5,6
        assert_eq!(w.count_neighbors_within(&q, 1.5, 2), 2); // early stop
        assert_eq!(w.count_neighbors_within(&q, 0.0, usize::MAX), 1); // itself-distance 0
    }

    #[test]
    fn knn_distance_matches_sorted_scan() {
        let mut w = ExactSlidingWindow::new(16);
        let vals = [0.0, 1.0, 3.0, 6.0, 10.0];
        for &v in &vals {
            w.push(p(v));
        }
        let q = p(2.0);
        let mut dists: Vec<f64> = vals.iter().map(|v| (v - 2.0f64).abs()).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for k in 1..=vals.len() {
            let got = w.knn_distance(&q, k).unwrap();
            assert!(
                (got - dists[k - 1]).abs() < 1e-9,
                "k={k}: {got} vs {}",
                dists[k - 1]
            );
        }
        assert!(w.knn_distance(&q, vals.len() + 1).is_none());
        assert!(w.knn_distance(&q, 0).is_none());
    }

    proptest! {
        #[test]
        fn window_never_exceeds_capacity(
            cap in 1usize..32, values in proptest::collection::vec(-100.0f64..100.0, 0..100)
        ) {
            let mut w = ExactSlidingWindow::new(cap);
            for v in values {
                w.push(p(v));
                prop_assert!(w.len() <= cap);
            }
        }

        #[test]
        fn knn_distance_agrees_with_naive(
            values in proptest::collection::vec(-50.0f64..50.0, 1..40),
            q in -50.0f64..50.0,
            k in 1usize..8,
        ) {
            let mut w = ExactSlidingWindow::new(64);
            for &v in &values { w.push(p(v)); }
            let naive = {
                let mut d: Vec<f64> = values.iter().map(|v| (v - q).abs()).collect();
                d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                d.get(k - 1).copied()
            };
            let got = w.knn_distance(&p(q), k);
            match (got, naive) {
                (Some(g), Some(n)) => prop_assert!((g - n).abs() < 1e-9),
                (None, None) => {},
                other => prop_assert!(false, "mismatch: {other:?}"),
            }
        }
    }
}
