//! Stream sources.
//!
//! A [`PointStream`] is any iterator of [`StreamRecord`]s; SPOT's detection
//! stage consumes these one at a time, honoring the single-pass constraint
//! of the streaming model. Three concrete sources cover the needs of the
//! examples and experiments:
//!
//! * [`VecSource`] — replays an in-memory batch (training/evaluation).
//! * [`FnSource`] — pulls from a generator closure (unbounded synthetic
//!   streams).
//! * [`ChannelSource`] — receives from a producer thread over a bounded
//!   crossbeam channel, optionally rate-limited; models a live feed with
//!   back-pressure.

use crossbeam::channel::{bounded, Receiver, Sender};
use spot_types::{DataPoint, StreamRecord};
use std::thread::JoinHandle;
use std::time::Duration;

/// Marker alias: any iterator of stream records is a point stream.
pub trait PointStream: Iterator<Item = StreamRecord> {}

impl<T: Iterator<Item = StreamRecord>> PointStream for T {}

/// Replays an owned batch of points as a stream, assigning sequence numbers
/// from `start_seq`.
#[derive(Debug)]
pub struct VecSource {
    points: std::vec::IntoIter<DataPoint>,
    next_seq: u64,
}

impl VecSource {
    /// Creates a source over the batch, numbering records from 0.
    pub fn new(points: Vec<DataPoint>) -> Self {
        Self::with_start_seq(points, 0)
    }

    /// Creates a source whose first record gets sequence number `start_seq`.
    pub fn with_start_seq(points: Vec<DataPoint>, start_seq: u64) -> Self {
        VecSource {
            points: points.into_iter(),
            next_seq: start_seq,
        }
    }
}

impl Iterator for VecSource {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let p = self.points.next()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(StreamRecord::new(seq, p))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.points.size_hint()
    }
}

/// Pulls points from a closure until it returns `None`.
pub struct FnSource<F: FnMut(u64) -> Option<DataPoint>> {
    gen: F,
    next_seq: u64,
}

impl<F: FnMut(u64) -> Option<DataPoint>> FnSource<F> {
    /// Creates a generator-backed source. The closure receives the sequence
    /// number of the record it is about to produce.
    pub fn new(gen: F) -> Self {
        FnSource { gen, next_seq: 0 }
    }
}

impl<F: FnMut(u64) -> Option<DataPoint>> Iterator for FnSource<F> {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let p = (self.gen)(self.next_seq)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(StreamRecord::new(seq, p))
    }
}

/// Receives records produced by a background thread over a bounded channel.
///
/// The bounded channel provides natural back-pressure: when the detector
/// falls behind, the producer blocks instead of exhausting memory — the
/// "space limitation" constraint of the streaming model.
pub struct ChannelSource {
    rx: Receiver<StreamRecord>,
    handle: Option<JoinHandle<()>>,
}

impl ChannelSource {
    /// Spawns `producer` on a thread with a channel of the given capacity.
    ///
    /// The producer receives a [`Sender`] and pushes records until done (or
    /// until the receiver is dropped, which makes `send` fail and should
    /// terminate the producer).
    pub fn spawn<F>(capacity: usize, producer: F) -> Self
    where
        F: FnOnce(Sender<StreamRecord>) + Send + 'static,
    {
        let (tx, rx) = bounded(capacity.max(1));
        let handle = std::thread::spawn(move || producer(tx));
        ChannelSource {
            rx,
            handle: Some(handle),
        }
    }

    /// Spawns a producer that replays `points` with a fixed inter-arrival
    /// delay (simulates a live stream of a given rate; `delay` of zero means
    /// full speed).
    pub fn replay_with_rate(points: Vec<DataPoint>, delay: Duration) -> Self {
        Self::spawn(1024, move |tx| {
            for (i, p) in points.into_iter().enumerate() {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if tx.send(StreamRecord::new(i as u64, p)).is_err() {
                    return; // receiver hung up
                }
            }
        })
    }

    /// Waits for the producer thread to finish (after the stream drained).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Iterator for ChannelSource {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        self.rx.recv().ok()
    }
}

impl Drop for ChannelSource {
    fn drop(&mut self) {
        // Disconnect the channel *before* joining: a producer blocked on
        // `send` into a full channel only unblocks when the receiver is
        // gone (draining alone races — the producer can refill the buffer
        // between the drain and the join and deadlock both threads).
        let (_tx, dummy_rx) = bounded::<StreamRecord>(1);
        drop(std::mem::replace(&mut self.rx, dummy_rx));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<DataPoint> {
        (0..n).map(|i| DataPoint::new(vec![i as f64])).collect()
    }

    #[test]
    fn vec_source_assigns_sequence_numbers() {
        let recs: Vec<_> = VecSource::new(pts(3)).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[2].seq, 2);
        assert!((recs[1].point[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec_source_custom_start() {
        let recs: Vec<_> = VecSource::with_start_seq(pts(2), 100).collect();
        assert_eq!(recs[0].seq, 100);
        assert_eq!(recs[1].seq, 101);
    }

    #[test]
    fn fn_source_stops_on_none() {
        let mut src = FnSource::new(|seq| (seq < 5).then(|| DataPoint::new(vec![seq as f64])));
        let recs: Vec<_> = (&mut src).collect();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4].seq, 4);
        assert!(src.next().is_none());
    }

    #[test]
    fn fn_source_numbers_sequentially_and_passes_seq_to_generator() {
        // The closure receives the sequence number of the record it is
        // about to produce, and records carry exactly those numbers,
        // consecutively from 0 — even when the closure's output does not
        // depend on its input.
        let mut seen = Vec::new();
        let recs: Vec<_> = FnSource::new(|seq| {
            seen.push(seq);
            (seq < 7).then(|| DataPoint::new(vec![(seq * 2) as f64]))
        })
        .collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5, 6]);
        for r in &recs {
            assert!((r.point[0] - (r.seq * 2) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn channel_source_delivers_everything_in_order() {
        let src = ChannelSource::replay_with_rate(pts(100), Duration::ZERO);
        let recs: Vec<_> = src.collect();
        assert_eq!(recs.len(), 100);
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn channel_source_producer_terminates_on_drop() {
        // Capacity 1 forces the producer to block; dropping the source must
        // still let the thread exit (no deadlock, test would hang).
        let src = ChannelSource::spawn(1, |tx| {
            for i in 0..10_000u64 {
                if tx
                    .send(StreamRecord::new(i, DataPoint::new(vec![0.0])))
                    .is_err()
                {
                    return;
                }
            }
        });
        drop(src);
    }

    #[test]
    fn channel_source_early_drop_mid_stream_joins_producer() {
        // Consume a few records, then drop the source while the producer
        // is mid-stream (blocked on a full buffer). Drop must disconnect
        // the channel first (so the pending `send` fails) and then join
        // the thread — observable through a flag the producer sets on its
        // way out. Without the join, the flag read races; without the
        // disconnect, the join deadlocks and the test hangs.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let exited = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&exited);
        let mut src = ChannelSource::spawn(2, move |tx| {
            let mut i = 0u64;
            while tx
                .send(StreamRecord::new(i, DataPoint::new(vec![0.0])))
                .is_ok()
            {
                i += 1;
            }
            flag.store(true, Ordering::SeqCst);
        });
        for want in 0..3 {
            assert_eq!(src.next().unwrap().seq, want);
        }
        drop(src);
        assert!(
            exited.load(Ordering::SeqCst),
            "drop must join the producer thread"
        );
    }

    #[test]
    fn channel_source_zero_capacity_clamps_to_one() {
        // A zero-capacity request clamps to 1 (a rendezvous of 0 would
        // deadlock mpsc-style stand-ins); the stream still delivers
        // everything in order and an explicit join() keeps working.
        let src = ChannelSource::spawn(0, |tx| {
            for i in 0..50u64 {
                if tx
                    .send(StreamRecord::new(i, DataPoint::new(vec![i as f64])))
                    .is_err()
                {
                    return;
                }
            }
        });
        let recs: Vec<_> = src.collect();
        assert_eq!(recs.len(), 50);
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        // Explicit join after drain: returns promptly, no panic.
        ChannelSource::replay_with_rate(pts(5), Duration::ZERO)
            .by_ref()
            .for_each(drop);
    }

    #[test]
    fn channel_source_explicit_join_still_works() {
        let mut src = ChannelSource::replay_with_rate(pts(20), Duration::ZERO);
        let n = src.by_ref().count();
        assert_eq!(n, 20);
        src.join(); // consumes; Drop then runs with the handle already taken
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity_under_slow_consumer() {
        // Backpressure: with a capacity-C channel, the producer can be at
        // most C records ahead of the consumer. `sent` is incremented
        // after each successful send, so `sent - received <= C` must hold
        // at every consumer step even though the consumer is deliberately
        // slow.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        const CAP: usize = 4;
        let sent = Arc::new(AtomicU64::new(0));
        let sent_producer = Arc::clone(&sent);
        let src = ChannelSource::spawn(CAP, move |tx| {
            for i in 0..200u64 {
                if tx
                    .send(StreamRecord::new(i, DataPoint::new(vec![0.0])))
                    .is_err()
                {
                    return;
                }
                sent_producer.fetch_add(1, Ordering::SeqCst);
            }
        });
        let mut received = 0u64;
        for rec in src {
            received += 1;
            assert_eq!(rec.seq, received - 1, "arrival order preserved");
            let in_flight = sent.load(Ordering::SeqCst).saturating_sub(received);
            assert!(
                in_flight <= CAP as u64,
                "queue exceeded capacity: {in_flight} > {CAP}"
            );
            if received.is_multiple_of(10) {
                std::thread::sleep(Duration::from_micros(200)); // slow consumer
            }
        }
        assert_eq!(received, 200);
    }
}
