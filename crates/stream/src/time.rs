//! The (ω, ε) window-based time model.
//!
//! The model discriminates data arriving at different times by assigning
//! each point an exponentially decaying weight. A point of age `a` ticks
//! weighs `δ^a` with per-tick decay factor `δ = ε^(1/ω)`, so a point that
//! has just slid out of a window of size ω weighs exactly ε. The model is
//! therefore an ε-approximation of the conventional ω-sized sliding window
//! that needs **no in-window point buffer and no snapshot history** — only
//! the latest decayed summary, which is the property the paper highlights
//! against tilted-time-frame models.
//!
//! Decay is applied lazily: every summary stores the tick of its last
//! update and is renormalized by `δ^(now − last)` on access.

use serde::{Deserialize, Serialize};
use spot_types::{DurableState, PersistError, Result, SpotError, StateReader, StateWriter};

/// The (ω, ε) time model: window size ω (ticks) and approximation factor ε.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    omega: u64,
    epsilon: f64,
    decay: f64,
}

impl TimeModel {
    /// Creates a model with window size `omega` (> 0 ticks) and
    /// approximation factor `epsilon` (in `(0, 1)`).
    pub fn new(omega: u64, epsilon: f64) -> Result<Self> {
        if omega == 0 {
            return Err(SpotError::InvalidConfig("omega must be positive".into()));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SpotError::InvalidConfig(format!(
                "epsilon must lie in (0,1), got {epsilon}"
            )));
        }
        let decay = epsilon.powf(1.0 / omega as f64);
        Ok(TimeModel {
            omega,
            epsilon,
            decay,
        })
    }

    /// A landmark model that never forgets (decay factor 1). Useful for
    /// offline training evaluation where all points should count equally.
    pub fn landmark() -> Self {
        TimeModel {
            omega: u64::MAX,
            epsilon: 1.0,
            decay: 1.0,
        }
    }

    /// Window size ω in ticks.
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// Approximation factor ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Per-tick decay factor δ = ε^(1/ω).
    #[inline]
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Weight of a point `age` ticks after its arrival: δ^age.
    #[inline]
    pub fn weight_after(&self, age: u64) -> f64 {
        if self.decay == 1.0 {
            1.0
        } else {
            self.decay.powi(age.min(i32::MAX as u64) as i32)
        }
    }

    /// Multiplier that renormalizes a summary last touched at `last` to the
    /// current tick `now`.
    #[inline]
    pub fn decay_between(&self, last: u64, now: u64) -> f64 {
        debug_assert!(now >= last, "clock must be monotonic");
        self.weight_after(now - last)
    }

    /// The steady-state total decayed weight of a stream that has produced
    /// one unit per tick forever: `1/(1−δ)`. For the landmark model this is
    /// unbounded and `f64::INFINITY` is returned.
    pub fn steady_state_weight(&self) -> f64 {
        if self.decay == 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.decay)
        }
    }

    /// Upper bound on the *total* weight contributed by all points that
    /// have slid out of the ω-window (one arrival per tick):
    /// `Σ_{a≥ω} δ^a = δ^ω/(1−δ) = ε/(1−δ)`.
    pub fn expired_weight_bound(&self) -> f64 {
        if self.decay == 1.0 {
            f64::INFINITY
        } else {
            self.epsilon / (1.0 - self.decay)
        }
    }

    /// Fraction of the steady-state weight held by expired points:
    /// exactly ε. This is the paper's statement that the model
    /// approximates the ω-window with factor ε.
    pub fn expired_weight_fraction(&self) -> f64 {
        self.epsilon
    }
}

/// Per-run decay-factor table for batch ingestion.
///
/// A batch run covers the consecutive ticks `start .. start + len`. Within
/// a run, every renormalization spans two run ticks, so its age is at most
/// `len − 1` and one table of `len` entries serves *all* cell
/// renormalizations of the run — the per-touch `powi` in the hot loops
/// collapses to an indexed load. Cells last touched *before* the run fall
/// back to [`TimeModel::decay_between`] (at most once per live cell per
/// run).
///
/// Entries are computed with [`TimeModel::weight_after`] — the exact
/// function the per-point path calls — so a table lookup is bit-identical
/// to the sequential computation it replaces.
#[derive(Debug, Clone, Default)]
pub struct DecayTable {
    start: u64,
    /// `factors[a] == model.weight_after(a)` for `a ∈ 0..len`.
    factors: Vec<f64>,
}

impl DecayTable {
    /// Empty table (every lookup falls back to the model).
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)fills the table for a run of `len` ticks starting at `start`,
    /// reusing the existing allocation.
    pub fn fill(&mut self, model: &TimeModel, start: u64, len: usize) {
        self.start = start;
        self.factors.clear();
        self.factors.reserve(len);
        for age in 0..len as u64 {
            self.factors.push(model.weight_after(age));
        }
    }

    /// First tick of the run this table covers.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Renormalization factor from `last` to `now`, served from the table
    /// when `last` lies inside the run (`now` must be a run tick at or
    /// after `last`; both invariants hold by construction in the batch
    /// loops and are debug-asserted).
    #[inline]
    pub fn factor(&self, model: &TimeModel, last: u64, now: u64) -> f64 {
        debug_assert!(now >= last, "clock must be monotonic");
        if last >= self.start {
            let age = (now - last) as usize;
            debug_assert!(age < self.factors.len(), "age exceeds run length");
            self.factors[age]
        } else {
            model.decay_between(last, now)
        }
    }
}

/// Persistent age-indexed memo of [`TimeModel::weight_after`].
///
/// Pruning a synopsis evaluates `δ^age` once per live cell, and a store
/// accumulates far more cells than distinct ages — cells touched on the
/// same tick share one factor. This cache pays the `powi` **once per
/// distinct age over the detector's lifetime** and serves every later
/// evaluation from an indexed load. Entries are computed with
/// [`TimeModel::weight_after`] itself, so a cached lookup is bit-identical
/// to the computation it replaces — pruning decisions are unchanged, only
/// cheaper.
///
/// The cache is derived state: it is never persisted, and a restored
/// detector rebuilds it lazily on its first prune.
#[derive(Debug, Clone, Default)]
pub struct WeightCache {
    /// `factors[age] == model.weight_after(age)` for every cached age.
    factors: Vec<f64>,
}

impl WeightCache {
    /// Hard cap on cached entries (512 KiB of factors). Ages beyond the
    /// cap fall back to the model — on any realistic decay model a cell
    /// that old is far below every pruning floor anyway.
    pub const MAX_AGES: usize = 1 << 16;

    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ages currently cached.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Extends the cache so every age `< upto` (capped at
    /// [`WeightCache::MAX_AGES`]) is served without a `powi`. Each new
    /// entry costs one [`TimeModel::weight_after`]; already-cached ages
    /// cost nothing, so calling this before every prune amortizes to one
    /// evaluation per distinct age over the stream's lifetime.
    pub fn ensure(&mut self, model: &TimeModel, upto: u64) {
        let want = (upto as usize).min(Self::MAX_AGES);
        if self.factors.len() >= want {
            return;
        }
        self.factors.reserve(want - self.factors.len());
        for age in self.factors.len() as u64..want as u64 {
            self.factors.push(model.weight_after(age));
        }
    }

    /// `model.weight_after(age)`, served from the cache when the age is in
    /// range. Read-only — safe to call from parallel prune shards over one
    /// shared cache.
    #[inline]
    pub fn weight(&self, model: &TimeModel, age: u64) -> f64 {
        match self.factors.get(age as usize) {
            Some(&f) => f,
            None => model.weight_after(age),
        }
    }

    /// Renormalization factor from `last` to `now` (the cached counterpart
    /// of [`TimeModel::decay_between`]).
    #[inline]
    pub fn decay_between(&self, model: &TimeModel, last: u64, now: u64) -> f64 {
        debug_assert!(now >= last, "clock must be monotonic");
        self.weight(model, now - last)
    }
}

/// A single decayed scalar with lazy renormalization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayedCounter {
    value: f64,
    last_tick: u64,
}

impl Default for DecayedCounter {
    fn default() -> Self {
        DecayedCounter {
            value: 0.0,
            last_tick: 0,
        }
    }
}

impl DecayedCounter {
    /// Zero counter at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` at tick `now`, decaying the stored value first.
    #[inline]
    pub fn add(&mut self, model: &TimeModel, now: u64, amount: f64) {
        self.value = self.value * model.decay_between(self.last_tick, now) + amount;
        self.last_tick = now;
    }

    /// Advances the counter over a run of `len` unit arrivals at the
    /// consecutive ticks `start, start+1, …`, pushing the counter's value
    /// *after* each arrival into `out` (cleared first; reuse it across
    /// runs). One geometric recurrence replaces `len` separate
    /// [`DecayedCounter::add`] calls: after the single gap renormalization
    /// to `start`, each step is `value = value · δ + 1` — exactly the
    /// floating-point operations the per-point path performs, so the
    /// results are bit-identical, with no per-point `powi` and no
    /// per-point call overhead.
    pub fn add_run(&mut self, model: &TimeModel, start: u64, len: usize, out: &mut Vec<f64>) {
        out.clear();
        if len == 0 {
            return;
        }
        out.reserve(len);
        let mut value = self.value * model.decay_between(self.last_tick, start);
        let decay = model.decay();
        value += 1.0;
        out.push(value);
        for _ in 1..len {
            value = value * decay + 1.0;
            out.push(value);
        }
        self.value = value;
        self.last_tick = start + len as u64 - 1;
    }

    /// Value renormalized to tick `now` (does not mutate).
    #[inline]
    pub fn value_at(&self, model: &TimeModel, now: u64) -> f64 {
        self.value * model.decay_between(self.last_tick, now)
    }

    /// Last tick at which the counter was touched.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Forces the stored value (used when rebuilding from snapshots).
    pub fn reset(&mut self, value: f64, tick: u64) {
        self.value = value;
        self.last_tick = tick;
    }
}

impl DurableState for DecayedCounter {
    fn capture(&self, w: &mut StateWriter) {
        w.f64_bits("value", self.value);
        w.u64("last_tick", self.last_tick);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> std::result::Result<(), PersistError> {
        self.value = r.f64_bits("value")?;
        self.last_tick = r.u64("last_tick")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decay_factor_definition() {
        let tm = TimeModel::new(100, 0.01).unwrap();
        assert!((tm.decay() - 0.01f64.powf(0.01)).abs() < 1e-12);
        // A point exactly omega old weighs epsilon.
        assert!((tm.weight_after(100) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TimeModel::new(0, 0.1).is_err());
        assert!(TimeModel::new(10, 0.0).is_err());
        assert!(TimeModel::new(10, 1.0).is_err());
        assert!(TimeModel::new(10, -0.5).is_err());
        assert!(TimeModel::new(10, 1.5).is_err());
    }

    #[test]
    fn landmark_never_decays() {
        let tm = TimeModel::landmark();
        assert_eq!(tm.weight_after(1_000_000), 1.0);
        assert_eq!(tm.steady_state_weight(), f64::INFINITY);
    }

    #[test]
    fn weight_monotonically_decreasing() {
        let tm = TimeModel::new(50, 0.05).unwrap();
        let mut prev = tm.weight_after(0);
        for age in 1..200 {
            let w = tm.weight_after(age);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn expired_fraction_is_epsilon() {
        // Unit arrivals per tick: weight of expired points over total
        // steady-state weight must equal epsilon.
        for &(omega, eps) in &[(10u64, 0.1f64), (100, 0.01), (1000, 0.001)] {
            let tm = TimeModel::new(omega, eps).unwrap();
            let frac = tm.expired_weight_bound() / tm.steady_state_weight();
            assert!(
                (frac - eps).abs() < 1e-9,
                "omega={omega} eps={eps} frac={frac}"
            );
        }
    }

    #[test]
    fn counter_lazy_equals_eager() {
        let tm = TimeModel::new(20, 0.1).unwrap();
        // Lazy: single counter touched at irregular ticks.
        let mut lazy = DecayedCounter::new();
        let events: &[(u64, f64)] = &[(0, 1.0), (3, 2.0), (7, 1.5), (20, 0.5)];
        for &(t, amt) in events {
            lazy.add(&tm, t, amt);
        }
        // Eager: decay applied every tick.
        let mut eager = 0.0;
        let mut idx = 0;
        for t in 0..=20u64 {
            if t > 0 {
                eager *= tm.decay();
            }
            while idx < events.len() && events[idx].0 == t {
                eager += events[idx].1;
                idx += 1;
            }
        }
        assert!((lazy.value_at(&tm, 20) - eager).abs() < 1e-9);
    }

    #[test]
    fn counter_value_at_future_tick() {
        let tm = TimeModel::new(10, 0.5).unwrap();
        let mut c = DecayedCounter::new();
        c.add(&tm, 0, 4.0);
        let v10 = c.value_at(&tm, 10);
        assert!((v10 - 2.0).abs() < 1e-9); // epsilon 0.5 at age omega
                                           // Non-mutating.
        assert!((c.value_at(&tm, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn counter_reset() {
        let tm = TimeModel::new(10, 0.5).unwrap();
        let mut c = DecayedCounter::new();
        c.add(&tm, 5, 3.0);
        c.reset(7.0, 8);
        assert_eq!(c.last_tick(), 8);
        assert!((c.value_at(&tm, 8) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn add_run_matches_per_point_adds_bitwise() {
        let tm = TimeModel::new(100, 0.01).unwrap();
        let mut per_point = DecayedCounter::new();
        per_point.add(&tm, 3, 1.0);
        let mut run = per_point;
        // Reference: one add per consecutive tick, reading back after each.
        let mut want = Vec::new();
        for now in 10..10 + 64u64 {
            per_point.add(&tm, now, 1.0);
            want.push(per_point.value_at(&tm, now));
        }
        let mut got = Vec::new();
        run.add_run(&tm, 10, 64, &mut got);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "arrival {i}: {g} vs {w}");
        }
        assert_eq!(run.last_tick(), per_point.last_tick());
        assert_eq!(
            run.value_at(&tm, 100).to_bits(),
            per_point.value_at(&tm, 100).to_bits()
        );
    }

    #[test]
    fn add_run_empty_is_a_no_op() {
        let tm = TimeModel::new(10, 0.5).unwrap();
        let mut c = DecayedCounter::new();
        c.add(&tm, 5, 2.0);
        let before = c;
        let mut out = vec![1.0];
        c.add_run(&tm, 9, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(c, before);
    }

    #[test]
    fn decay_table_matches_model_bitwise() {
        let tm = TimeModel::new(100, 0.01).unwrap();
        let mut table = DecayTable::new();
        table.fill(&tm, 50, 32); // run ticks 50..=81
                                 // In-run lookups are bit-identical to the powi path.
        for last in 50..=81u64 {
            for now in last..=81 {
                assert_eq!(
                    table.factor(&tm, last, now).to_bits(),
                    tm.decay_between(last, now).to_bits(),
                    "last={last} now={now}"
                );
            }
        }
        // Pre-run last ticks fall back to the model.
        assert_eq!(
            table.factor(&tm, 7, 60).to_bits(),
            tm.decay_between(7, 60).to_bits()
        );
        assert_eq!(table.start(), 50);
    }

    #[test]
    fn weight_cache_is_bitwise_identical_to_the_model() {
        let tm = TimeModel::new(100, 0.01).unwrap();
        let mut wc = WeightCache::new();
        wc.ensure(&tm, 500);
        assert_eq!(wc.len(), 500);
        for age in 0..600u64 {
            // In-cache and fallback lookups alike must reproduce the exact
            // powi result the uncached path computes.
            assert_eq!(
                wc.weight(&tm, age).to_bits(),
                tm.weight_after(age).to_bits(),
                "age {age}"
            );
        }
        assert_eq!(
            wc.decay_between(&tm, 40, 250).to_bits(),
            tm.decay_between(40, 250).to_bits()
        );
    }

    #[test]
    fn weight_cache_extends_incrementally_and_caps() {
        let tm = TimeModel::new(50, 0.05).unwrap();
        let mut wc = WeightCache::new();
        wc.ensure(&tm, 10);
        wc.ensure(&tm, 5); // shrinking request is a no-op
        assert_eq!(wc.len(), 10);
        wc.ensure(&tm, 64);
        assert_eq!(wc.len(), 64);
        wc.ensure(&tm, u64::MAX);
        assert_eq!(wc.len(), WeightCache::MAX_AGES);
        // Beyond the cap the model fallback still answers exactly.
        let age = WeightCache::MAX_AGES as u64 + 17;
        assert_eq!(
            wc.weight(&tm, age).to_bits(),
            tm.weight_after(age).to_bits()
        );
    }

    #[test]
    fn decay_table_refill_reuses_allocation() {
        let tm = TimeModel::new(10, 0.5).unwrap();
        let mut table = DecayTable::new();
        table.fill(&tm, 0, 64);
        table.fill(&tm, 100, 8); // run ticks 100..=107
        assert_eq!(
            table.factor(&tm, 100, 107).to_bits(),
            tm.weight_after(7).to_bits()
        );
    }

    proptest! {
        #[test]
        fn add_run_equals_per_point_for_any_run(
            gap in 0u64..500, len in 1usize..200, omega in 2u64..1000
        ) {
            let tm = TimeModel::new(omega, 0.01).unwrap();
            let mut a = DecayedCounter::new();
            a.add(&tm, 1, 1.0);
            let mut b = a;
            let start = 2 + gap;
            let mut got = Vec::new();
            b.add_run(&tm, start, len, &mut got);
            for (i, g) in got.iter().enumerate() {
                let now = start + i as u64;
                a.add(&tm, now, 1.0);
                prop_assert_eq!(g.to_bits(), a.value_at(&tm, now).to_bits());
            }
        }

        #[test]
        fn omega_old_point_weighs_at_most_epsilon(
            omega in 1u64..10_000, eps in 0.0001f64..0.9999, extra in 0u64..1000
        ) {
            let tm = TimeModel::new(omega, eps).unwrap();
            let w = tm.weight_after(omega + extra);
            prop_assert!(w <= eps * (1.0 + 1e-9));
        }

        #[test]
        fn counter_accumulation_order_free(amounts in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            // All arrivals at the same tick: order must not matter.
            let tm = TimeModel::new(10, 0.1).unwrap();
            let mut a = DecayedCounter::new();
            for &x in &amounts { a.add(&tm, 5, x); }
            let mut rev = amounts.clone();
            rev.reverse();
            let mut b = DecayedCounter::new();
            for &x in &rev { b.add(&tm, 5, x); }
            prop_assert!((a.value_at(&tm, 5) - b.value_at(&tm, 5)).abs() < 1e-9);
        }
    }
}
