//! Streaming substrate for SPOT.
//!
//! Contains the paper's (ω, ε) window-based time model ([`time::TimeModel`])
//! with its lazily-decayed counters, a logical clock, stream source
//! abstractions (in-memory, generator-backed, and a crossbeam-channel-backed
//! source for rate-controlled producers), an exact sliding window kept
//! for baseline detectors and for quantifying the approximation error of the
//! (ω, ε) model (experiment E9), and the write-ahead-log segment codec plus
//! offline replay source ([`wal`]) shared with the `spot-runtime` ingestion
//! WAL.

pub mod clock;
pub mod sample;
pub mod source;
pub mod time;
pub mod wal;
pub mod window;

pub use clock::LogicalClock;
pub use sample::{CounterRng, Reservoir, RunDraws};
pub use source::{ChannelSource, FnSource, PointStream, VecSource};
pub use time::{DecayTable, DecayedCounter, TimeModel, WeightCache};
pub use wal::{WalScan, WalSource};
pub use window::ExactSlidingWindow;
