//! Write-ahead-log segment format and replay reader.
//!
//! The ingestion WAL (written by `spot-runtime`, see `docs/persistence.md`
//! § "The ingestion WAL") is a per-tenant sequence of **segment files**,
//! each a fixed header followed by checksummed, length-prefixed binary
//! record frames. This module owns the byte-level format — encoding,
//! decoding, torn-tail detection — and the offline replay reader
//! ([`WalSource`], a [`crate::PointStream`] over a tenant's log). The
//! *writer* (rotation, fsync policy, pruning) lives in `spot-runtime`,
//! next to the fleet it protects; both sides share this codec so a log is
//! readable with no runtime in sight.
//!
//! # On-disk layout
//!
//! ```text
//! <tenant-dir>/wal-00000001.seg
//! <tenant-dir>/wal-00000002.seg        (highest number = active segment)
//!
//! segment   := header record*
//! header    := magic[8]="SPOTWAL1" version:u32 base_processed:u64 first_seq:u64
//! record    := len:u32 payload[len] checksum:u64      (FNV-1a 64 of payload)
//! payload   := seq:u64 dims:u32 value_bits:u64 × dims (IEEE-754 bit lanes)
//! ```
//!
//! All scalars are little-endian lanes ([`spot_types::persist::lanes`]);
//! float attributes are raw bit patterns, so replay is bit-exact for every
//! value including `±0.0`, subnormals and the infinities clamped stream
//! values may carry.
//!
//! # Torn tails vs corruption
//!
//! A crash can stop the writer mid-frame. Recovery distinguishes two
//! situations:
//!
//! * **Torn tail** — the *final* segment ends inside a frame (incomplete
//!   length prefix, or a frame extending past EOF), its final frame fails
//!   its checksum, or the segment is shorter than its header (a crash
//!   during rotation). These are the expected residue of a kill at an
//!   arbitrary byte; the scan silently truncates to the last whole valid
//!   record. Un-acknowledged bytes are dropped; everything before them
//!   replays.
//! * **Corruption** — damage that cannot be a crash artifact: an invalid
//!   frame in a *sealed* (non-final) segment, a checksum-valid record
//!   whose payload does not decode, or a sequence-number discontinuity.
//!   These yield [`SpotError::WalCorrupt`]; they are never repaired
//!   silently, because records after the damage may have been
//!   acknowledged.

use spot_types::persist::{fnv1a64, lanes};
use spot_types::{DataPoint, Result, SpotError, StreamRecord};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: [u8; 8] = *b"SPOTWAL1";

/// WAL segment format version.
pub const WAL_SEGMENT_VERSION: u32 = 1;

/// Byte length of a segment header (magic + version + base + first_seq).
pub const WAL_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Hard upper bound on one record's payload length. A length prefix above
/// this is structurally impossible (it would imply a ≥ 87M-dimension
/// point) and is treated as a torn/corrupt frame instead of an allocation
/// request.
pub const MAX_WAL_RECORD: u32 = 1 << 26;

/// File-name prefix of a segment (`wal-<number:08>.seg`).
pub const SEGMENT_PREFIX: &str = "wal-";

/// File-name suffix of a segment.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// Builds the file name of segment `number`.
pub fn segment_file_name(number: u64) -> String {
    format!("{SEGMENT_PREFIX}{number:08}{SEGMENT_SUFFIX}")
}

/// Parses a segment file name back into its number.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// A decoded segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// The tenant detector's `processed` counter at the instant the WAL
    /// was attached — the stream position record seq 0 maps to. Constant
    /// across all segments of one log.
    pub base_processed: u64,
    /// Sequence number of the first record this segment holds.
    pub first_seq: u64,
}

/// Encodes a segment header into its fixed-width byte form.
pub fn encode_segment_header(h: SegmentHeader) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN);
    buf.extend_from_slice(&WAL_MAGIC);
    lanes::put_u32(&mut buf, WAL_SEGMENT_VERSION);
    lanes::put_u64(&mut buf, h.base_processed);
    lanes::put_u64(&mut buf, h.first_seq);
    buf
}

/// Decodes a segment header. `None` means the bytes cannot be a complete
/// valid header (too short, wrong magic, unknown version) — for a final
/// segment that is a torn rotation, for a sealed one it is corruption;
/// the caller knows which.
pub fn decode_segment_header(bytes: &[u8]) -> Option<SegmentHeader> {
    if bytes.len() < WAL_HEADER_LEN || bytes[..8] != WAL_MAGIC {
        return None;
    }
    if lanes::get_u32(bytes, 8)? != WAL_SEGMENT_VERSION {
        return None;
    }
    Some(SegmentHeader {
        base_processed: lanes::get_u64(bytes, 12)?,
        first_seq: lanes::get_u64(bytes, 20)?,
    })
}

/// Appends one record frame (`len + payload + checksum`) for `(seq,
/// point)` to `buf` and returns the frame's byte length.
pub fn encode_record(seq: u64, point: &DataPoint, buf: &mut Vec<u8>) -> usize {
    let payload_len = 8 + 4 + 8 * point.dims();
    let start = buf.len();
    lanes::put_u32(buf, payload_len as u32);
    lanes::put_u64(buf, seq);
    lanes::put_u32(buf, point.dims() as u32);
    for &v in point.values() {
        lanes::put_f64_bits(buf, v);
    }
    let checksum = fnv1a64(&buf[start + 4..start + 4 + payload_len]);
    lanes::put_u64(buf, checksum);
    buf.len() - start
}

/// Byte length of the frame [`encode_record`] produces for a
/// `dims`-dimensional point.
pub fn record_frame_len(dims: usize) -> usize {
    4 + (8 + 4 + 8 * dims) + 8
}

/// Result of scanning one segment's bytes.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// The decoded header.
    pub header: SegmentHeader,
    /// Every whole valid record, in order.
    pub records: Vec<(u64, DataPoint)>,
    /// Byte offset one past the last valid record (the truncation point a
    /// writer resuming on this segment must cut back to).
    pub valid_len: usize,
    /// Bytes after `valid_len` dropped as a torn tail (0 for a clean
    /// segment).
    pub torn_bytes: usize,
}

/// Why a frame could not be read at some offset.
enum FrameStop {
    /// The segment ends inside the frame (length prefix or body
    /// incomplete) or the final frame's checksum fails — a crash artifact
    /// if this is the last readable data, corruption otherwise.
    Torn(String),
    /// The frame is structurally impossible even though its bytes are all
    /// present (undecodable payload under a valid checksum, seq gap).
    Corrupt(String),
}

/// Scans one segment. `is_final` selects the torn-tail policy: in the
/// final (active) segment an incomplete or checksum-failing trailing
/// frame is silently truncated; in a sealed segment any damage is
/// [`SpotError::WalCorrupt`]. `expect_first_seq` (when `Some`) pins the
/// header's `first_seq` — a gap between segments is corruption.
pub fn scan_segment(
    bytes: &[u8],
    is_final: bool,
    expect_first_seq: Option<u64>,
) -> Result<SegmentScan> {
    let Some(header) = decode_segment_header(bytes) else {
        return Err(SpotError::WalCorrupt(
            "segment header missing, wrong magic, or unknown version".to_string(),
        ));
    };
    if let Some(want) = expect_first_seq {
        if header.first_seq != want {
            return Err(SpotError::WalCorrupt(format!(
                "segment first_seq {} does not continue the log (expected {want})",
                header.first_seq
            )));
        }
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    let mut next_seq = header.first_seq;
    loop {
        if at == bytes.len() {
            return Ok(SegmentScan {
                header,
                records,
                valid_len: at,
                torn_bytes: 0,
            });
        }
        match read_frame(bytes, at, next_seq) {
            Ok((record, frame_len)) => {
                records.push(record);
                next_seq += 1;
                at += frame_len;
            }
            Err(FrameStop::Torn(_)) if is_final => {
                return Ok(SegmentScan {
                    header,
                    records,
                    valid_len: at,
                    torn_bytes: bytes.len() - at,
                });
            }
            Err(FrameStop::Torn(why)) => {
                return Err(SpotError::WalCorrupt(format!(
                    "sealed segment damaged at byte {at}: {why}"
                )));
            }
            Err(FrameStop::Corrupt(why)) => {
                return Err(SpotError::WalCorrupt(format!("record at byte {at}: {why}")));
            }
        }
    }
}

/// Reads one frame at `at`; `expect_seq` pins the record's sequence
/// number (an in-order log has no gaps).
fn read_frame(
    bytes: &[u8],
    at: usize,
    expect_seq: u64,
) -> std::result::Result<((u64, DataPoint), usize), FrameStop> {
    let Some(len) = lanes::get_u32(bytes, at) else {
        return Err(FrameStop::Torn("incomplete length prefix".to_string()));
    };
    if !(12..=MAX_WAL_RECORD).contains(&len) || (len - 12) % 8 != 0 {
        // Garbage length prefixes are indistinguishable from a torn
        // partial write of the prefix itself.
        return Err(FrameStop::Torn(format!("implausible frame length {len}")));
    }
    let body = at + 4;
    let Some(payload) = bytes.get(body..body + len as usize) else {
        return Err(FrameStop::Torn(format!(
            "frame of {len} bytes extends past end of segment"
        )));
    };
    let Some(stored) = lanes::get_u64(bytes, body + len as usize) else {
        return Err(FrameStop::Torn("incomplete checksum".to_string()));
    };
    if fnv1a64(payload) != stored {
        return Err(FrameStop::Torn("checksum mismatch".to_string()));
    }
    // The checksum verified: the payload is exactly what the writer
    // sealed, so any structural problem below is real corruption (or a
    // writer bug), never a crash artifact.
    let seq = lanes::get_u64(payload, 0).expect("payload ≥ 12 bytes");
    let dims = lanes::get_u32(payload, 8).expect("payload ≥ 12 bytes") as usize;
    if 12 + 8 * dims != len as usize {
        return Err(FrameStop::Corrupt(format!(
            "checksum-valid record declares {dims} dims in a {len}-byte payload"
        )));
    }
    if seq != expect_seq {
        return Err(FrameStop::Corrupt(format!(
            "sequence discontinuity: record carries seq {seq}, log position is {expect_seq}"
        )));
    }
    let values: Vec<f64> = (0..dims)
        .map(|d| lanes::get_f64_bits(payload, 12 + 8 * d).expect("length checked"))
        .collect();
    Ok(((seq, DataPoint::new(values)), 4 + len as usize + 8))
}

/// One live segment file of a scanned log.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Segment number (file `wal-<number:08>.seg`).
    pub number: u64,
    /// Full path of the file.
    pub path: PathBuf,
    /// Decoded header.
    pub header: SegmentHeader,
    /// Byte offset one past the last valid record.
    pub valid_len: usize,
    /// Torn bytes dropped after `valid_len` (final segment only).
    pub torn_bytes: usize,
    /// Number of whole valid records in the segment.
    pub records: usize,
}

/// A fully scanned per-tenant WAL directory.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// The log's base stream position (see [`SegmentHeader`]).
    pub base_processed: u64,
    /// Sequence number of the oldest retained record (> 0 after pruning).
    pub first_seq: u64,
    /// Sequence number the next appended record will get.
    pub next_seq: u64,
    /// Live segments, oldest first. The last entry is the active segment.
    pub segments: Vec<SegmentInfo>,
    /// Trailing segment files dropped whole because a crash during
    /// rotation left their header incomplete (paths, for deletion by a
    /// resuming writer).
    pub dropped: Vec<PathBuf>,
    /// Total torn bytes truncated across the scan.
    pub torn_bytes: u64,
}

impl WalScan {
    /// Total whole valid records across all live segments.
    pub fn records(&self) -> u64 {
        self.next_seq - self.first_seq
    }
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> SpotError {
    SpotError::Io(format!("{action} {}: {e}", path.display()))
}

/// Scans a tenant's WAL directory without mutating it: orders the segment
/// files, drops trailing torn-rotation files, applies the torn-tail
/// policy to the final live segment, and verifies cross-segment sequence
/// continuity. Returns `None` when the directory holds no segment files
/// (or does not exist).
pub fn scan_wal_dir(dir: &Path) -> Result<Option<WalScan>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("list", dir, &e)),
    };
    let mut numbers = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list", dir, &e))?;
        if let Some(n) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            numbers.push(n);
        }
    }
    if numbers.is_empty() {
        return Ok(None);
    }
    numbers.sort_unstable();
    // A crash during rotation can leave trailing segment files whose
    // header never completed; drop them whole (they hold nothing valid)
    // so the *previous* segment becomes the final one and gets the
    // torn-tail policy.
    let mut dropped = Vec::new();
    while let Some(&last) = numbers.last() {
        let path = dir.join(segment_file_name(last));
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        if decode_segment_header(&bytes).is_some() {
            break;
        }
        dropped.push(path);
        numbers.pop();
    }
    if numbers.is_empty() {
        return Ok(None);
    }
    let mut segments = Vec::with_capacity(numbers.len());
    let mut base_processed = 0;
    let mut first_seq = 0;
    let mut expect_seq: Option<u64> = None;
    let mut torn_bytes = 0u64;
    let final_index = numbers.len() - 1;
    for (i, &number) in numbers.iter().enumerate() {
        let path = dir.join(segment_file_name(number));
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        let scan =
            scan_segment(&bytes, i == final_index, expect_seq).map_err(|e| wal_err_in(&path, e))?;
        if i == 0 {
            base_processed = scan.header.base_processed;
            first_seq = scan.header.first_seq;
        } else if scan.header.base_processed != base_processed {
            return Err(SpotError::WalCorrupt(format!(
                "{}: base_processed {} differs from the log's {base_processed}",
                path.display(),
                scan.header.base_processed
            )));
        }
        torn_bytes += scan.torn_bytes as u64;
        expect_seq = Some(scan.header.first_seq + scan.records.len() as u64);
        segments.push(SegmentInfo {
            number,
            path,
            header: scan.header,
            valid_len: scan.valid_len,
            torn_bytes: scan.torn_bytes,
            records: scan.records.len(),
        });
    }
    Ok(Some(WalScan {
        base_processed,
        first_seq,
        next_seq: expect_seq.expect("at least one segment scanned"),
        segments,
        dropped,
        torn_bytes,
    }))
}

fn wal_err_in(path: &Path, e: SpotError) -> SpotError {
    match e {
        SpotError::WalCorrupt(msg) => SpotError::WalCorrupt(format!("{}: {msg}", path.display())),
        other => other,
    }
}

/// Reads every record of a tenant's log with sequence number ≥
/// `from_seq`, applying the same torn-tail policy as [`scan_wal_dir`].
/// Errors with [`SpotError::WalCorrupt`] when `from_seq` predates the
/// oldest retained record (those records were pruned — the log cannot
/// serve a replay from before its retention window).
pub fn read_wal_from(dir: &Path, from_seq: u64) -> Result<Vec<(u64, DataPoint)>> {
    let Some(scan) = scan_wal_dir(dir)? else {
        return Ok(Vec::new());
    };
    if from_seq < scan.first_seq {
        return Err(SpotError::WalCorrupt(format!(
            "replay from seq {from_seq} requested, but the log was pruned up to {}",
            scan.first_seq
        )));
    }
    let mut out = Vec::new();
    let final_index = scan.segments.len() - 1;
    for (i, seg) in scan.segments.iter().enumerate() {
        let end = seg.header.first_seq + seg.records as u64;
        if end <= from_seq {
            continue;
        }
        let bytes = std::fs::read(&seg.path).map_err(|e| io_err("read", &seg.path, &e))?;
        let parsed = scan_segment(&bytes, i == final_index, Some(seg.header.first_seq))
            .map_err(|e| wal_err_in(&seg.path, e))?;
        for (seq, point) in parsed.records {
            if seq >= from_seq {
                out.push((seq, point));
            }
        }
    }
    Ok(out)
}

/// Offline replay of one tenant's WAL as a stream source.
///
/// `WalSource` iterates a log directory's records as [`StreamRecord`]s —
/// the record's WAL sequence number becomes the stream sequence — so any
/// consumer of the [`crate::PointStream`] trait (the detection loop, a
/// baseline, an audit script) can re-run a tenant's exact ingestion
/// history with no fleet in sight. Bit-exact: attribute values round-trip
/// as IEEE-754 bit patterns.
///
/// The source applies the standard torn-tail policy (a half-written final
/// record is dropped, sealed-segment damage errors at open time) and
/// loads the log eagerly at `open` — WAL tails are bounded by checkpoint
/// pruning, so the whole tail fits comfortably in memory.
#[derive(Debug)]
pub struct WalSource {
    records: std::vec::IntoIter<(u64, DataPoint)>,
    base_processed: u64,
}

impl WalSource {
    /// Opens a tenant's log directory for replay from its oldest retained
    /// record.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_from(dir, 0)
    }

    /// Opens a tenant's log directory for replay from sequence number
    /// `from_seq` (clamped up to the oldest retained record **only** when
    /// `from_seq` is 0 — an explicit position inside the pruned range is
    /// an error).
    pub fn open_from(dir: impl AsRef<Path>, from_seq: u64) -> Result<Self> {
        let dir = dir.as_ref();
        let scan = scan_wal_dir(dir)?;
        let base_processed = scan.as_ref().map_or(0, |s| s.base_processed);
        let effective = match &scan {
            Some(scan) if from_seq == 0 => scan.first_seq,
            _ => from_seq,
        };
        let records = read_wal_from(dir, effective)?;
        Ok(WalSource {
            records: records.into_iter(),
            base_processed,
        })
    }

    /// The log's base stream position: the detector `processed` counter
    /// that record seq 0 corresponds to.
    pub fn base_processed(&self) -> u64 {
        self.base_processed
    }

    /// Records remaining.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records remain.
    pub fn is_empty(&self) -> bool {
        self.records.len() == 0
    }
}

impl Iterator for WalSource {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let (seq, point) = self.records.next()?;
        Some(StreamRecord::new(seq, point))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.records.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(vs: &[f64]) -> DataPoint {
        DataPoint::new(vs.to_vec())
    }

    fn segment_bytes(header: SegmentHeader, records: &[(u64, DataPoint)]) -> Vec<u8> {
        let mut buf = encode_segment_header(header);
        for (seq, p) in records {
            encode_record(*seq, p, &mut buf);
        }
        buf
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let h = SegmentHeader {
            base_processed: 42,
            first_seq: 7,
        };
        let bytes = encode_segment_header(h);
        assert_eq!(bytes.len(), WAL_HEADER_LEN);
        assert_eq!(decode_segment_header(&bytes), Some(h));
        // Truncated, wrong magic, unknown version → None.
        assert_eq!(decode_segment_header(&bytes[..WAL_HEADER_LEN - 1]), None);
        let mut bad = bytes.clone();
        bad[0] ^= 0x40;
        assert_eq!(decode_segment_header(&bad), None);
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert_eq!(decode_segment_header(&bad), None);
    }

    #[test]
    fn record_roundtrip_bit_exact() {
        let specials = pt(&[0.1, -0.0, f64::INFINITY, f64::MIN_POSITIVE / 2.0, 1e308]);
        let bytes = segment_bytes(
            SegmentHeader {
                base_processed: 3,
                first_seq: 0,
            },
            &[(0, specials.clone()), (1, pt(&[1.0; 5]))],
        );
        let scan = scan_segment(&bytes, true, Some(0)).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, bytes.len());
        for (a, b) in specials.values().iter().zip(scan.records[0].1.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn torn_tail_truncates_only_in_final_segment() {
        let header = SegmentHeader {
            base_processed: 0,
            first_seq: 0,
        };
        let records: Vec<(u64, DataPoint)> = (0..4).map(|i| (i, pt(&[i as f64, 0.5]))).collect();
        let clean = segment_bytes(header, &records);
        let frame = record_frame_len(2);
        // Cut at every byte inside the last frame: the final-segment scan
        // always yields exactly the first 3 records.
        for cut in (clean.len() - frame + 1)..clean.len() {
            let torn = &clean[..cut];
            let scan = scan_segment(torn, true, Some(0)).unwrap();
            assert_eq!(scan.records.len(), 3, "cut at {cut}");
            assert_eq!(scan.valid_len, clean.len() - frame);
            assert_eq!(scan.torn_bytes, cut - scan.valid_len);
            // The same damage in a sealed segment is corruption.
            assert!(matches!(
                scan_segment(torn, false, Some(0)),
                Err(SpotError::WalCorrupt(_))
            ));
        }
    }

    #[test]
    fn final_frame_checksum_mismatch_is_torn_mid_log_is_corrupt() {
        let header = SegmentHeader {
            base_processed: 0,
            first_seq: 0,
        };
        let records: Vec<(u64, DataPoint)> = (0..3).map(|i| (i, pt(&[i as f64]))).collect();
        let clean = segment_bytes(header, &records);
        let frame = record_frame_len(1);
        // Flip a payload bit in the last record: torn tail (dropped).
        let mut bytes = clean.clone();
        let last_payload = bytes.len() - frame + 4;
        bytes[last_payload + 13] ^= 1;
        let scan = scan_segment(&bytes, true, Some(0)).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, frame);
        // Flip the same bit in the *first* record. In the final segment a
        // bad frame is always the truncation point (frame lengths vary, so
        // re-synchronising past it is not possible); everything after is
        // dropped. In a sealed segment the same damage is corruption.
        let mut bytes = clean;
        bytes[WAL_HEADER_LEN + 4 + 13] ^= 1;
        let scan = scan_segment(&bytes, true, Some(0)).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
        assert!(matches!(
            scan_segment(&bytes, false, Some(0)),
            Err(SpotError::WalCorrupt(_))
        ));
    }

    #[test]
    fn sequence_discontinuity_is_corrupt_even_with_valid_checksums() {
        let header = SegmentHeader {
            base_processed: 0,
            first_seq: 0,
        };
        let bytes = segment_bytes(header, &[(0, pt(&[1.0])), (2, pt(&[2.0]))]);
        let err = scan_segment(&bytes, true, Some(0)).unwrap_err();
        assert!(matches!(err, SpotError::WalCorrupt(ref m) if m.contains("discontinuity")));
    }

    #[test]
    fn dir_scan_orders_segments_and_drops_torn_rotation() {
        let dir = std::env::temp_dir().join(format!("spot-walscan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let h1 = SegmentHeader {
            base_processed: 5,
            first_seq: 0,
        };
        let h2 = SegmentHeader {
            base_processed: 5,
            first_seq: 2,
        };
        std::fs::write(
            dir.join(segment_file_name(1)),
            segment_bytes(h1, &[(0, pt(&[0.0])), (1, pt(&[1.0]))]),
        )
        .unwrap();
        std::fs::write(
            dir.join(segment_file_name(2)),
            segment_bytes(h2, &[(2, pt(&[2.0]))]),
        )
        .unwrap();
        // Crash mid-rotation: segment 3's header never completed.
        std::fs::write(dir.join(segment_file_name(3)), &WAL_MAGIC[..5]).unwrap();
        let scan = scan_wal_dir(&dir).unwrap().unwrap();
        assert_eq!(scan.base_processed, 5);
        assert_eq!((scan.first_seq, scan.next_seq), (0, 3));
        assert_eq!(scan.segments.len(), 2);
        assert_eq!(scan.dropped.len(), 1);
        assert_eq!(scan.records(), 3);
        // Replay from the middle.
        let tail = read_wal_from(&dir, 1).unwrap();
        assert_eq!(tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2]);
        // Replay from before the retention window errors once pruned.
        std::fs::remove_file(dir.join(segment_file_name(1))).unwrap();
        assert!(matches!(
            read_wal_from(&dir, 0),
            Err(SpotError::WalCorrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_source_replays_as_point_stream() {
        let dir = std::env::temp_dir().join(format!("spot-walsrc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let header = SegmentHeader {
            base_processed: 9,
            first_seq: 0,
        };
        let records: Vec<(u64, DataPoint)> =
            (0..6).map(|i| (i, pt(&[i as f64 * 0.25, -0.0]))).collect();
        std::fs::write(
            dir.join(segment_file_name(1)),
            segment_bytes(header, &records),
        )
        .unwrap();
        let src = WalSource::open(&dir).unwrap();
        assert_eq!(src.base_processed(), 9);
        assert_eq!(src.len(), 6);
        fn consume(stream: impl crate::PointStream) -> Vec<StreamRecord> {
            stream.collect()
        }
        let recs = consume(src);
        assert_eq!(recs.len(), 6);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.point.values()[0].to_bits(), (i as f64 * 0.25).to_bits());
        }
        // open_from an explicit tail position.
        let tail: Vec<_> = WalSource::open_from(&dir, 4).unwrap().collect();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        // An empty/missing dir is an empty stream, not an error.
        let empty = WalSource::open(dir.join("nope")).unwrap();
        assert!(empty.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
