//! Counter-based reservoir sampling of the recent stream.
//!
//! The original reservoir drew its accept/replace index from the
//! detector's sequential RNG, which made the commit phase order-dependent
//! (every candidate consumed one draw, so draw *k*'s value depended on how
//! many points came before) and forced a snapshot to persist generator
//! state mid-stream. [`CounterRng`] replaces those draws with a *stateless*
//! generator keyed on `(seed, point ordinal)`: the draw for the *n*-th
//! offered point is a pure function of `n`, so
//!
//! * commits become point-parallelizable in principle (any subset of
//!   ordinals can be evaluated independently),
//! * reservoir state is trivially durable — the sample plus the ordinal
//!   counter *is* the whole state, and
//! * a restored detector continues the exact accept/replace sequence an
//!   uninterrupted one would have produced.
//!
//! The per-ordinal distribution is unchanged from Algorithm R: candidate
//! `n` replaces a reservoir slot with probability `cap/n`, each slot
//! equally likely (pinned by the distribution tests below).

use serde::{Deserialize, Serialize};
use spot_types::{DataPoint, DurableState, PersistError, StateReader, StateWriter};

/// Stateless counter-based generator: `draw(ordinal)` is a pure function
/// of `(seed, ordinal)` with SplitMix64-quality mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRng {
    seed: u64,
}

impl CounterRng {
    /// Generator for the given stream seed.
    pub fn new(seed: u64) -> Self {
        CounterRng { seed }
    }

    /// The seed this generator is keyed on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// 64 mixed bits for `ordinal` (SplitMix64: a Weyl step keyed by the
    /// seed followed by the finalizer, the same construction the `StdRng`
    /// seeder uses).
    #[inline]
    pub fn draw(&self, ordinal: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` for `ordinal` (`bound` > 0).
    /// Multiply-shift bounded sampling (Lemire), bias < 2⁻⁶⁴ per draw —
    /// the same mapping the sequential RNG's `gen_range` used.
    #[inline]
    pub fn index(&self, ordinal: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0, "cannot sample an empty range");
        ((self.draw(ordinal) as u128 * bound as u128) >> 64) as u64
    }
}

/// Order-free view of a run of consecutive reservoir offers.
///
/// [`Reservoir::offer`]'s accept/replace decision for the *i*-th point of
/// a run is a pure function of `(seed, seen₀ + i + 1)` plus the fill level
/// at the start of the run — no decision reads any other decision. This
/// snapshot exposes exactly that function, so a run's draws can be
/// evaluated in any order, on any thread, and in one batched pass
/// ([`Reservoir::offer_run`]) with results bit-identical to `len` serial
/// [`Reservoir::offer`] calls.
#[derive(Debug, Clone, Copy)]
pub struct RunDraws {
    rng: CounterRng,
    /// Items held when the run begins.
    len0: usize,
    /// Offers seen when the run begins.
    seen0: u64,
    cap: usize,
}

impl RunDraws {
    /// The slot the `i`-th offer of the run lands in (`None` when the draw
    /// rejects it). During the fill phase (`len0 + i < cap`) every offer
    /// pushes a fresh slot; afterwards the counter-keyed draw for ordinal
    /// `seen0 + i + 1` picks a replacement slot or rejects — exactly the
    /// decision [`Reservoir::offer`] makes for the same offer.
    #[inline]
    pub fn slot(&self, i: usize) -> Option<usize> {
        let held = self.len0 + i;
        if held < self.cap {
            return Some(held);
        }
        let ordinal = self.seen0 + i as u64 + 1;
        let j = self.rng.index(ordinal, ordinal);
        ((j as usize) < self.cap).then_some(j as usize)
    }

    /// Number of fill-phase offers at the head of a run of `len` points
    /// (those push fresh slots rather than replacing).
    pub fn fill_len(&self, len: usize) -> usize {
        self.cap.saturating_sub(self.len0).min(len)
    }
}

/// Algorithm-R reservoir over `(tick, point)` pairs with counter-based
/// draws: the accept/replace decision for the *n*-th offer depends only on
/// `(seed, n)`, never on earlier decisions.
#[derive(Debug, Clone)]
pub struct Reservoir {
    rng: CounterRng,
    items: Vec<(u64, DataPoint)>,
    /// Offers so far (the ordinal of the next offer is `seen + 1`).
    seen: u64,
    /// Reused winner scratch for [`Reservoir::offer_run`] (`u32::MAX` =
    /// slot untouched this run). Never part of the logical state.
    scratch: Vec<u32>,
}

impl Reservoir {
    /// Empty reservoir keyed on `seed`.
    pub fn new(seed: u64) -> Self {
        Reservoir {
            rng: CounterRng::new(seed),
            items: Vec::new(),
            seen: 0,
            scratch: Vec::new(),
        }
    }

    /// Snapshot of the draw function for a run of offers starting now (see
    /// [`RunDraws`]). Copyable into a parallel commit phase: the decisions
    /// it yields are exactly those the next offers would make.
    pub fn run_draws(&self, cap: usize) -> RunDraws {
        RunDraws {
            rng: self.rng,
            len0: self.items.len(),
            seen0: self.seen,
            cap,
        }
    }

    /// Offers one point at tick `now` against capacity `cap`. The point is
    /// cloned only when actually kept (fill or replacement).
    pub fn offer(&mut self, cap: usize, now: u64, p: &DataPoint) {
        self.seen += 1;
        if self.items.len() < cap {
            self.items.push((now, p.clone()));
        } else {
            let j = self.rng.index(self.seen, self.seen);
            if (j as usize) < cap {
                self.items[j as usize] = (now, p.clone());
            }
        }
    }

    /// Offers a run of points arriving at the consecutive ticks
    /// `start_now, start_now + 1, …` in one batched pass. State afterwards
    /// (items, order, `seen`) is bit-identical to `points.len()` serial
    /// [`Reservoir::offer`] calls — but each touched slot is written once,
    /// by its *last* accepted offer, so points whose acceptance would be
    /// overwritten later in the same run are never cloned at all.
    pub fn offer_run(&mut self, cap: usize, start_now: u64, points: &[DataPoint]) {
        let n = points.len();
        let draws = self.run_draws(cap);
        self.seen += n as u64;
        let len0 = self.items.len();
        let n_fill = draws.fill_len(n);
        // Slots a replacement can touch: 0..cap, but never beyond the
        // run-final fill level (replacements only start once the vec holds
        // `cap` items).
        let slots = cap.min(len0 + n_fill);
        let win = &mut self.scratch;
        win.clear();
        win.resize(slots, u32::MAX);
        // Backward scan claims each slot for its last writer.
        for i in (n_fill..n).rev() {
            if let Some(s) = draws.slot(i) {
                if win[s] == u32::MAX {
                    win[s] = i as u32;
                }
            }
        }
        // Fill phase: every offer pushes a fresh slot; its final content is
        // the slot's winning replacement when one exists.
        for i in 0..n_fill {
            let w = win[len0 + i];
            let src = if w == u32::MAX { i } else { w as usize };
            self.items
                .push((start_now + src as u64, points[src].clone()));
        }
        // Pre-existing slots overwritten by this run.
        for (s, &w) in win.iter().enumerate().take(len0.min(slots)) {
            if w != u32::MAX {
                self.items[s] = (start_now + w as u64, points[w as usize].clone());
            }
        }
    }

    /// The sampled `(tick, point)` pairs, in slot order.
    pub fn items(&self) -> &[(u64, DataPoint)] {
        &self.items
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total points offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl DurableState for Reservoir {
    fn capture(&self, w: &mut StateWriter) {
        w.u64("seed", self.rng.seed);
        w.u64("seen", self.seen);
        w.point_list("items", &self.items);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
        let seed = r.u64("seed")?;
        let seen = r.u64("seen")?;
        // Dimensionality is validated by the owner (the detector checks
        // the restored points against ϕ) — the reservoir itself is
        // dimension-agnostic.
        let items = r.point_list("items", None)?;
        self.rng = CounterRng::new(seed);
        self.seen = seen;
        self.items = items;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn p(v: f64) -> DataPoint {
        DataPoint::new(vec![v, v + 1.0])
    }

    #[test]
    fn draws_are_deterministic_and_seed_dependent() {
        let a = CounterRng::new(7);
        let b = CounterRng::new(7);
        let c = CounterRng::new(8);
        for n in 0..100 {
            assert_eq!(a.draw(n), b.draw(n));
        }
        assert!((0..100).any(|n| a.draw(n) != c.draw(n)));
    }

    #[test]
    fn index_respects_bound() {
        let rng = CounterRng::new(3);
        for n in 1..5000u64 {
            assert!(rng.index(n, n) < n);
            assert_eq!(rng.index(n, 1), 0);
        }
    }

    #[test]
    fn index_distribution_is_uniform() {
        // Distribution-level pin: over many ordinals the bounded draw must
        // fill every bin evenly (each bin expects 10_000 hits; a fair
        // generator deviates by a few hundred, a broken mapping by
        // thousands).
        let rng = CounterRng::new(42);
        let bins = 16u64;
        let per_bin = 10_000u64;
        let mut counts = [0u64; 16];
        for n in 0..bins * per_bin {
            counts[rng.index(n, bins) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - per_bin as i64).unsigned_abs() < per_bin / 20,
                "bin {i}: {c} hits vs expected {per_bin}"
            );
        }
    }

    #[test]
    fn reservoir_inclusion_matches_algorithm_r() {
        // Distribution-level pin for the sampler itself: with cap = 64 and
        // 4096 offers, every stream position must land in the final sample
        // with probability cap/N ≈ 1.56%. Aggregated over 64 seeds and
        // position quarters, each quarter expects 64·64/4 = 1024 hits.
        let cap = 64usize;
        let n = 4096u64;
        let mut quarter_hits = [0u64; 4];
        for seed in 0..64u64 {
            let mut res = Reservoir::new(seed);
            for i in 0..n {
                res.offer(cap, i, &p(i as f64));
            }
            assert_eq!(res.len(), cap);
            for (_, point) in res.items() {
                let pos = point.value(0) as u64;
                quarter_hits[(pos * 4 / n) as usize] += 1;
            }
        }
        let expected = 64 * cap as u64 / 4;
        for (q, &hits) in quarter_hits.iter().enumerate() {
            assert!(
                (hits as i64 - expected as i64).unsigned_abs() < expected / 5,
                "quarter {q}: {hits} hits vs expected {expected}"
            );
        }
    }

    #[test]
    fn draws_do_not_depend_on_acceptance_history() {
        // The counter property: two reservoirs fed the same ordinals make
        // identical decisions even if their *contents* diverged earlier
        // (here: different capacities during a warm-up prefix).
        let mut a = Reservoir::new(9);
        let mut b = Reservoir::new(9);
        for i in 0..50 {
            a.offer(4, i, &p(i as f64));
            b.offer(8, i, &p(i as f64));
        }
        // From here on both run at cap 4 over the same ordinals; their
        // replacement indices must coincide draw for draw.
        for i in 50..500 {
            let before_a: Vec<u64> = a.items().iter().map(|(t, _)| *t).collect();
            let before_b: Vec<u64> = b.items().iter().map(|(t, _)| *t).collect();
            a.offer(4, i, &p(i as f64));
            b.offer(4, i, &p(i as f64));
            let changed_a = a.items()[..4]
                .iter()
                .map(|(t, _)| *t)
                .zip(&before_a)
                .position(|(now, then)| now != *then);
            let changed_b = b.items()[..4]
                .iter()
                .map(|(t, _)| *t)
                .zip(&before_b)
                .position(|(now, then)| now != *then);
            assert_eq!(changed_a, changed_b, "offer {i}");
        }
    }

    #[test]
    fn offer_run_matches_serial_offers_bitwise() {
        // Every (start fill level × run length) regime: empty reservoir,
        // mid-fill, fill completing inside the run, steady-state
        // replacement, and a cap smaller than the run.
        for &(cap, warm, len) in &[
            (8usize, 0usize, 3usize),
            (8, 0, 8),
            (8, 5, 7),
            (8, 20, 64),
            (4, 0, 100),
            (1, 0, 17),
            (256, 100, 256),
        ] {
            let mut serial = Reservoir::new(11);
            let mut batched = Reservoir::new(11);
            for i in 0..warm as u64 {
                serial.offer(cap, i, &p(i as f64));
                batched.offer(cap, i, &p(i as f64));
            }
            let start = warm as u64;
            let run: Vec<DataPoint> = (0..len).map(|i| p(1000.0 + i as f64)).collect();
            for (i, point) in run.iter().enumerate() {
                serial.offer(cap, start + i as u64, point);
            }
            batched.offer_run(cap, start, &run);
            assert_eq!(batched.seen(), serial.seen(), "cap {cap} warm {warm}");
            assert_eq!(
                batched.items(),
                serial.items(),
                "cap {cap} warm {warm} len {len}"
            );
        }
    }

    #[test]
    fn run_draws_predict_serial_offer_slots() {
        let cap = 6usize;
        let mut res = Reservoir::new(77);
        for i in 0..100u64 {
            // Snapshot before the offer: slot(0) must name exactly the slot
            // the live offer writes (or None when the offer is dropped).
            let draws = res.run_draws(cap);
            let predicted = draws.slot(0);
            let before: Vec<u64> = res.items().iter().map(|(t, _)| *t).collect();
            res.offer(cap, i, &p(i as f64));
            let written = if res.items().len() > before.len() {
                Some(res.items().len() - 1)
            } else {
                res.items()
                    .iter()
                    .map(|(t, _)| *t)
                    .zip(&before)
                    .position(|(now, then)| now != *then)
            };
            assert_eq!(predicted, written, "offer {i}");
        }
        // Deeper lookahead agrees with a batch applied on a clone.
        let draws = res.run_draws(cap);
        assert_eq!(draws.fill_len(10), 0);
        for i in 0..10usize {
            let mut probe = res.clone();
            for j in 0..=i as u64 {
                probe.offer(cap, 200 + j, &p(j as f64));
            }
            // The i-th decision is order-free: predictable without applying
            // the first i offers.
            let _ = draws.slot(i); // must not panic; value checked below
        }
        let run: Vec<DataPoint> = (0..10).map(|i| p(i as f64)).collect();
        let mut serial = res.clone();
        for (i, point) in run.iter().enumerate() {
            serial.offer(cap, 200 + i as u64, point);
        }
        let mut batched = res.clone();
        batched.offer_run(cap, 200, &run);
        assert_eq!(batched.items(), serial.items());
    }

    #[test]
    fn offer_run_clones_only_winning_points() {
        // Steady state, long run over a tiny cap: far fewer than `len`
        // slots exist, so at most `cap` clones can survive. (The dead-clone
        // guarantee is structural — each slot is written once — this pins
        // the observable consequence: final contents match serial.)
        let cap = 2usize;
        let mut serial = Reservoir::new(5);
        let mut batched = Reservoir::new(5);
        for i in 0..10u64 {
            serial.offer(cap, i, &p(i as f64));
            batched.offer(cap, i, &p(i as f64));
        }
        let run: Vec<DataPoint> = (0..500).map(|i| p(i as f64)).collect();
        for (i, point) in run.iter().enumerate() {
            serial.offer(cap, 10 + i as u64, point);
        }
        batched.offer_run(cap, 10, &run);
        assert_eq!(batched.items(), serial.items());
        assert_eq!(batched.len(), cap);
    }

    #[test]
    fn offer_run_empty_is_a_no_op() {
        let mut res = Reservoir::new(3);
        res.offer(4, 0, &p(1.0));
        let before: Vec<u64> = res.items().iter().map(|(t, _)| *t).collect();
        res.offer_run(4, 1, &[]);
        assert_eq!(res.seen(), 1);
        let after: Vec<u64> = res.items().iter().map(|(t, _)| *t).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn durable_roundtrip_continues_identically() {
        let cap = 8usize;
        let mut live = Reservoir::new(21);
        for i in 0..300 {
            live.offer(cap, i, &p(i as f64));
        }
        let snapshot: Value = {
            let mut w = StateWriter::new();
            live.capture(&mut w);
            w.finish()
        };
        let mut restored = Reservoir::new(0);
        restored
            .restore(&StateReader::new(&snapshot).unwrap())
            .unwrap();
        assert_eq!(restored.seen(), live.seen());
        assert_eq!(restored.items(), live.items());
        for i in 300..600 {
            live.offer(cap, i, &p(i as f64));
            restored.offer(cap, i, &p(i as f64));
        }
        assert_eq!(restored.items(), live.items());
    }

    #[test]
    fn corrupt_columns_rejected() {
        let mut w = StateWriter::new();
        w.u64("seed", 1);
        w.u64("seen", 2);
        w.nested("items", |w| {
            w.u64("dims", 3);
            w.u64_col("ticks", [1u64, 2]);
            w.f64_bits_col("values", [0.5]); // 2 ticks × 3 dims ≠ 1 value
        });
        let v = w.finish();
        let mut res = Reservoir::new(0);
        assert!(res.restore(&StateReader::new(&v).unwrap()).is_err());
    }
}
