//! Evaluation metrics, performance meters and reporting for SPOT.
//!
//! Everything the experiment harness (`spot-bench`) needs to quantify the
//! paper's two evaluation axes — *effectiveness* (precision/recall/F1,
//! ROC-AUC, subspace recovery) and *efficiency* (throughput, latency,
//! synopsis memory) — plus a fixed-width table printer so every bench
//! target can emit paper-style rows.

pub mod confusion;
pub mod perf;
pub mod ranking;
pub mod report;
pub mod subspace_match;

pub use confusion::ConfusionMatrix;
pub use perf::{LatencyRecorder, MemoryReading, ThroughputMeter};
pub use ranking::{average_precision, roc_auc};
pub use report::Table;
pub use subspace_match::{best_jaccard, subspace_recall_at};
