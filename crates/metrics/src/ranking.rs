//! Threshold-free ranking metrics over anomaly scores.

/// Area under the ROC curve for `(score, is_positive)` pairs, via the
/// Mann–Whitney U statistic (ties contribute ½). Returns 0.5 when either
/// class is absent — the uninformative default.
pub fn roc_auc(scored: &[(f64, bool)]) -> f64 {
    let pos: Vec<f64> = scored.iter().filter(|(_, y)| *y).map(|(s, _)| *s).collect();
    let neg: Vec<f64> = scored
        .iter()
        .filter(|(_, y)| !*y)
        .map(|(s, _)| *s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // Rank-based computation: O((n) log n) instead of O(|pos|·|neg|).
    let mut all: Vec<(f64, bool)> = scored.to_vec();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are not NaN"));
    // Average ranks over tie groups (1-based ranks).
    let n = all.len();
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in all.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let np = pos.len() as f64;
    let nn = neg.len() as f64;
    let u = rank_sum_pos - np * (np + 1.0) / 2.0;
    u / (np * nn)
}

/// Average precision (area under the precision-recall curve by the
/// step-wise interpolation used in IR). Returns 0 when no positives exist.
pub fn average_precision(scored: &[(f64, bool)]) -> f64 {
    let total_pos = scored.iter().filter(|(_, y)| *y).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are not NaN"));
    let mut tp = 0usize;
    let mut ap = 0.0;
    for (i, (_, y)) in sorted.iter().enumerate() {
        if *y {
            tp += 1;
            ap += tp as f64 / (i + 1) as f64;
        }
    }
    ap / total_pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((roc_auc(&scored) - 1.0).abs() < 1e-12);
        assert!((average_precision(&scored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation_gives_auc_zero() {
        let scored = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(roc_auc(&scored).abs() < 1e-12);
    }

    #[test]
    fn single_class_defaults() {
        assert_eq!(roc_auc(&[(0.5, true)]), 0.5);
        assert_eq!(roc_auc(&[(0.5, false)]), 0.5);
        assert_eq!(roc_auc(&[]), 0.5);
        assert_eq!(average_precision(&[(0.5, false)]), 0.0);
    }

    #[test]
    fn all_tied_scores_are_uninformative() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&scored) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_matches_naive_pair_counting() {
        let scored = vec![
            (0.9, true),
            (0.7, false),
            (0.65, true),
            (0.6, false),
            (0.5, true),
            (0.4, false),
        ];
        // Naive: fraction of (pos, neg) pairs ranked correctly.
        let pos: Vec<f64> = scored.iter().filter(|(_, y)| *y).map(|(s, _)| *s).collect();
        let neg: Vec<f64> = scored
            .iter()
            .filter(|(_, y)| !*y)
            .map(|(s, _)| *s)
            .collect();
        let mut wins = 0.0;
        for &p in &pos {
            for &q in &neg {
                if p > q {
                    wins += 1.0;
                } else if p == q {
                    wins += 0.5;
                }
            }
        }
        let naive = wins / (pos.len() * neg.len()) as f64;
        assert!((roc_auc(&scored) - naive).abs() < 1e-12);
    }

    #[test]
    fn average_precision_known_value() {
        // Ranking: pos, neg, pos → AP = (1/1 + 2/3) / 2.
        let scored = vec![(0.9, true), (0.8, false), (0.7, true)];
        let expect = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision(&scored) - expect).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn auc_bounded_and_tie_consistent(
            scores in proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 2..60)
        ) {
            let auc = roc_auc(&scores);
            prop_assert!((0.0..=1.0).contains(&auc));
            // Naive pair counting must agree.
            let pos: Vec<f64> = scores.iter().filter(|(_, y)| *y).map(|(s, _)| *s).collect();
            let neg: Vec<f64> = scores.iter().filter(|(_, y)| !*y).map(|(s, _)| *s).collect();
            if !pos.is_empty() && !neg.is_empty() {
                let mut wins = 0.0;
                for &p in &pos {
                    for &q in &neg {
                        if p > q { wins += 1.0 } else if p == q { wins += 0.5 }
                    }
                }
                let naive = wins / (pos.len() * neg.len()) as f64;
                prop_assert!((auc - naive).abs() < 1e-9);
            }
        }

        #[test]
        fn ap_bounded(
            scores in proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 1..60)
        ) {
            let ap = average_precision(&scores);
            prop_assert!((0.0..=1.0).contains(&ap));
        }
    }
}
