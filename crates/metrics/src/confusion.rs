//! Binary confusion matrix and derived rates.

use serde::{Deserialize, Serialize};

/// Counts of a binary detection task ("anomaly" is the positive class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Anomalies flagged as anomalies.
    pub tp: u64,
    /// Normal points flagged as anomalies (false alarms).
    pub fp: u64,
    /// Normal points passed as normal.
    pub tn: u64,
    /// Anomalies missed.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one (prediction, truth) pair in.
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Builds a matrix from parallel prediction/truth iterators.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (bool, bool)>,
    {
        let mut m = Self::new();
        for (pred, truth) in pairs {
            m.record(pred, truth);
        }
        m
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (detection rate) `tp / (tp + fn)`; 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 — harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate `fp / (fp + tn)`.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Accuracy `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Merges another matrix.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rates_on_known_matrix() {
        let m = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 13.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 2.0 / 87.0).abs() < 1e-12);
        assert!((m.accuracy() - 93.0 / 100.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zero_rates() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn record_and_from_pairs_agree() {
        let pairs = [
            (true, true),
            (true, false),
            (false, false),
            (false, true),
            (true, true),
        ];
        let mut a = ConfusionMatrix::new();
        for &(p, t) in &pairs {
            a.record(p, t);
        }
        let b = ConfusionMatrix::from_pairs(pairs.iter().copied());
        assert_eq!(a, b);
        assert_eq!(a.tp, 2);
        assert_eq!(a.fp, 1);
        assert_eq!(a.tn, 1);
        assert_eq!(a.fn_, 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(&ConfusionMatrix {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        });
        assert_eq!(
            a,
            ConfusionMatrix {
                tp: 11,
                fp: 22,
                tn: 33,
                fn_: 44
            }
        );
    }

    proptest! {
        #[test]
        fn rates_bounded(tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000) {
            let m = ConfusionMatrix { tp, fp, tn, fn_ };
            for v in [m.precision(), m.recall(), m.f1(), m.false_positive_rate(), m.accuracy()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
