//! Throughput, latency and memory instrumentation.

use spot_types::stats::quantile;
use std::time::{Duration, Instant};

/// Wall-clock throughput meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    items: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts the clock.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            items: 0,
        }
    }

    /// Records `n` processed items.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.items += n;
    }

    /// Items recorded so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Elapsed time since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Items per second since construction.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / secs
        }
    }
}

/// Per-item latency recorder with bounded memory (uniform reservoir).
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
}

impl LatencyRecorder {
    /// Recorder holding at most `capacity` samples (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LatencyRecorder {
            samples: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: Duration) {
        self.seen += 1;
        let micros = d.as_secs_f64() * 1e6;
        if self.samples.len() < self.capacity {
            self.samples.push(micros);
        } else {
            // Deterministic reservoir: replace a pseudo-random slot derived
            // from the sequence number (keeps the recorder dependency-free
            // and reproducible).
            let slot =
                (self.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.capacity;
            self.samples[slot] = micros;
        }
    }

    /// Number of observations recorded (not retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Latency quantile in microseconds over the retained sample.
    pub fn quantile_us(&self, q: f64) -> f64 {
        quantile(&self.samples, q)
    }

    /// Mean latency in microseconds over the retained sample.
    pub fn mean_us(&self) -> f64 {
        spot_types::stats::mean(&self.samples)
    }
}

/// A point-in-time memory reading of a detector's synopses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryReading {
    /// Populated base cells.
    pub base_cells: usize,
    /// Populated projected cells summed over subspaces.
    pub projected_cells: usize,
    /// Approximate bytes across all synopsis stores.
    pub approx_bytes: usize,
}

impl MemoryReading {
    /// Total populated cells.
    pub fn total_cells(&self) -> usize {
        self.base_cells + self.projected_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_counts_items() {
        let mut m = ThroughputMeter::new();
        m.add(10);
        m.add(5);
        assert_eq!(m.items(), 15);
        std::thread::sleep(Duration::from_millis(2));
        assert!(m.throughput() > 0.0);
        assert!(m.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn latency_quantiles() {
        let mut r = LatencyRecorder::new(100);
        for i in 1..=100u64 {
            r.record(Duration::from_micros(i));
        }
        assert_eq!(r.seen(), 100);
        let p50 = r.quantile_us(0.5);
        assert!((p50 - 50.5).abs() < 1.0, "p50={p50}");
        assert!(r.quantile_us(1.0) <= 100.0 + 1e-9);
        assert!(r.mean_us() > 0.0);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut r = LatencyRecorder::new(8);
        for i in 0..1000u64 {
            r.record(Duration::from_micros(i));
        }
        assert_eq!(r.seen(), 1000);
        assert!(r.samples.len() <= 8);
    }

    #[test]
    fn memory_reading_total() {
        let m = MemoryReading {
            base_cells: 3,
            projected_cells: 7,
            approx_bytes: 123,
        };
        assert_eq!(m.total_cells(), 10);
    }
}
