//! Fixed-width table rendering for the experiment harness.
//!
//! Every `spot-bench` target prints its table/figure rows through this type
//! so outputs are uniform and machine-extractable (a JSON dump accompanies
//! the pretty print).

use serde::Serialize;
use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller; counts must match
    /// the header row).
    pub fn add_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places (the workspace's table convention).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with no decimals and thousands grouping dropped.
pub fn fmt0(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long-name | 12345 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt0(1234.7), "1235");
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("j", &["x"]);
        t.add_row(vec!["1".into()]);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"title\":\"j\""));
    }
}
