//! Subspace-recovery metrics.
//!
//! SPOT reports not only *which* points are outliers but *where* they are
//! outlying. These helpers compare reported outlying subspaces against the
//! ground-truth subspaces planted by the generators (experiments E3/E6).

use spot_subspace::Subspace;

/// Best Jaccard similarity between `truth` and any reported subspace; 0
/// when nothing was reported.
pub fn best_jaccard(truth: Subspace, reported: &[Subspace]) -> f64 {
    reported
        .iter()
        .map(|s| truth.jaccard(s))
        .fold(0.0, f64::max)
}

/// Fraction of `truths` for which some subspace among the respective
/// reported set reaches Jaccard ≥ `threshold`. `pairs` yields
/// (truth, reported-set) per detected outlier.
pub fn subspace_recall_at<'a, I>(pairs: I, threshold: f64) -> f64
where
    I: IntoIterator<Item = (Subspace, &'a [Subspace])>,
{
    let mut total = 0usize;
    let mut hit = 0usize;
    for (truth, reported) in pairs {
        total += 1;
        if best_jaccard(truth, reported) >= threshold {
            hit += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims.iter().copied()).unwrap()
    }

    #[test]
    fn exact_match_scores_one() {
        let truth = s(&[1, 3]);
        assert!((best_jaccard(truth, &[s(&[0]), s(&[1, 3])]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let truth = s(&[1, 3]);
        // overlap {3}, union {1,2,3} → 1/3
        let j = best_jaccard(truth, &[s(&[2, 3])]);
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_scores_zero() {
        assert_eq!(best_jaccard(s(&[0]), &[]), 0.0);
    }

    #[test]
    fn recall_at_threshold() {
        let reported_a = [s(&[1, 3])];
        let reported_b = [s(&[9])];
        let pairs = vec![
            (s(&[1, 3]), &reported_a[..]), // exact hit
            (s(&[2, 4]), &reported_b[..]), // miss
        ];
        let r = subspace_recall_at(pairs, 0.99);
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(
            subspace_recall_at(Vec::<(Subspace, &[Subspace])>::new(), 0.5),
            0.0
        );
    }
}
