//! Derive macros for the in-tree `serde` stand-in.
//!
//! The build environment has no crates.io access, so this crate re-implements
//! the `#[derive(Serialize, Deserialize)]` surface the workspace actually
//! uses — named structs, tuple structs, and enums with unit / newtype /
//! struct variants, plus the `#[serde(skip)]` and `#[serde(default)]` field
//! attributes. It parses the item token stream by hand (no `syn`/`quote`)
//! and emits impls of the value-tree traits defined in `crates/compat/serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String, // field name for named fields, index string for tuple fields
    skip: bool,
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<Field>),
}

#[derive(Debug)]
enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, Vec<Field>),
    Enum(String, Vec<Variant>),
}

/// Collects `skip`/`default` markers out of a `#[serde(...)]` attribute group.
fn serde_attr_flags(group: &proc_macro::Group, skip: &mut bool) {
    for tok in group.stream() {
        if let TokenTree::Group(inner) = tok {
            for t in inner.stream() {
                if let TokenTree::Ident(w) = t {
                    if w.to_string() == "skip" {
                        *skip = true;
                    }
                }
            }
        }
    }
}

/// Consumes leading attributes (`# [ ... ]`), reporting whether any of them
/// was a `#[serde(skip)]`.
fn eat_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let mut is_serde = false;
                    for t in g.stream() {
                        if let TokenTree::Ident(w) = &t {
                            if w.to_string() == "serde" {
                                is_serde = true;
                            }
                        }
                    }
                    if is_serde {
                        serde_attr_flags(&g, &mut skip);
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// Parses the fields of a braced (named) struct/variant body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let skip = eat_attributes(&mut tokens);
        // Optional visibility.
        while let Some(TokenTree::Ident(id)) = tokens.peek() {
            let s = id.to_string();
            if s == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        fields.push(Field { name, skip });
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Parses the fields of a parenthesized (tuple) struct/variant body.
fn parse_tuple_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    let mut idx = 0usize;
    loop {
        let skip = eat_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let mut depth = 0i32;
        let mut ended = false;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    ended = true;
                    break;
                }
                _ => {}
            }
        }
        fields.push(Field {
            name: idx.to_string(),
            skip,
        });
        idx += 1;
        if !ended {
            break;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    eat_attributes(&mut tokens);
    // Skip visibility and find `struct`/`enum`.
    let mut kind = String::new();
    for t in tokens.by_ref() {
        if let TokenTree::Ident(id) = t {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = s;
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name after `{kind}`, found {other:?}"),
    };
    // No generics support: the workspace derives only on concrete types.
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Item::NamedStruct(name, parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Item::TupleStruct(name, parse_tuple_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Item::Enum(name, parse_variants(g.stream()))
        }
        other => panic!("unsupported item shape for derive on `{name}`: {other:?}"),
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        eat_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                tokens.next();
                if fields.len() == 1 {
                    variants.push(Variant::Newtype(name));
                } else {
                    panic!("multi-field tuple enum variants are not supported: {name}");
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                variants.push(Variant::Struct(name, fields));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip to next comma (handles discriminants, which do not occur here).
        while let Some(t) = tokens.peek() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    tokens.next();
                    break;
                }
            }
            tokens.next();
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = Vec::new();
                        {pushes}
                        ::serde::Value::Object(obj)
                    }}
                }}"
            )
        }
        Item::TupleStruct(name, fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{
                        fn to_value(&self) -> ::serde::Value {{
                            ::serde::Serialize::to_value(&self.{})
                        }}
                    }}",
                    live[0].name
                )
            } else {
                let mut pushes = String::new();
                for f in &live {
                    pushes.push_str(&format!(
                        "arr.push(::serde::Serialize::to_value(&self.{}));\n",
                        f.name
                    ));
                }
                format!(
                    "impl ::serde::Serialize for {name} {{
                        fn to_value(&self) -> ::serde::Value {{
                            let mut arr: ::std::vec::Vec<::serde::Value> = Vec::new();
                            {pushes}
                            ::serde::Value::Array(arr)
                        }}
                    }}"
                )
            }
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Newtype(vn) => arms.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{
                                let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = Vec::new();
                                {pushes}
                                ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(obj))])
                            }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct(name, fields) => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(v.get_field(\"{n}\")
                            .unwrap_or(&::serde::Value::Null))
                            .map_err(|e| e.in_field(\"{n}\"))?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::TupleStruct(name, fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 && fields.len() == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                            Ok({name}(::serde::Deserialize::from_value(v)?))
                        }}
                    }}"
                )
            } else {
                let mut inits = String::new();
                for (i, f) in fields.iter().enumerate() {
                    if f.skip {
                        inits.push_str("::std::default::Default::default(),\n");
                    } else {
                        inits.push_str(&format!(
                            "::serde::Deserialize::from_value(v.get_index({i})
                                .unwrap_or(&::serde::Value::Null))?,\n"
                        ));
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                            Ok({name}({inits}))
                        }}
                    }}"
                )
            }
        }
        Item::Enum(name, variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => str_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    Variant::Newtype(vn) => obj_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: ::serde::Deserialize::from_value(inner.get_field(\"{n}\")
                                        .unwrap_or(&::serde::Value::Null))?,\n",
                                    n = f.name
                                ));
                            }
                        }
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {str_arms}
                                other => Err(::serde::DeError::custom(format!(
                                    \"unknown variant `{{other}}` for {name}\"))),
                            }},
                            ::serde::Value::Object(entries) if entries.len() == 1 => {{
                                let (tag, inner) = &entries[0];
                                match tag.as_str() {{
                                    {obj_arms}
                                    other => Err(::serde::DeError::custom(format!(
                                        \"unknown variant `{{other}}` for {name}\"))),
                                }}
                            }}
                            _ => Err(::serde::DeError::custom(
                                \"expected string or single-key object for enum {name}\".to_string())),
                        }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
