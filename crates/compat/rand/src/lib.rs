//! In-tree stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the slice this workspace uses: `StdRng` (a xoshiro256**
//! generator seeded via SplitMix64), `SeedableRng::seed_from_u64`, the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::shuffle`. Stream determinism in this workspace only
//! requires the generator to be deterministic for a fixed seed — it does not
//! need to emit the same sequence as the real crate.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a `gen_range` call accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant for this workspace's uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as Standard>::sample_standard(rng);
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize, i32, i64);

impl Standard for u16 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for i64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped into `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing. Workspace
        /// extension over the real crate's API: a restored generator must
        /// continue the exact stream the captured one would have produced,
        /// which re-seeding cannot do.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`]. The
        /// all-zero state is degenerate for xoshiro (it would emit zeros
        /// forever) and can never be produced by seeding or stepping, so it
        /// is mapped back through the seed expansion.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The degenerate all-zero state is rejected, not honored.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>() | z.gen::<u64>(), 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_float_distribution_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
